//! Byte-level wire codec for the session protocol.
//!
//! The [snapshot module](crate::snapshot) established the workspace's
//! serialization discipline: explicit little-endian primitives, length
//! prefixes validated against the remaining buffer, f64s shipped as raw
//! bits (so reassembly is *bit*-exact), and every decoded field checked
//! before any panicking constructor runs. This module promotes those
//! primitives ([`WireWriter`] / [`WireReader`]) to a public codec layer
//! and implements [`WireEncode`] / [`WireDecode`] for **every protocol
//! type** — [`SessionCommand`], [`SessionEvent`], [`AdmissionResponse`],
//! [`ProtocolError`], their component types, and (via
//! [`SessionRequest::wire_encode`] / [`SessionRequest::wire_decode`]) the
//! session request itself — so the types that already drive all three
//! in-process serving layers can cross a process boundary unchanged.
//!
//! Two deliberate asymmetries:
//!
//! * **Cost models encode by identity.** A [`SessionRequest`]'s optional
//!   per-session cost model is code, not data; the wire carries only its
//!   [identity](moqo_costmodel::CostModel::identity), and the decoding
//!   side resolves it against a server-side [`ModelResolver`] — a model
//!   registry.
//!   An identity the server does not know is a typed
//!   [`WireError::UnknownModel`], never a guess.
//! * **Decoding never panics.** Like the snapshot importer, every length,
//!   tag, dimension, and float is validated as it is read; arbitrary,
//!   truncated, or bit-flipped input yields a [`WireError`], so a
//!   malicious client can never crash a serving worker (property-tested
//!   in `moqo-wire`).
//!
//! Framing (message envelopes, length-prefixed frames, the `MOQOWIRE`
//! handshake) lives in the `moqo-wire` crate; this module is only the
//! payload codec.

use crate::frontier::{FrontierPoint, FrontierSnapshot};
use crate::preference::Preference;
use crate::protocol::{
    AdmissionResponse, FrontierDelta, ProtocolError, RejectReason, SessionCommand, SessionEvent,
    SessionOutcome, SessionRequest,
};
use crate::report::InvocationReport;
use moqo_catalog::{Catalog, Column, ColumnRole, Table, TableId};
use moqo_cost::{Bounds, CostVector, ResolutionSchedule, MAX_DIM};
use moqo_costmodel::ModelResolver;
use moqo_plan::{OrderKey, PhysicalProps, PlanId};
use moqo_query::{JoinGraph, QuerySpec};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Why a wire payload could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the encoded structure did.
    Truncated,
    /// A structural invariant failed during decoding (bad tag, invalid
    /// length, out-of-range value, non-UTF-8 string, …).
    Corrupt(String),
    /// A request referenced a cost-model identity the decoding side's
    /// model registry does not know.
    UnknownModel {
        /// The unresolvable identity.
        identity: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::Corrupt(m) => write!(f, "corrupt wire payload: {m}"),
            WireError::UnknownModel { identity } => {
                write!(f, "unknown cost-model identity {identity:#018x}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Shorthand used throughout the codec.
pub type WireResult<T> = Result<T, WireError>;

fn corrupt(msg: impl Into<String>) -> WireError {
    WireError::Corrupt(msg.into())
}

// ---------------------------------------------------------------------------
// Primitives: explicit little-endian encoding, no host-dependent layout,
// no external serialization dependency.
// ---------------------------------------------------------------------------

/// Append-only little-endian byte writer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes verbatim (magic numbers, pre-encoded payloads).
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its raw little-endian bit pattern (bit-exact
    /// round trips, NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Validating little-endian byte reader over a borrowed buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Takes the next `n` raw bytes, or [`WireError::Truncated`].
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// True once every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an f64 from its raw bit pattern.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed count, sanity-capped so corrupt lengths fail fast
    /// instead of attempting huge allocations (each encoded element
    /// occupies at least one byte).
    pub fn count(&mut self, what: &str) -> WireResult<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(corrupt(format!(
                "{what} count {n} exceeds remaining buffer"
            )));
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<String> {
        let n = self.count("string")?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }
}

// ---------------------------------------------------------------------------
// Codec traits.
// ---------------------------------------------------------------------------

/// Types that serialize themselves onto a [`WireWriter`].
pub trait WireEncode {
    /// Appends this value's wire representation to `w`.
    fn encode(&self, w: &mut WireWriter);

    /// Convenience: encodes into a fresh buffer.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_vec()
    }
}

/// Types that deserialize themselves from a [`WireReader`], validating
/// every field — decoding MUST NOT panic on any input.
pub trait WireDecode: Sized {
    /// Reads one value from `r`.
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self>;

    /// Convenience: decodes a buffer that must contain exactly one value
    /// (trailing bytes are rejected).
    fn decode_exact(bytes: &[u8]) -> WireResult<Self> {
        let mut r = WireReader::new(bytes);
        let v = Self::decode(&mut r)?;
        if !r.done() {
            return Err(corrupt("trailing bytes after value"));
        }
        Ok(v)
    }
}

fn encode_opt<T: WireEncode>(w: &mut WireWriter, v: &Option<T>) {
    match v {
        None => w.bool(false),
        Some(x) => {
            w.bool(true);
            x.encode(w);
        }
    }
}

fn decode_opt<T: WireDecode>(r: &mut WireReader<'_>) -> WireResult<Option<T>> {
    Ok(if r.bool()? { Some(T::decode(r)?) } else { None })
}

// ---------------------------------------------------------------------------
// Component types.
// ---------------------------------------------------------------------------

impl WireEncode for CostVector {
    fn encode(&self, w: &mut WireWriter) {
        w.u8(self.dim() as u8);
        for &v in self.as_slice() {
            w.f64(v);
        }
    }
}

impl WireDecode for CostVector {
    /// Cost components are finite-or-infinite, non-negative, never NaN —
    /// the `CostVector` constructor enforces the same rules with panics;
    /// here they must surface as errors.
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let dim = r.u8()? as usize;
        if dim > MAX_DIM {
            return Err(corrupt(format!("cost dimension {dim} exceeds MAX_DIM")));
        }
        let mut vals = [0.0; MAX_DIM];
        for slot in vals.iter_mut().take(dim) {
            let v = r.f64()?;
            if v.is_nan() {
                return Err(corrupt("NaN cost component"));
            }
            if v < 0.0 {
                return Err(corrupt(format!("negative cost component {v}")));
            }
            *slot = v;
        }
        Ok(CostVector::new(&vals[..dim]))
    }
}

impl WireEncode for Bounds {
    fn encode(&self, w: &mut WireWriter) {
        self.limits().encode(w);
    }
}

impl WireDecode for Bounds {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(Bounds::new(CostVector::decode(r)?))
    }
}

impl WireEncode for PhysicalProps {
    fn encode(&self, w: &mut WireWriter) {
        match self.order {
            None => w.bool(false),
            Some(OrderKey(k)) => {
                w.bool(true);
                w.u16(k);
            }
        }
    }
}

impl WireDecode for PhysicalProps {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(if r.bool()? {
            PhysicalProps::sorted(OrderKey(r.u16()?))
        } else {
            PhysicalProps::NONE
        })
    }
}

impl WireEncode for ResolutionSchedule {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.levels() as u32);
        for (_, factor) in self.iter() {
            w.f64(factor);
        }
    }
}

impl WireDecode for ResolutionSchedule {
    /// Validates everything `ResolutionSchedule::from_factors` would
    /// assert: non-empty, finite, strictly decreasing, all above 1.
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let n = r.count("schedule level")?;
        if n == 0 {
            return Err(corrupt("schedule has no levels"));
        }
        let mut factors = Vec::with_capacity(n);
        for _ in 0..n {
            let f = r.f64()?;
            if !(f.is_finite() && f > 1.0) {
                return Err(corrupt(format!("precision factor {f} must exceed 1")));
            }
            if let Some(&prev) = factors.last() {
                if f >= prev {
                    return Err(corrupt("precision factors must strictly decrease"));
                }
            }
            factors.push(f);
        }
        Ok(ResolutionSchedule::from_factors(factors))
    }
}

impl WireEncode for PlanId {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.0);
    }
}

impl WireDecode for PlanId {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(PlanId(r.u32()?))
    }
}

impl WireEncode for FrontierPoint {
    fn encode(&self, w: &mut WireWriter) {
        self.plan.encode(w);
        self.cost.encode(w);
    }
}

impl WireDecode for FrontierPoint {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(FrontierPoint {
            plan: PlanId::decode(r)?,
            cost: CostVector::decode(r)?,
        })
    }
}

impl WireEncode for FrontierSnapshot {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.points.len() as u32);
        for p in &self.points {
            p.encode(w);
        }
    }
}

impl WireDecode for FrontierSnapshot {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let n = r.count("frontier point")?;
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push(FrontierPoint::decode(r)?);
        }
        Ok(FrontierSnapshot::new(points))
    }
}

impl WireEncode for FrontierDelta {
    fn encode(&self, w: &mut WireWriter) {
        w.bool(self.reset);
        w.u32(self.removed.len() as u32);
        for p in &self.removed {
            p.encode(w);
        }
        w.u32(self.added.len() as u32);
        for p in &self.added {
            p.encode(w);
        }
    }
}

impl WireDecode for FrontierDelta {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let reset = r.bool()?;
        let n_removed = r.count("removed plan")?;
        let mut removed = Vec::with_capacity(n_removed);
        for _ in 0..n_removed {
            removed.push(PlanId::decode(r)?);
        }
        let n_added = r.count("added point")?;
        let mut added = Vec::with_capacity(n_added);
        for _ in 0..n_added {
            added.push(FrontierPoint::decode(r)?);
        }
        Ok(FrontierDelta {
            reset,
            removed,
            added,
        })
    }
}

impl WireEncode for InvocationReport {
    fn encode(&self, w: &mut WireWriter) {
        w.u32(self.invocation);
        w.u64(self.resolution as u64);
        w.f64(self.alpha);
        w.u64(self.duration.as_nanos().min(u64::MAX as u128) as u64);
        w.u64(self.frontier_size as u64);
        w.u64(self.plans_generated);
        w.u64(self.candidates_retrieved);
        w.u64(self.pairs_generated);
        w.u64(self.result_insertions);
        w.u64(self.candidate_insertions);
        w.u64(self.subsets_visited);
        w.u64(self.splits_visited);
        w.u64(self.splits_skipped);
        w.bool(self.used_delta);
    }
}

impl WireDecode for InvocationReport {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(InvocationReport {
            invocation: r.u32()?,
            resolution: r.u64()? as usize,
            alpha: r.f64()?,
            duration: Duration::from_nanos(r.u64()?),
            frontier_size: r.u64()? as usize,
            plans_generated: r.u64()?,
            candidates_retrieved: r.u64()?,
            pairs_generated: r.u64()?,
            result_insertions: r.u64()?,
            candidate_insertions: r.u64()?,
            subsets_visited: r.u64()?,
            splits_visited: r.u64()?,
            splits_skipped: r.u64()?,
            used_delta: r.bool()?,
        })
    }
}

impl WireEncode for SessionOutcome {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SessionOutcome::Selected {
                plan,
                by_preference,
            } => {
                w.u8(0);
                plan.encode(w);
                w.bool(*by_preference);
            }
            SessionOutcome::Retired => w.u8(1),
        }
    }
}

impl WireDecode for SessionOutcome {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(SessionOutcome::Selected {
                plan: PlanId::decode(r)?,
                by_preference: r.bool()?,
            }),
            1 => Ok(SessionOutcome::Retired),
            t => Err(corrupt(format!("unknown session outcome tag {t}"))),
        }
    }
}

impl WireEncode for Preference {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Preference::WeightedSum(weights) => {
                w.u8(0);
                w.u32(weights.len() as u32);
                for &x in weights {
                    w.f64(x);
                }
            }
            Preference::Chebyshev(weights) => {
                w.u8(1);
                w.u32(weights.len() as u32);
                for &x in weights {
                    w.f64(x);
                }
            }
            Preference::Lexicographic { order, tolerance } => {
                w.u8(2);
                w.u32(order.len() as u32);
                for &m in order {
                    w.u64(m as u64);
                }
                w.f64(*tolerance);
            }
        }
    }
}

impl WireDecode for Preference {
    /// Weights and tolerances are carried verbatim (bit-exact); semantic
    /// checks (finiteness, dimension) stay in [`Preference::validate`],
    /// which every serving layer runs at the door — decoding only has to
    /// guarantee it cannot panic.
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        fn weights(r: &mut WireReader<'_>) -> WireResult<Vec<f64>> {
            let n = r.count("preference weight")?;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(r.f64()?);
            }
            Ok(out)
        }
        match r.u8()? {
            0 => Ok(Preference::WeightedSum(weights(r)?)),
            1 => Ok(Preference::Chebyshev(weights(r)?)),
            2 => {
                let n = r.count("preference metric")?;
                let mut order = Vec::with_capacity(n);
                for _ in 0..n {
                    order.push(r.u64()? as usize);
                }
                let tolerance = r.f64()?;
                Ok(Preference::Lexicographic { order, tolerance })
            }
            t => Err(corrupt(format!("unknown preference tag {t}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol messages.
// ---------------------------------------------------------------------------

impl WireEncode for SessionCommand {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SessionCommand::Refine => w.u8(0),
            SessionCommand::SetBounds(bounds) => {
                w.u8(1);
                bounds.encode(w);
            }
            SessionCommand::SetPreference(pref) => {
                w.u8(2);
                encode_opt(w, pref);
            }
            SessionCommand::SelectPlan(plan) => {
                w.u8(3);
                plan.encode(w);
            }
            SessionCommand::Cancel => w.u8(4),
        }
    }
}

impl WireDecode for SessionCommand {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(SessionCommand::Refine),
            1 => Ok(SessionCommand::SetBounds(Bounds::decode(r)?)),
            2 => Ok(SessionCommand::SetPreference(decode_opt(r)?)),
            3 => Ok(SessionCommand::SelectPlan(PlanId::decode(r)?)),
            4 => Ok(SessionCommand::Cancel),
            t => Err(corrupt(format!("unknown session command tag {t}"))),
        }
    }
}

impl WireEncode for SessionEvent {
    fn encode(&self, w: &mut WireWriter) {
        w.u64(self.epoch);
        self.delta.encode(w);
        w.u64(self.resolution as u64);
        self.bounds.encode(w);
        w.u64(self.invocations);
        encode_opt(w, &self.report);
        encode_opt(w, &self.first_report);
        encode_opt(w, &self.outcome);
        w.u64(self.coalesced);
    }
}

impl WireDecode for SessionEvent {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(SessionEvent {
            epoch: r.u64()?,
            delta: FrontierDelta::decode(r)?,
            resolution: r.u64()? as usize,
            bounds: Bounds::decode(r)?,
            invocations: r.u64()?,
            report: decode_opt(r)?,
            first_report: decode_opt(r)?,
            outcome: decode_opt(r)?,
            coalesced: r.u64()?,
        })
    }
}

impl WireEncode for RejectReason {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            RejectReason::Overloaded { live } => {
                w.u8(0);
                w.u64(*live as u64);
            }
            RejectReason::QueueFull { depth } => {
                w.u8(1);
                w.u64(*depth as u64);
            }
        }
    }
}

impl WireDecode for RejectReason {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(RejectReason::Overloaded {
                live: r.u64()? as usize,
            }),
            1 => Ok(RejectReason::QueueFull {
                depth: r.u64()? as usize,
            }),
            t => Err(corrupt(format!("unknown reject reason tag {t}"))),
        }
    }
}

impl WireEncode for AdmissionResponse {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            AdmissionResponse::Admitted => w.u8(0),
            AdmissionResponse::Degraded { schedule } => {
                w.u8(1);
                schedule.encode(w);
            }
            AdmissionResponse::Queued { position } => {
                w.u8(2);
                w.u64(*position as u64);
            }
            AdmissionResponse::Rejected(reason) => {
                w.u8(3);
                reason.encode(w);
            }
        }
    }
}

impl WireDecode for AdmissionResponse {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        match r.u8()? {
            0 => Ok(AdmissionResponse::Admitted),
            1 => Ok(AdmissionResponse::Degraded {
                schedule: ResolutionSchedule::decode(r)?,
            }),
            2 => Ok(AdmissionResponse::Queued {
                position: r.u64()? as usize,
            }),
            3 => Ok(AdmissionResponse::Rejected(RejectReason::decode(r)?)),
            t => Err(corrupt(format!("unknown admission response tag {t}"))),
        }
    }
}

impl WireEncode for ProtocolError {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ProtocolError::WeightDimensionMismatch { expected, got } => {
                w.u8(0);
                w.u64(*expected as u64);
                w.u64(*got as u64);
            }
            ProtocolError::BoundsDimensionMismatch { expected, got } => {
                w.u8(1);
                w.u64(*expected as u64);
                w.u64(*got as u64);
            }
            ProtocolError::EmptyPreferenceOrder => w.u8(2),
            ProtocolError::NonFinitePreference => w.u8(3),
            ProtocolError::MetricOutOfRange { metric, dim } => {
                w.u8(4);
                w.u64(*metric as u64);
                w.u64(*dim as u64);
            }
            ProtocolError::UnknownPlan { plan } => {
                w.u8(5);
                plan.encode(w);
            }
            ProtocolError::SessionFinished => w.u8(6),
            ProtocolError::UnknownSession => w.u8(7),
            ProtocolError::EpochGap { have, got } => {
                w.u8(8);
                w.u64(*have);
                w.u64(*got);
            }
            ProtocolError::UnknownCostModel { identity } => {
                w.u8(9);
                w.u64(*identity);
            }
        }
    }
}

impl WireDecode for ProtocolError {
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        Ok(match r.u8()? {
            0 => ProtocolError::WeightDimensionMismatch {
                expected: r.u64()? as usize,
                got: r.u64()? as usize,
            },
            1 => ProtocolError::BoundsDimensionMismatch {
                expected: r.u64()? as usize,
                got: r.u64()? as usize,
            },
            2 => ProtocolError::EmptyPreferenceOrder,
            3 => ProtocolError::NonFinitePreference,
            4 => ProtocolError::MetricOutOfRange {
                metric: r.u64()? as usize,
                dim: r.u64()? as usize,
            },
            5 => ProtocolError::UnknownPlan {
                plan: PlanId::decode(r)?,
            },
            6 => ProtocolError::SessionFinished,
            7 => ProtocolError::UnknownSession,
            8 => ProtocolError::EpochGap {
                have: r.u64()?,
                got: r.u64()?,
            },
            9 => ProtocolError::UnknownCostModel { identity: r.u64()? },
            t => return Err(corrupt(format!("unknown protocol error tag {t}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// Query specs (shared with the frontier snapshot format).
// ---------------------------------------------------------------------------

impl WireEncode for QuerySpec {
    /// Name, catalog (tables with columns), join graph — byte-compatible
    /// with the spec section of the frontier snapshot format, which
    /// delegates here.
    fn encode(&self, w: &mut WireWriter) {
        w.str(&self.name);
        let catalog = &self.catalog;
        w.u32(catalog.len() as u32);
        for (_, table) in catalog.iter() {
            w.str(&table.name);
            w.u64(table.cardinality);
            w.u32(table.row_width);
            w.u32(table.columns.len() as u32);
            for c in &table.columns {
                w.str(&c.name);
                w.u64(c.distinct_values);
                w.u8(match c.role {
                    ColumnRole::PrimaryKey => 0,
                    ColumnRole::ForeignKey => 1,
                    ColumnRole::Attribute => 2,
                });
            }
        }
        let g = &self.graph;
        w.u32(g.n_tables() as u32);
        for tid in &g.tables {
            w.u32(tid.0);
        }
        for &f in &g.filters {
            w.f64(f);
        }
        w.u32(g.edges.len() as u32);
        for e in &g.edges {
            w.u32(e.left as u32);
            w.u32(e.right as u32);
            w.f64(e.selectivity);
        }
    }
}

impl WireDecode for QuerySpec {
    /// Every reference, filter, and selectivity is validated so the
    /// (panicking) `QuerySpec::new` and graph constructors only ever see
    /// well-formed data.
    fn decode(r: &mut WireReader<'_>) -> WireResult<Self> {
        let name = r.str()?;
        let n_catalog = r.count("catalog table")?;
        let mut tables = Vec::with_capacity(n_catalog);
        for _ in 0..n_catalog {
            let tname = r.str()?;
            if tables.iter().any(|t: &Table| t.name == tname) {
                return Err(corrupt(format!("duplicate catalog table {tname:?}")));
            }
            let cardinality = r.u64()?;
            let row_width = r.u32()?;
            let mut table = Table::new(tname, cardinality, row_width);
            let n_cols = r.count("column")?;
            for _ in 0..n_cols {
                let cname = r.str()?;
                let distinct = r.u64()?;
                let role = match r.u8()? {
                    0 => ColumnRole::PrimaryKey,
                    1 => ColumnRole::ForeignKey,
                    2 => ColumnRole::Attribute,
                    t => return Err(corrupt(format!("unknown column role {t}"))),
                };
                table.columns.push(Column::new(cname, distinct, role));
            }
            tables.push(table);
        }
        let catalog = Arc::new(Catalog::new(tables));

        let n_tables = r.count("graph table")?;
        if n_tables == 0 || n_tables > 64 {
            return Err(corrupt(format!(
                "graph table count {n_tables} out of range"
            )));
        }
        let mut graph_tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let tid = r.u32()?;
            if tid as usize >= catalog.len() {
                return Err(corrupt(format!(
                    "graph references table {tid} outside catalog"
                )));
            }
            graph_tables.push(TableId(tid));
        }
        let mut graph = JoinGraph::new(graph_tables);
        for pos in 0..n_tables {
            let f = r.f64()?;
            if !(f > 0.0 && f <= 1.0) {
                return Err(corrupt(format!("filter selectivity {f} outside (0, 1]")));
            }
            graph.set_filter(pos, f);
        }
        let n_edges = r.count("join edge")?;
        for _ in 0..n_edges {
            let left = r.u32()? as usize;
            let right = r.u32()? as usize;
            let sel = r.f64()?;
            if left >= n_tables || right >= n_tables || left == right {
                return Err(corrupt(format!("join edge ({left}, {right}) invalid")));
            }
            if !(sel > 0.0 && sel <= 1.0) {
                return Err(corrupt(format!("edge selectivity {sel} outside (0, 1]")));
            }
            graph.add_edge(left, right, sel);
        }
        Ok(QuerySpec::new(name, graph, catalog))
    }
}

// ---------------------------------------------------------------------------
// Session requests: the one type whose decode needs server-side context.
// ---------------------------------------------------------------------------

impl SessionRequest {
    /// Serializes the request. The optional per-session cost model is
    /// encoded **by identity** ([`moqo_costmodel::CostModel::identity`]);
    /// the decoding side must resolve it against a model registry.
    pub fn wire_encode(&self, w: &mut WireWriter) {
        self.spec.encode(w);
        encode_opt(w, &self.bounds);
        encode_opt(w, &self.schedule);
        match &self.cost_model {
            None => w.bool(false),
            Some(model) => {
                w.bool(true);
                w.u64(model.identity());
            }
        }
        encode_opt(w, &self.preference);
        match self.auto_ticks {
            None => w.bool(false),
            Some(t) => {
                w.bool(true);
                w.u64(t as u64);
            }
        }
    }

    /// Deserializes a request, resolving an encoded cost-model identity
    /// through `models`. An identity the resolver does not know is
    /// [`WireError::UnknownModel`] — the serving layer surfaces it to the
    /// client as [`ProtocolError::UnknownCostModel`].
    pub fn wire_decode(
        r: &mut WireReader<'_>,
        models: &dyn ModelResolver,
    ) -> WireResult<SessionRequest> {
        let spec = Arc::new(QuerySpec::decode(r)?);
        let bounds = decode_opt(r)?;
        let schedule = decode_opt(r)?;
        let cost_model = if r.bool()? {
            let identity = r.u64()?;
            Some(
                models
                    .resolve_model(identity)
                    .ok_or(WireError::UnknownModel { identity })?,
            )
        } else {
            None
        };
        let preference = decode_opt(r)?;
        let auto_ticks = if r.bool()? {
            Some(r.u64()? as usize)
        } else {
            None
        };
        Ok(SessionRequest {
            spec,
            bounds,
            schedule,
            cost_model,
            preference,
            auto_ticks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_costmodel::{SharedCostModel, StandardCostModel};
    use moqo_query::testkit;

    fn model() -> SharedCostModel {
        Arc::new(StandardCostModel::paper_metrics())
    }

    #[test]
    fn command_round_trips() {
        let commands = [
            SessionCommand::Refine,
            SessionCommand::SetBounds(Bounds::unbounded(3).with_limit(1, 42.5)),
            SessionCommand::SetPreference(Some(Preference::Lexicographic {
                order: vec![2, 0, 1],
                tolerance: 0.01,
            })),
            SessionCommand::SetPreference(None),
            SessionCommand::SelectPlan(PlanId(7)),
            SessionCommand::Cancel,
        ];
        for cmd in &commands {
            let bytes = cmd.encode_to_vec();
            assert_eq!(&SessionCommand::decode_exact(&bytes).unwrap(), cmd);
        }
    }

    #[test]
    fn event_round_trips_bit_exactly() {
        let event = SessionEvent {
            epoch: 3,
            delta: FrontierDelta {
                reset: false,
                removed: vec![PlanId(1)],
                added: vec![FrontierPoint {
                    plan: PlanId(9),
                    cost: CostVector::new(&[1.5, f64::INFINITY, 0.25]),
                }],
            },
            resolution: 2,
            bounds: Bounds::from_slice(&[10.0, f64::INFINITY, 1.0]),
            invocations: 5,
            report: None,
            first_report: Some(InvocationReport {
                invocation: 0,
                resolution: 0,
                alpha: 1.55,
                duration: Duration::from_micros(123),
                frontier_size: 4,
                plans_generated: 0,
                candidates_retrieved: 2,
                pairs_generated: 0,
                result_insertions: 1,
                candidate_insertions: 0,
                subsets_visited: 3,
                splits_visited: 0,
                splits_skipped: 7,
                used_delta: true,
            }),
            outcome: Some(SessionOutcome::Selected {
                plan: PlanId(9),
                by_preference: true,
            }),
            coalesced: 4,
        };
        let bytes = event.encode_to_vec();
        assert_eq!(&SessionEvent::decode_exact(&bytes).unwrap(), &event);
    }

    #[test]
    fn admission_and_errors_round_trip() {
        let responses = [
            AdmissionResponse::Admitted,
            AdmissionResponse::Degraded {
                schedule: ResolutionSchedule::linear(2, 1.2, 0.4),
            },
            AdmissionResponse::Queued { position: 3 },
            AdmissionResponse::Rejected(RejectReason::Overloaded { live: 17 }),
            AdmissionResponse::Rejected(RejectReason::QueueFull { depth: 8 }),
        ];
        for resp in &responses {
            let bytes = resp.encode_to_vec();
            assert_eq!(&AdmissionResponse::decode_exact(&bytes).unwrap(), resp);
        }
        let errors = [
            ProtocolError::WeightDimensionMismatch {
                expected: 3,
                got: 1,
            },
            ProtocolError::EmptyPreferenceOrder,
            ProtocolError::NonFinitePreference,
            ProtocolError::MetricOutOfRange { metric: 5, dim: 3 },
            ProtocolError::UnknownPlan { plan: PlanId(12) },
            ProtocolError::SessionFinished,
            ProtocolError::UnknownSession,
            ProtocolError::EpochGap { have: 4, got: 9 },
            ProtocolError::UnknownCostModel {
                identity: 0xdead_beef,
            },
        ];
        for err in &errors {
            let bytes = err.encode_to_vec();
            assert_eq!(&ProtocolError::decode_exact(&bytes).unwrap(), err);
        }
    }

    #[test]
    fn request_round_trips_through_a_resolver() {
        let m = model();
        let request = SessionRequest::new(Arc::new(testkit::chain_query(3, 20_000)))
            .with_bounds(Bounds::unbounded(3))
            .with_schedule(ResolutionSchedule::linear(2, 1.1, 0.3))
            .with_cost_model(m.clone())
            .with_preference(Preference::WeightedSum(vec![1.0, 0.5, 0.1]))
            .with_auto_ticks(4);
        let mut w = WireWriter::new();
        request.wire_encode(&mut w);
        let bytes = w.into_vec();
        let mut r = WireReader::new(&bytes);
        let decoded = SessionRequest::wire_decode(&mut r, &m).unwrap();
        assert!(r.done());
        // Equality via re-encoding: the codec is a pure function of the
        // request, so equal bytes mean equal requests.
        let mut w2 = WireWriter::new();
        decoded.wire_encode(&mut w2);
        assert_eq!(bytes, w2.into_vec());
        assert_eq!(decoded.spec.name, request.spec.name);
        assert_eq!(decoded.auto_ticks, Some(4));
        assert!(decoded.cost_model.is_some());
    }

    #[test]
    fn unknown_model_identity_is_typed_not_guessed() {
        let m = model();
        let request =
            SessionRequest::new(Arc::new(testkit::chain_query(2, 5_000))).with_cost_model(m);
        let mut w = WireWriter::new();
        request.wire_encode(&mut w);
        let bytes = w.into_vec();
        // A resolver that knows nothing: decoding must fail with the
        // identity, not fall back to a default model.
        struct NoModels;
        impl ModelResolver for NoModels {
            fn resolve_model(&self, _identity: u64) -> Option<SharedCostModel> {
                None
            }
        }
        let mut r = WireReader::new(&bytes);
        match SessionRequest::wire_decode(&mut r, &NoModels) {
            Err(WireError::UnknownModel { .. }) => {}
            other => panic!("expected UnknownModel, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_an_error_at_every_length() {
        let event = SessionEvent {
            epoch: 1,
            delta: FrontierDelta::full(&FrontierSnapshot::new(vec![FrontierPoint {
                plan: PlanId(0),
                cost: CostVector::new(&[1.0, 2.0]),
            }])),
            resolution: 0,
            bounds: Bounds::unbounded(2),
            invocations: 1,
            report: None,
            first_report: None,
            outcome: None,
            coalesced: 0,
        };
        let bytes = event.encode_to_vec();
        for len in 0..bytes.len() {
            assert!(
                SessionEvent::decode_exact(&bytes[..len]).is_err(),
                "truncation at {len} decoded"
            );
        }
    }
}
