//! Flat per-resolution index.

use crate::entry::Entry;
use crate::PlanIndex;
use moqo_cost::Bounds;

/// A [`PlanIndex`] storing one flat vector of entries per resolution level.
///
/// Range queries iterate levels `0..=r` and filter each entry against the
/// bounds. This is the simple baseline the cell grid is compared against in
/// the `ablation-index` benchmark.
#[derive(Clone, Debug, Default)]
pub struct LinearIndex<T: Copy> {
    levels: Vec<Vec<Entry<T>>>,
    len: usize,
}

impl<T: Copy> LinearIndex<T> {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self {
            levels: Vec::new(),
            len: 0,
        }
    }
}

impl<T: Copy> PlanIndex<T> for LinearIndex<T> {
    fn insert(&mut self, entry: Entry<T>) {
        let level = entry.level as usize;
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
        }
        self.levels[level].push(entry);
        self.len += 1;
    }

    fn scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool {
        for level in self.levels.iter().take(max_level as usize + 1) {
            for e in level {
                if bounds.respects(&e.cost) && visitor(e) {
                    return true;
                }
            }
        }
        false
    }

    fn drain(&mut self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>> {
        let mut out = Vec::new();
        for level in self.levels.iter_mut().take(max_level as usize + 1) {
            let mut i = 0;
            while i < level.len() {
                if bounds.respects(&level[i].cost) {
                    out.push(level.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        self.len -= out.len();
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::CostVector;

    fn entry(item: u32, cost: &[f64], level: u8) -> Entry<u32> {
        Entry::new(item, CostVector::new(cost), level, 0)
    }

    #[test]
    fn insert_and_range_query() {
        let mut idx = LinearIndex::new();
        idx.insert(entry(1, &[1.0, 1.0], 0));
        idx.insert(entry(2, &[3.0, 3.0], 0));
        idx.insert(entry(3, &[1.0, 1.0], 2));
        assert_eq!(PlanIndex::len(&idx), 3);

        // Level cut-off.
        let lvl0 = idx.collect(&Bounds::unbounded(2), 0);
        assert_eq!(lvl0.len(), 2);
        // Bounds cut-off.
        let cheap = idx.collect(&Bounds::from_slice(&[2.0, 2.0]), 2);
        let items: Vec<u32> = cheap.iter().map(|e| e.item).collect();
        assert_eq!(cheap.len(), 2);
        assert!(items.contains(&1) && items.contains(&3));
    }

    #[test]
    fn scan_early_exit() {
        let mut idx = LinearIndex::new();
        for i in 0..10 {
            idx.insert(entry(i, &[1.0, 1.0], 0));
        }
        let mut seen = 0;
        let stopped = idx.scan(&Bounds::unbounded(2), 0, &mut |_| {
            seen += 1;
            seen == 3
        });
        assert!(stopped);
        assert_eq!(seen, 3);
    }

    #[test]
    fn drain_removes_only_matching() {
        let mut idx = LinearIndex::new();
        idx.insert(entry(1, &[1.0], 0));
        idx.insert(entry(2, &[5.0], 0));
        idx.insert(entry(3, &[1.0], 3));
        let drained = idx.drain(&Bounds::from_slice(&[2.0]), 1);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].item, 1);
        assert_eq!(PlanIndex::len(&idx), 2);
        // Draining everything empties the index.
        let rest = idx.drain(&Bounds::unbounded(1), 10);
        assert_eq!(rest.len(), 2);
        assert!(PlanIndex::is_empty(&idx));
    }
}
