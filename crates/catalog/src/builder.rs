//! Fluent catalog construction.

use crate::catalog::Catalog;
use crate::column::Column;
use crate::table::{Table, TableId};

/// Builds a [`Catalog`] table by table.
///
/// ```
/// use moqo_catalog::{CatalogBuilder, Column};
///
/// let catalog = CatalogBuilder::new()
///     .table("nation", 25, 64, vec![Column::key("n_nationkey", 25)])
///     .table("region", 5, 64, vec![Column::key("r_regionkey", 5)])
///     .build();
/// assert_eq!(catalog.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    tables: Vec<Table>,
}

impl CatalogBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table with columns; returns the builder for chaining.
    pub fn table(
        mut self,
        name: impl Into<String>,
        cardinality: u64,
        row_width: u32,
        columns: Vec<Column>,
    ) -> Self {
        let mut t = Table::new(name, cardinality, row_width);
        t.columns = columns;
        self.tables.push(t);
        self
    }

    /// Adds a table and returns its future id (for wiring join graphs while
    /// building).
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        cardinality: u64,
        row_width: u32,
        columns: Vec<Column>,
    ) -> TableId {
        let id = TableId(self.tables.len() as u32);
        let mut t = Table::new(name, cardinality, row_width);
        t.columns = columns;
        self.tables.push(t);
        id
    }

    /// Finalizes the catalog.
    pub fn build(self) -> Catalog {
        Catalog::new(self.tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_table_returns_sequential_ids() {
        let mut b = CatalogBuilder::new();
        let a = b.add_table("a", 10, 8, vec![]);
        let c = b.add_table("c", 20, 8, vec![]);
        assert_eq!(a, TableId(0));
        assert_eq!(c, TableId(1));
        let catalog = b.build();
        assert_eq!(catalog.table(a).name, "a");
        assert_eq!(catalog.table(c).cardinality, 20);
    }
}
