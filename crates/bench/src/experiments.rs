//! Experiment drivers, one per paper figure plus the extra ablations.

use crate::workload::ExperimentSetup;
use moqo_baselines::{exhaustive_pareto, memoryless_series, one_shot};
use moqo_core::{IamaConfig, IamaOptimizer, InvocationReport};
use moqo_cost::{coverage_factor, Bounds, CostVector, ResolutionSchedule};
use moqo_costmodel::{CostModel, StandardCostModel};
use moqo_index::IndexKind;
use moqo_query::QuerySpec;
use moqo_tpch::{all_join_blocks, table_counts};
use std::sync::Arc;

/// Average/maximum per-invocation times of the three algorithms for one
/// table-count group — one bar group of Figures 3–5.
#[derive(Clone, Debug)]
pub struct InvocationTimeRow {
    /// Number of resolution levels (`rM + 1`).
    pub levels: usize,
    /// Number of joined tables in this group.
    pub n_tables: usize,
    /// Number of TPC-H blocks in the group.
    pub queries: usize,
    /// IAMA: mean per-invocation seconds over the invocation series.
    pub iama_avg: f64,
    /// IAMA: maximum per-invocation seconds.
    pub iama_max: f64,
    /// Memoryless baseline: mean per-invocation seconds.
    pub memoryless_avg: f64,
    /// Memoryless baseline: maximum per-invocation seconds.
    pub memoryless_max: f64,
    /// One-shot baseline: seconds of its single invocation.
    pub oneshot: f64,
}

/// Runs an IAMA invocation series (bounds fixed to ∞, resolution refined
/// from 0 to `rM`) and returns the per-invocation reports — the paper's
/// evaluation scenario "without user interaction".
pub fn iama_series(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
) -> Vec<InvocationReport> {
    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    let b = Bounds::unbounded(model.dim());
    (0..=schedule.r_max())
        .map(|r| opt.optimize(&b, r))
        .collect()
}

/// Like [`iama_series`] but with an explicit optimizer configuration
/// (index-kind and Δ-set ablations).
pub fn iama_series_with_config(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
    config: IamaConfig,
) -> Vec<InvocationReport> {
    let mut opt = IamaOptimizer::with_config(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
        config,
    );
    let b = Bounds::unbounded(model.dim());
    (0..=schedule.r_max())
        .map(|r| opt.optimize(&b, r))
        .collect()
}

/// Figures 3 and 4 (and the data for Figure 5): per-invocation times of
/// IAMA, the memoryless baseline, and the one-shot baseline on all TPC-H
/// join blocks, grouped by number of joined tables, for each resolution-
/// level count in the setup.
pub fn figure_invocation_times(
    setup: &ExperimentSetup,
    model: &StandardCostModel,
) -> Vec<InvocationTimeRow> {
    let blocks = all_join_blocks(setup.sf);
    let counts = table_counts(setup.sf);
    let b = Bounds::unbounded(model.dim());
    let mut rows = Vec::new();
    for &levels in &setup.level_counts {
        let schedule = setup.schedule(levels);
        for &n in &counts {
            let group: Vec<&QuerySpec> = blocks.iter().filter(|q| q.n_tables() == n).collect();
            if group.is_empty() {
                continue;
            }
            let mut iama_avg = 0.0;
            let mut iama_max: f64 = 0.0;
            let mut mem_avg = 0.0;
            let mut mem_max: f64 = 0.0;
            let mut shot = 0.0;
            for spec in &group {
                let reports = iama_series(spec, model, &schedule);
                let times: Vec<f64> = reports.iter().map(|r| r.seconds()).collect();
                iama_avg += crate::stats::mean(&times).unwrap_or(0.0);
                iama_max = iama_max.max(crate::stats::max(&times).unwrap_or(0.0));
                let mem = memoryless_series(spec, model, &schedule, &b);
                let mem_times: Vec<f64> = mem.iter().map(|o| o.duration.as_secs_f64()).collect();
                mem_avg += crate::stats::mean(&mem_times).unwrap_or(0.0);
                mem_max = mem_max.max(crate::stats::max(&mem_times).unwrap_or(0.0));
                shot += one_shot(spec, model, &schedule, &b).duration.as_secs_f64();
            }
            let q = group.len() as f64;
            rows.push(InvocationTimeRow {
                levels,
                n_tables: n,
                queries: group.len(),
                iama_avg: iama_avg / q,
                iama_max,
                memoryless_avg: mem_avg / q,
                memoryless_max: mem_max,
                oneshot: shot / q,
            });
        }
    }
    rows
}

/// One point of the anytime-quality curve (Figure 2a): after a cumulative
/// amount of optimization time, how closely does the current frontier
/// cover the final (finest) frontier?
#[derive(Clone, Debug)]
pub struct QualityPoint {
    /// Invocation index.
    pub invocation: usize,
    /// Cumulative optimization seconds so far.
    pub cumulative_seconds: f64,
    /// Coverage factor of the current frontier w.r.t. the finest frontier
    /// (1.0 = covers it exactly; lower quality = larger factor).
    pub coverage_vs_final: f64,
    /// Plans in the current frontier.
    pub frontier_size: usize,
}

/// Figure 2a: anytime (IAMA) vs one-shot result quality over time for one
/// query. Returns the IAMA curve and the one-shot `(seconds, frontier)`
/// endpoint (the one-shot algorithm produces nothing before it finishes).
pub fn anytime_quality(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
) -> (Vec<QualityPoint>, f64) {
    let b = Bounds::unbounded(model.dim());
    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    let mut frontiers: Vec<(f64, Vec<CostVector>, usize)> = Vec::new();
    let mut cumulative = 0.0;
    for r in 0..=schedule.r_max() {
        let report = opt.optimize(&b, r);
        cumulative += report.seconds();
        let costs = opt.frontier(&b, r).costs();
        let size = costs.len();
        frontiers.push((cumulative, costs, size));
    }
    let final_costs = frontiers
        .last()
        .map(|(_, c, _)| c.clone())
        .unwrap_or_default();
    let curve = frontiers
        .into_iter()
        .enumerate()
        .map(|(i, (t, costs, size))| QualityPoint {
            invocation: i,
            cumulative_seconds: t,
            coverage_vs_final: coverage_factor(&costs, &final_costs),
            frontier_size: size,
        })
        .collect();
    let oneshot_secs = one_shot(spec, model, schedule, &b).duration.as_secs_f64();
    (curve, oneshot_secs)
}

/// Figure 2b: per-invocation run time of the incremental algorithm vs the
/// memoryless baseline over one invocation series.
pub fn incremental_vs_memoryless(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
) -> Vec<(usize, f64, f64)> {
    let b = Bounds::unbounded(model.dim());
    let iama: Vec<f64> = iama_series(spec, model, schedule)
        .iter()
        .map(|r| r.seconds())
        .collect();
    let mem: Vec<f64> = memoryless_series(spec, model, schedule, &b)
        .iter()
        .map(|o| o.duration.as_secs_f64())
        .collect();
    iama.into_iter()
        .zip(mem)
        .enumerate()
        .map(|(i, (a, m))| (i, a, m))
        .collect()
}

/// Result of the Lemma 5–7 invariant check on one query.
#[derive(Clone, Debug)]
pub struct InvariantReport {
    /// Query block name.
    pub query: String,
    /// Maximum generations of any single plan (Lemma 5: must be ≤ 1).
    pub max_plan_generations: u32,
    /// Maximum generations of any ordered pair (Lemma 6: must be ≤ 1).
    pub max_pair_generations: u32,
    /// Maximum candidate retrievals of any plan (Lemma 7: ≤ rM + 1).
    pub max_candidate_retrievals: u32,
    /// The Lemma 7 bound `rM + 1`.
    pub retrieval_bound: u32,
}

/// Verifies the incremental invariants (Lemmas 5–7) on every TPC-H block.
pub fn verify_invariants(
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
    sf: f64,
) -> Vec<InvariantReport> {
    all_join_blocks(sf)
        .iter()
        .map(|spec| {
            let mut opt = IamaOptimizer::with_config(
                Arc::new(spec.clone()),
                Arc::new(model.clone()),
                schedule.clone(),
                IamaConfig::tracked(),
            );
            let b = Bounds::unbounded(model.dim());
            for r in 0..=schedule.r_max() {
                opt.optimize(&b, r);
            }
            let stats = opt.stats();
            InvariantReport {
                query: spec.name.clone(),
                max_plan_generations: stats.max_plan_generations(),
                max_pair_generations: stats.max_pair_generations(),
                max_candidate_retrievals: stats.max_candidate_retrievals(),
                retrieval_bound: (schedule.r_max() + 1) as u32,
            }
        })
        .collect()
}

/// Result of the approximation-quality check on one query.
#[derive(Clone, Debug)]
pub struct QualityReport {
    /// Query block name.
    pub query: String,
    /// Joined tables.
    pub n_tables: usize,
    /// Measured coverage factor of IAMA's final frontier vs the exhaustive
    /// Pareto frontier.
    pub measured_factor: f64,
    /// The formal guarantee `alpha_T^n` (Theorem 2).
    pub guarantee: f64,
    /// Exhaustive frontier size.
    pub exhaustive_size: usize,
    /// IAMA frontier size at the finest resolution.
    pub iama_size: usize,
}

/// Theorem 2 in practice: measured approximation factors of IAMA's finest
/// frontier against exhaustive ground truth, on all blocks with at most
/// `max_tables` tables (exhaustive DP is exponential).
pub fn verify_quality(
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
    sf: f64,
    max_tables: usize,
) -> Vec<QualityReport> {
    let b = Bounds::unbounded(model.dim());
    all_join_blocks(sf)
        .iter()
        .filter(|q| q.n_tables() <= max_tables)
        .map(|spec| {
            let exact = exhaustive_pareto(spec, model, &b);
            let exact_costs = exact.pareto_costs();
            let mut opt = IamaOptimizer::new(
                Arc::new(spec.clone()),
                Arc::new(model.clone()),
                schedule.clone(),
            );
            for r in 0..=schedule.r_max() {
                opt.optimize(&b, r);
            }
            let frontier = opt.frontier(&b, schedule.r_max());
            QualityReport {
                query: spec.name.clone(),
                n_tables: spec.n_tables(),
                measured_factor: coverage_factor(&frontier.costs(), &exact_costs),
                guarantee: schedule.guarantee(schedule.r_max(), spec.n_tables()),
                exhaustive_size: exact_costs.len(),
                iama_size: frontier.len(),
            }
        })
        .collect()
}

/// Ablation: total series time with the cell-grid index vs the flat index.
pub fn ablation_index(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
) -> (f64, f64) {
    let grid = iama_series_with_config(
        spec,
        model,
        schedule,
        IamaConfig {
            index_kind: IndexKind::CellGrid,
            ..IamaConfig::default()
        },
    );
    let linear = iama_series_with_config(
        spec,
        model,
        schedule,
        IamaConfig {
            index_kind: IndexKind::Linear,
            ..IamaConfig::default()
        },
    );
    let sum = |rs: &[InvocationReport]| rs.iter().map(|r| r.seconds()).sum();
    (sum(&grid), sum(&linear))
}

/// Ablation: Δ-set filtering on vs off — total time and settled pairs
/// skipped (`(secs_with, secs_without, settled_pairs_without)`). Without
/// Δ filtering every invocation recombines the full cross products, so
/// already-combined pairs are re-skipped — positionally by the watermark
/// rectangles where possible, through the `IsFresh` hash otherwise.
pub fn ablation_delta(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
) -> (f64, f64, u64) {
    let with_delta = iama_series_with_config(spec, model, schedule, IamaConfig::default());
    let b = Bounds::unbounded(model.dim());
    let mut opt = IamaOptimizer::with_config(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
        IamaConfig {
            use_delta: false,
            ..IamaConfig::default()
        },
    );
    let mut without_secs = 0.0;
    for r in 0..=schedule.r_max() {
        without_secs += opt.optimize(&b, r).seconds();
    }
    let settled = opt.stats().stale_pairs_skipped + opt.stats().pairs_skipped_watermark;
    let with_secs: f64 = with_delta.iter().map(|r| r.seconds()).sum();
    (with_secs, without_secs, settled)
}

/// Bound-tightening scenario (Example 3 / Figure 1c): invocation times of
/// a series where the user tightens the time bound halfway through.
/// Returns `(invocation, resolution, seconds, frontier_size)` tuples.
pub fn bounds_scenario(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
) -> Vec<(usize, usize, f64, usize)> {
    let dim = model.dim();
    let unb = Bounds::unbounded(dim);
    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    let mut out = Vec::new();
    let half = schedule.r_max() / 2;
    // Phase A: unbounded, refine to half resolution.
    for r in 0..=half {
        let rep = opt.optimize(&unb, r);
        out.push((out.len(), r, rep.seconds(), rep.frontier_size));
    }
    // The user tightens the time bound to 2x the fastest known plan.
    let t_min = opt
        .frontier(&unb, half)
        .min_by_metric(0)
        .map(|p| p.cost[0])
        .unwrap_or(f64::INFINITY);
    let tight = Bounds::unbounded(dim).with_limit(0, t_min * 2.0);
    // Phase B: bounds change resets resolution to 0 (Algorithm 1).
    for r in 0..=schedule.r_max() {
        let rep = opt.optimize(&tight, r);
        out.push((out.len(), r, rep.seconds(), rep.frontier_size));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{bench_model, bench_model_small};
    use moqo_tpch::query_block;

    #[test]
    fn iama_series_produces_one_report_per_level() {
        let spec = query_block("q03", 0.01).unwrap();
        let model = bench_model();
        let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
        let reports = iama_series(&spec, &model, &schedule);
        assert_eq!(reports.len(), 4);
        assert!(reports.iter().all(|r| r.frontier_size > 0));
    }

    #[test]
    fn invariants_hold_on_small_tpch() {
        let model = bench_model_small();
        let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
        for rep in verify_invariants(&model, &schedule, 0.001) {
            assert!(rep.max_plan_generations <= 1, "{}", rep.query);
            assert!(rep.max_pair_generations <= 1, "{}", rep.query);
            assert!(
                rep.max_candidate_retrievals <= rep.retrieval_bound,
                "{}",
                rep.query
            );
        }
    }

    #[test]
    fn quality_respects_guarantee_on_small_blocks() {
        let model = bench_model_small();
        let schedule = ResolutionSchedule::linear(2, 1.1, 0.4);
        for rep in verify_quality(&model, &schedule, 0.001, 3) {
            assert!(
                rep.measured_factor <= rep.guarantee + 1e-9,
                "{}: measured {} > guarantee {}",
                rep.query,
                rep.measured_factor,
                rep.guarantee
            );
        }
    }

    #[test]
    fn anytime_quality_curve_improves() {
        let spec = query_block("q05", 0.01).unwrap();
        let model = bench_model();
        let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
        let (curve, oneshot_secs) = anytime_quality(&spec, &model, &schedule);
        assert_eq!(curve.len(), 5);
        // The final point covers the final frontier exactly.
        assert!((curve.last().unwrap().coverage_vs_final - 1.0).abs() < 1e-9);
        // Quality never degrades along the curve.
        for w in curve.windows(2) {
            assert!(w[1].coverage_vs_final <= w[0].coverage_vs_final + 1e-9);
        }
        assert!(oneshot_secs > 0.0);
    }

    #[test]
    fn bounds_scenario_runs_and_resets_resolution() {
        let spec = query_block("q03", 0.01).unwrap();
        let model = bench_model();
        let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
        let rows = bounds_scenario(&spec, &model, &schedule);
        // Phase A: r = 0..=2, phase B: r = 0..=4.
        let resolutions: Vec<usize> = rows.iter().map(|(_, r, _, _)| *r).collect();
        assert_eq!(resolutions, vec![0, 1, 2, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn ablations_execute() {
        let spec = query_block("q03", 0.01).unwrap();
        let model = bench_model();
        let schedule = ResolutionSchedule::linear(3, 1.05, 0.5);
        let (grid, linear) = ablation_index(&spec, &model, &schedule);
        assert!(grid > 0.0 && linear > 0.0);
        let (with_d, without_d, settled) = ablation_delta(&spec, &model, &schedule);
        assert!(with_d > 0.0 && without_d > 0.0);
        // Without Δ filtering, already-combined pairs are re-skipped
        // (watermark rectangles or the IsFresh fallback).
        assert!(settled > 0);
    }
}

/// Accumulated space consumption after a full invocation series — the
/// quantities Theorem 3 bounds (result plans, candidate plans, arena
/// size), per TPC-H block.
#[derive(Clone, Debug)]
pub struct SpaceReport {
    /// Query block name.
    pub query: String,
    /// Joined tables.
    pub n_tables: usize,
    /// Total plans ever constructed (arena length).
    pub plans: usize,
    /// Result-set entries across all table sets.
    pub result_entries: usize,
    /// Candidate-set entries across all table sets.
    pub candidate_entries: usize,
    /// Completed plans visible at the finest resolution.
    pub frontier: usize,
}

/// Measures accumulated space consumption (Section 5.2) over a full
/// uninterrupted invocation series on every TPC-H block.
pub fn space_consumption(
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
    sf: f64,
) -> Vec<SpaceReport> {
    let b = Bounds::unbounded(model.dim());
    all_join_blocks(sf)
        .iter()
        .map(|spec| {
            let mut opt = IamaOptimizer::new(
                Arc::new(spec.clone()),
                Arc::new(model.clone()),
                schedule.clone(),
            );
            for r in 0..=schedule.r_max() {
                opt.optimize(&b, r);
            }
            SpaceReport {
                query: spec.name.clone(),
                n_tables: spec.n_tables(),
                plans: opt.arena().len(),
                result_entries: opt.result_set_size(),
                candidate_entries: opt.candidate_set_size(),
                frontier: opt.frontier(&b, schedule.r_max()).len(),
            }
        })
        .collect()
}

/// Theorem 5 check: amortized per-invocation time of a long invocation
/// series versus the cost of one single-objective optimization of the
/// same query ("averaged time complexity over many iterations equals the
/// time complexity of single-objective query optimization").
///
/// Returns `(amortized_secs_per_invocation, first_ladder_secs_per_inv,
/// single_objective_secs)` for `rounds` repetitions of the full
/// resolution ladder.
pub fn amortized_time(
    spec: &QuerySpec,
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
    rounds: usize,
) -> (f64, f64, f64) {
    assert!(rounds >= 2);
    let b = Bounds::unbounded(model.dim());
    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    let mut first_ladder = 0.0;
    let mut total = 0.0;
    let mut invocations = 0usize;
    for round in 0..rounds {
        for r in 0..=schedule.r_max() {
            let secs = opt.optimize(&b, r).seconds();
            total += secs;
            invocations += 1;
            if round == 0 {
                first_ladder += secs;
            }
        }
    }
    let single = moqo_baselines::single_objective_dp(spec, model, &vec![1.0; model.dim()])
        .duration
        .as_secs_f64();
    (
        total / invocations as f64,
        first_ladder / (schedule.r_max() + 1) as f64,
        single,
    )
}

/// Schedule-shape comparison (the paper's Section 6.2 future-work remark:
/// the max-invocation ratio "could be extended by a more optimized
/// sequence of precision factors"). Runs IAMA under the paper's linear
/// ladder and under a geometric ladder with the same endpoints and level
/// count; returns `(label, avg_secs, max_secs, total_secs)` per schedule.
pub fn schedule_comparison(
    spec: &QuerySpec,
    model: &StandardCostModel,
    levels: usize,
    alpha_t: f64,
    alpha_s: f64,
) -> Vec<(&'static str, f64, f64, f64)> {
    assert!(levels >= 2);
    let linear = ResolutionSchedule::linear(levels - 1, alpha_t, alpha_s);
    let geometric = ResolutionSchedule::geometric(levels - 1, alpha_t, alpha_t + alpha_s);
    [("linear", linear), ("geometric", geometric)]
        .into_iter()
        .map(|(label, schedule)| {
            let reports = iama_series(spec, model, &schedule);
            let times: Vec<f64> = reports.iter().map(|r| r.seconds()).collect();
            let total: f64 = times.iter().sum();
            let max = crate::stats::max(&times).unwrap_or(0.0);
            (label, total / times.len() as f64, max, total)
        })
        .collect()
}

/// Enumeration-plane effectiveness for one query: the split-visit economy
/// of the precomputed plan versus the exhaustive (seed) enumeration, over
/// a full refinement ladder plus one repeated steady-state invocation.
#[derive(Clone, Debug)]
pub struct EnumerationReport {
    /// Query name.
    pub query: String,
    /// Joined tables.
    pub n_tables: usize,
    /// Ordered splits the exhaustive path enumerates **every invocation**:
    /// `sum over k of C(n, k) * (2^k - 2)` — all splits of all subsets,
    /// connected or not.
    pub exhaustive_splits_per_invocation: u64,
    /// Subsets in the precomputed plan (relevant ones only).
    pub plan_subsets: usize,
    /// Valid ordered splits in the plan — the per-invocation ceiling of
    /// the dense path.
    pub plan_splits: usize,
    /// Splits whose pair loop ran across the whole refinement ladder.
    pub ladder_splits_visited: u64,
    /// Splits whose pair loop ran in one repeated invocation (0 in steady
    /// state: the watermarks settle everything).
    pub steady_splits_visited: u64,
    /// Splits settled without touching an entry in that repeated
    /// invocation.
    pub steady_splits_skipped: u64,
    /// Pairs skipped positionally (watermark rectangles) plus via the
    /// `IsFresh` fallback, cumulatively.
    pub pairs_skipped: u64,
    /// Peak size of the reusable combination scratch (left + right).
    pub scratch_high_water: usize,
}

/// Ordered splits the exhaustive enumeration visits per invocation.
pub fn exhaustive_split_visits(n: usize) -> u64 {
    let mut total = 0u64;
    let mut choose = 1u64; // C(n, 0)
    for k in 1..=n as u64 {
        choose = choose * (n as u64 - k + 1) / k;
        if k >= 2 {
            total += choose * ((1u64 << k) - 2);
        }
    }
    total
}

/// The `repro enumeration` experiment on the shared harness: one variant
/// per query, reporting the split-visit economy of the precomputed
/// enumeration plan versus exhaustive per-invocation re-enumeration.
///
/// A lean model (small option sets, no evaluation spin) keeps the
/// refinement ladders fast; the counters being reported are
/// model-independent structure metrics.
pub fn enumeration_experiment(sf: f64, fast: bool) -> crate::harness::ExperimentReport {
    use moqo_costmodel::{MetricSet, StandardCostModelConfig};
    use moqo_query::testkit;

    let model = StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    );
    let schedule = ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.05, 0.5);
    let n = if fast { 8 } else { 10 };
    let mut specs = vec![
        testkit::chain_query(n, 100_000),
        testkit::cycle_query(n, 100_000),
        testkit::star_query(if fast { 6 } else { 8 }, 100_000),
        testkit::clique_query(if fast { 5 } else { 7 }, 1000),
    ];
    for name in ["q03", "q05", "q09"] {
        if let Some(spec) = moqo_tpch::query_block(name, sf) {
            specs.push(spec);
        }
    }
    let mut exp = crate::harness::Experiment::new("enumeration", fast, move || (model, schedule))
        .title("enumeration plane: precomputed splits vs exhaustive re-enumeration");
    for spec in specs {
        let label = spec.name.clone();
        exp = exp.variant("enumeration plane", label, move |s, t| {
            let reports = enumeration_effectiveness(&s.0, &s.1, std::slice::from_ref(&spec));
            let r = &reports[0];
            t.int("tables", r.n_tables as u64);
            t.int(
                "exhaustive_splits_per_inv",
                r.exhaustive_splits_per_invocation,
            );
            t.int("plan_subsets", r.plan_subsets as u64);
            t.int("plan_splits", r.plan_splits as u64);
            t.int_lower("ladder_splits_visited", r.ladder_splits_visited);
            t.int_lower("steady_splits_visited", r.steady_splits_visited);
            t.int("steady_splits_skipped", r.steady_splits_skipped);
            t.int("pairs_skipped", r.pairs_skipped);
            t.int_lower("scratch_high_water", r.scratch_high_water as u64);
        });
    }
    exp.conclusion(
        "A repeated invocation visits 0 splits: the watermark rectangles \
         settle the whole plan, versus the exhaustive path re-walking \
         every split of every subset each invocation.",
    )
    .run()
}

/// Runs a full ladder plus one repeated invocation per query and reports
/// the enumeration counters (`repro enumeration` / `repro --stats`).
pub fn enumeration_effectiveness(
    model: &StandardCostModel,
    schedule: &ResolutionSchedule,
    specs: &[QuerySpec],
) -> Vec<EnumerationReport> {
    let b = Bounds::unbounded(model.dim());
    specs
        .iter()
        .map(|spec| {
            let mut opt = IamaOptimizer::new(
                Arc::new(spec.clone()),
                Arc::new(model.clone()),
                schedule.clone(),
            );
            for r in 0..=schedule.r_max() {
                opt.optimize(&b, r);
            }
            let ladder_splits_visited = opt.stats().splits_visited;
            let steady = opt.optimize(&b, schedule.r_max());
            let plan = opt.enumeration();
            EnumerationReport {
                query: spec.name.clone(),
                n_tables: spec.n_tables(),
                exhaustive_splits_per_invocation: exhaustive_split_visits(spec.n_tables()),
                plan_subsets: plan.len(),
                plan_splits: plan.total_splits(),
                ladder_splits_visited,
                steady_splits_visited: steady.splits_visited,
                steady_splits_skipped: steady.splits_skipped,
                pairs_skipped: opt.stats().pairs_skipped_watermark
                    + opt.stats().stale_pairs_skipped,
                scratch_high_water: opt.stats().scratch_high_water,
            }
        })
        .collect()
}
