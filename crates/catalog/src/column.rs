//! Columns and column-level statistics.

/// Identifies a column within its table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl ColumnId {
    /// The column's position in the table's column list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The role a column plays in join-selectivity estimation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnRole {
    /// Primary-key column: distinct values equal the table cardinality.
    PrimaryKey,
    /// Foreign-key column referencing some primary key.
    ForeignKey,
    /// Any other attribute.
    Attribute,
}

/// A column with the statistics used by the selectivity estimator.
#[derive(Clone, Debug)]
pub struct Column {
    /// Column name (unique within its table).
    pub name: String,
    /// Estimated number of distinct values.
    pub distinct_values: u64,
    /// Role of the column.
    pub role: ColumnRole,
}

impl Column {
    /// Creates a column with explicit statistics.
    pub fn new(name: impl Into<String>, distinct_values: u64, role: ColumnRole) -> Self {
        Self {
            name: name.into(),
            distinct_values: distinct_values.max(1),
            role,
        }
    }

    /// Creates a primary-key column with `cardinality` distinct values.
    pub fn key(name: impl Into<String>, cardinality: u64) -> Self {
        Self::new(name, cardinality, ColumnRole::PrimaryKey)
    }

    /// Creates a plain attribute column.
    pub fn attribute(name: impl Into<String>, distinct_values: u64) -> Self {
        Self::new(name, distinct_values, ColumnRole::Attribute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_roles() {
        assert_eq!(Column::key("k", 10).role, ColumnRole::PrimaryKey);
        assert_eq!(Column::attribute("a", 10).role, ColumnRole::Attribute);
    }

    #[test]
    fn distinct_values_is_at_least_one() {
        // Guards against division by zero in selectivity formulas.
        assert_eq!(Column::attribute("a", 0).distinct_values, 1);
    }
}
