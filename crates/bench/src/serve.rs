//! Serving-front experiment: submit→first-frontier latency and shard
//! warm-hit rate under a skewed fingerprint workload (`repro serve`).
//!
//! The interactive SLO of an anytime optimizer service is not total
//! optimization time but **time to first visualized frontier** — how long
//! after `submit` a user sees tradeoffs to drag bounds over. The
//! experiment measures it twice over the same skewed workload (a few hot
//! templates dominating, an ad-hoc tail): once against a cold engine, and
//! again after every session retired — when the hot fingerprints resume
//! from parked frontiers on their home shards and the first invocation
//! does zero plan generation.

use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::EngineConfig;
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{GlobalSessionId, ShardConfig, ShardedEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::harness::{Experiment, ExperimentReport, Trial};
use crate::stats::{Samples, Summary};

/// A skewed fingerprint workload: template `k` repeats ~`16/(k+1)` times.
pub fn serving_workload(fast: bool) -> Vec<Arc<QuerySpec>> {
    let mut templates: Vec<Arc<QuerySpec>> = Vec::new();
    let top = if fast { 4 } else { 6 };
    for n in 2..=top {
        templates.push(Arc::new(testkit::chain_query(n, 60_000)));
        templates.push(Arc::new(testkit::star_query(n, 90_000)));
    }
    for seed in [3, 7, 11, 13] {
        templates.push(Arc::new(testkit::random_query(4, seed)));
    }
    let (total, hot) = if fast { (24, 8) } else { (64, 16) };
    let mut specs = Vec::new();
    let mut k = 0usize;
    while specs.len() < total {
        for _ in 0..(hot / (k + 1)).max(1) {
            if specs.len() < total {
                specs.push(templates[k % templates.len()].clone());
            }
        }
        k += 1;
    }
    specs
}

struct ServeState {
    engine: ShardedEngine,
    specs: Vec<Arc<QuerySpec>>,
}

/// Submits the workload and records submit→first-frontier latency per
/// session via the per-session watch channels (no engine-global waits on
/// the measurement path). Each channel delivers delta-streamed
/// [`moqo_serve::SessionEvent`]s; a client-side
/// [`moqo_serve::SessionView`] reassembles them exactly as a remote UI
/// would.
fn run_phase(state: &mut ServeState, trial: &mut Trial) {
    let (engine, specs) = (&state.engine, &state.specs);
    let warm_before: u64 = engine.shard_stats().iter().map(|s| s.warm_routed).sum();
    let mut watchers: Vec<(
        GlobalSessionId,
        Instant,
        std::sync::mpsc::Receiver<moqo_serve::SessionEvent>,
        moqo_serve::SessionView,
    )> = Vec::new();
    for spec in specs {
        let t0 = Instant::now();
        let (gid, _) = engine.submit(spec.clone());
        let rx = engine.watch(gid).expect("fresh session");
        watchers.push((gid, t0, rx, moqo_serve::SessionView::default()));
    }
    // Round-robin over the channels until every session showed a frontier.
    let mut latency = vec![None::<Duration>; watchers.len()];
    let mut zero_plan_starts = 0u64;
    let deadline = Instant::now() + Duration::from_secs(600);
    while latency.iter().any(Option::is_none) {
        assert!(Instant::now() < deadline, "serving experiment stalled");
        let mut progressed = false;
        for (i, (_, t0, rx, view)) in watchers.iter_mut().enumerate() {
            if latency[i].is_some() {
                continue;
            }
            while let Ok(event) = rx.try_recv() {
                progressed = true;
                view.fold(&event).expect("ordered watch stream");
                if !view.frontier.is_empty() && latency[i].is_none() {
                    latency[i] = Some(t0.elapsed());
                    if view
                        .first_report
                        .as_ref()
                        .is_some_and(|r| r.plans_generated == 0)
                    {
                        zero_plan_starts += 1;
                    }
                    break;
                }
            }
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
    assert!(engine.wait_idle(Duration::from_secs(600)));
    for (gid, _, _, _) in &watchers {
        engine.finish(*gid);
    }
    let us: Samples = latency
        .into_iter()
        .map(|d| d.expect("measured").as_secs_f64() * 1e6)
        .collect();
    let distinct = {
        let mut fps: Vec<u64> = specs
            .iter()
            .map(|s| engine.fingerprint(s).as_u64())
            .collect();
        fps.sort_unstable();
        fps.dedup();
        fps.len()
    };
    let warm_after: u64 = engine.shard_stats().iter().map(|s| s.warm_routed).sum();
    trial.int("sessions", specs.len() as u64);
    trial.int("distinct", distinct as u64);
    trial.summary_us("", Summary::of_or_zero(&us));
    trial.int_higher("warm_routed", warm_after - warm_before);
    trial.int("zero_plan_starts", zero_plan_starts);
}

/// Runs the cold pass and the warm pass over one sharded engine.
pub fn serving_experiment(fast: bool) -> ExperimentReport {
    Experiment::new("serve", fast, move || {
        let engine = ShardedEngine::new(
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.02, 0.4),
            ShardConfig {
                shards: 4,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 8,
            },
        );
        let specs = serving_workload(fast);
        ServeState { engine, specs }
    })
    .title("sharded serving: submit -> first frontier under a skewed workload")
    // Cold pass: every fingerprint is new; frontiers park on finish.
    // Warm pass: repeats resume parked frontiers on their warm shards.
    .variant("serving latency", "cold", run_phase)
    .variant("serving latency", "warm", run_phase)
    .conclusion(
        "hot fingerprints resume from parked frontiers on their home shards; \
         warm-routed sessions start with zero plan generation.",
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_pass_serves_from_parked_frontiers() {
        let report = serving_experiment(true);
        let counter = |label: &str, key: &str| report.metric(label, key).unwrap().as_u64().unwrap();
        assert_eq!(counter("cold", "sessions"), counter("warm", "sessions"));
        assert_eq!(
            counter("cold", "warm_routed"),
            0,
            "first sight cannot be warm"
        );
        assert_eq!(counter("cold", "zero_plan_starts"), 0);
        // The cold pass parked each fingerprint at least once (rebalanced
        // duplicates may have parked copies on several shards). The warm
        // pass resumes every parked copy — `take` transfers ownership, so
        // concurrent duplicates beyond the parked copies run cold — and
        // exactly the warm-routed sessions start with zero plans.
        assert!(
            counter("warm", "warm_routed") >= counter("warm", "distinct"),
            "every distinct fingerprint must resume warm at least once"
        );
        assert_eq!(
            counter("warm", "zero_plan_starts"),
            counter("warm", "warm_routed")
        );
        let mean = |label: &str| report.metric(label, "mean_us").unwrap().as_f64().unwrap();
        assert!(mean("cold") > 0.0 && mean("warm") > 0.0);
    }
}
