//! The warm-frontier cache.
//!
//! When an interactive session ends, its optimizer — arena, result and
//! candidate plan sets, `IsFresh` pair set — is parked here keyed by the
//! query's canonical fingerprint. A later session over an equivalent query
//! resumes from that state instead of resolution 0: thanks to the
//! incremental invariants (Lemmas 5–7), its first invocation re-generates
//! **zero** plans and serves the existing frontier immediately.
//!
//! This is only possible because [`IamaOptimizer`] owns its state behind
//! `Arc`s; a borrowed optimizer could never outlive the session that
//! created it.

use crate::fingerprint::QueryFingerprint;
use moqo_core::IamaOptimizer;
use moqo_index::FxHashMap;
use std::collections::VecDeque;

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a parked optimizer.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted because the cache was full.
    pub evictions: u64,
    /// Optimizers currently parked.
    pub entries: usize,
}

/// LRU cache of parked optimizers keyed by [`QueryFingerprint`].
///
/// `take` removes the entry: an optimizer is a mutable object owned by
/// exactly one session at a time, so a hit transfers ownership to the new
/// session and the entry returns via `put` when that session ends.
#[derive(Default)]
pub struct FrontierCache {
    capacity: usize,
    map: FxHashMap<QueryFingerprint, IamaOptimizer>,
    /// Least-recently-used order, front = coldest.
    order: VecDeque<QueryFingerprint>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FrontierCache {
    /// Creates a cache holding at most `capacity` parked optimizers.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Self::default()
        }
    }

    /// Removes and returns the parked optimizer for `fp`, if any.
    pub fn take(&mut self, fp: QueryFingerprint) -> Option<IamaOptimizer> {
        match self.map.remove(&fp) {
            Some(opt) => {
                self.order.retain(|f| *f != fp);
                self.hits += 1;
                Some(opt)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Parks an optimizer under `fp`, evicting the coldest entry if full.
    /// A fresher optimizer for the same fingerprint replaces the old one.
    pub fn put(&mut self, fp: QueryFingerprint, optimizer: IamaOptimizer) {
        if self.map.insert(fp, optimizer).is_some() {
            self.order.retain(|f| *f != fp);
        } else if self.map.len() > self.capacity {
            if let Some(cold) = self.order.pop_front() {
                self.map.remove(&cold);
                self.evictions += 1;
            }
        }
        self.order.push_back(fp);
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::IamaOptimizer;
    use moqo_cost::ResolutionSchedule;
    use moqo_costmodel::{MetricSet, StandardCostModel};
    use moqo_query::testkit;
    use std::sync::Arc;

    fn opt_for(n: usize) -> (QueryFingerprint, IamaOptimizer) {
        let spec = Arc::new(testkit::chain_query(n, 10_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let fp = QueryFingerprint::of(&spec, &MetricSet::paper());
        let opt = IamaOptimizer::new(spec, model, ResolutionSchedule::linear(2, 1.1, 0.4));
        (fp, opt)
    }

    #[test]
    fn take_transfers_ownership_and_counts() {
        let mut cache = FrontierCache::new(4);
        let (fp, opt) = opt_for(2);
        assert!(cache.take(fp).is_none());
        cache.put(fp, opt);
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.take(fp).is_some());
        assert!(cache.take(fp).is_none(), "take must remove the entry");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 0));
    }

    #[test]
    fn lru_eviction_drops_the_coldest() {
        let mut cache = FrontierCache::new(2);
        let (fp2, o2) = opt_for(2);
        let (fp3, o3) = opt_for(3);
        let (fp4, o4) = opt_for(4);
        cache.put(fp2, o2);
        cache.put(fp3, o3);
        cache.put(fp4, o4); // evicts fp2
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.take(fp2).is_none());
        assert!(cache.take(fp3).is_some());
        assert!(cache.take(fp4).is_some());
    }
}
