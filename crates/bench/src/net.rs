//! Network-front experiment: submit→first-frontier latency over real
//! loopback TCP, cold versus warm (`repro net`).
//!
//! The serving experiment (`repro serve`) measures the in-process
//! interactive SLO; this one measures the same figure as a **remote**
//! client sees it — handshake, framed submit, admission frame, and
//! delta-streamed events over a socket — so the table shows what the
//! wire adds on top of the engine, and that warm-frontier economy (first
//! invocation of a repeated query generates zero plans) survives the
//! network boundary intact.

use moqo_core::protocol::{SessionCommand, SessionRequest};
use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::{EngineConfig, ModelRegistry};
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{
    AdmissionConfig, MoqoServer, NetClient, NetConfig, NetServer, ServeConfig, ShardConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE: Duration = Duration::from_secs(600);

/// Latency and warm-start figures for one pass over the workload, as
/// observed by remote clients.
#[derive(Clone, Debug)]
pub struct NetPhaseReport {
    /// `"cold"` or `"warm"`.
    pub label: &'static str,
    /// Sessions driven (one connection each).
    pub sessions: usize,
    /// Mean submit→first-frontier latency (microseconds), socket to
    /// socket.
    pub mean_us: f64,
    /// Median latency (microseconds).
    pub p50_us: f64,
    /// Worst latency (microseconds).
    pub max_us: f64,
    /// Sessions whose first invocation generated zero plans.
    pub zero_plan_starts: usize,
}

/// A small mixed workload of **distinct** fingerprints: the cold pass
/// sees every template for the first time, the warm pass repeats the
/// exact list (so zero-plan starts cleanly separate the two passes).
pub fn net_workload(fast: bool) -> Vec<Arc<QuerySpec>> {
    let mut specs: Vec<Arc<QuerySpec>> = Vec::new();
    let top = if fast { 3 } else { 5 };
    for n in 2..=top {
        specs.push(Arc::new(testkit::chain_query(n, 60_000)));
        specs.push(Arc::new(testkit::star_query(n, 90_000)));
    }
    specs
}

/// Drives every spec through its own connection, recording
/// submit→first-frontier latency; each session is cancelled afterwards so
/// its frontier parks for the warm pass.
fn run_phase(
    addr: std::net::SocketAddr,
    specs: &[Arc<QuerySpec>],
    label: &'static str,
) -> NetPhaseReport {
    let mut us: Vec<f64> = Vec::with_capacity(specs.len());
    let mut zero_plan_starts = 0usize;
    for spec in specs {
        let mut client = NetClient::connect(addr).expect("connect over loopback");
        let t0 = Instant::now();
        client
            .submit(SessionRequest::new(spec.clone()), IDLE)
            .expect("admitted");
        while client.view().frontier.is_empty() {
            client.recv(IDLE).expect("healthy stream");
        }
        us.push(t0.elapsed().as_secs_f64() * 1e6);
        // The first report may trail the first frontier by one event.
        while client.view().first_report.is_none() {
            client.recv(IDLE).expect("healthy stream");
        }
        if client
            .view()
            .first_report
            .as_ref()
            .is_some_and(|r| r.plans_generated == 0)
        {
            zero_plan_starts += 1;
        }
        client.command(SessionCommand::Cancel).expect("send");
        client.wait_finished(IDLE).expect("terminal event");
    }
    us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    NetPhaseReport {
        label,
        sessions: specs.len(),
        mean_us: us.iter().sum::<f64>() / us.len() as f64,
        p50_us: us[us.len() / 2],
        max_us: us.last().copied().unwrap_or(0.0),
        zero_plan_starts,
    }
}

/// Starts a loopback [`NetServer`] and runs the cold and warm passes.
pub fn net_serving_experiment(fast: bool) -> Vec<NetPhaseReport> {
    let model: moqo_costmodel::SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let server = Arc::new(MoqoServer::new(
        model.clone(),
        ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.02, 0.4),
        ServeConfig {
            shard: ShardConfig {
                shards: 2,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 8,
            },
            admission: AdmissionConfig::default(),
            retired_tickets: 4096,
        },
    ));
    let registry = Arc::new(ModelRegistry::with_default(model));
    let net = NetServer::bind(server, registry, NetConfig::default()).expect("bind 127.0.0.1:0");
    let addr = net.local_addr();
    let specs = net_workload(fast);
    // Cold pass: every fingerprint is new; cancelled sessions park.
    let cold = run_phase(addr, &specs, "cold");
    // Warm pass: repeats resume parked frontiers across the wire.
    let warm = run_phase(addr, &specs, "warm");
    net.shutdown();
    vec![cold, warm]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_pass_survives_the_wire() {
        let reports = net_serving_experiment(true);
        assert_eq!(reports.len(), 2);
        let (cold, warm) = (&reports[0], &reports[1]);
        assert_eq!(cold.sessions, warm.sessions);
        assert_eq!(cold.zero_plan_starts, 0, "first sight cannot be warm");
        // Sequential sessions: every warm repeat resumes its own parked
        // frontier, so the whole warm pass starts at zero plans.
        assert_eq!(warm.zero_plan_starts, warm.sessions);
        assert!(cold.mean_us > 0.0 && warm.mean_us > 0.0);
    }
}
