//! Plan-set indexes supporting (cost, resolution) range queries.
//!
//! IAMA indexes both result plans and candidate plans "by plan cost and by
//! resolution level", using "a data structure supporting multi-dimensional
//! range queries" (Section 4.1). The notation `S[0..b, 0..r]` selects the
//! entries whose cost vector is dominated by the bounds `b` and whose
//! resolution tag is at most `r`.
//!
//! Three interchangeable implementations are provided behind the
//! [`PlanIndex`] trait:
//!
//! * [`LinearIndex`] — per-resolution flat vectors, scanned with a bounds
//!   filter. Simple and cache-friendly; retrieval is `O(stored)`.
//! * [`CellGrid`] — the logarithmically partitioned cell structure the
//!   paper recommends (citing Bentley & Friedman): cost space is split
//!   into cells along `floor(log2(1 + cost))` per metric, so a range query
//!   can accept whole cells without per-entry checks and reject
//!   out-of-range cells in `O(1)`. Under the paper's uniformity
//!   assumptions retrieval of `F` entries is `O(F)`.
//! * [`KdTree`] — a classic k-d tree over the cost metrics, pruning whole
//!   subtrees during range queries; drains use tombstones with periodic
//!   compaction.
//!
//! The paper's amortized analysis prioritizes retrieval over insertion
//! time (Section 4.1); the grid and flat structures insert in `O(1)`, the
//! tree in `O(depth)`.
//!
//! The crate also provides [`PairSet`], the hash structure behind the
//! `IsFresh` predicate ensuring no sub-plan pair is combined twice
//! (Lemma 6), and [`fxhash`], a small fast non-cryptographic hasher used
//! throughout the optimizer.

#![warn(missing_docs)]

pub mod cellgrid;
pub mod entry;
pub mod fxhash;
pub mod kdtree;
pub mod linear;
pub mod pairs;
pub mod soa;

pub use cellgrid::CellGrid;
pub use entry::Entry;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use kdtree::KdTree;
pub use linear::LinearIndex;
pub use pairs::PairSet;
pub use soa::SoaCell;

use moqo_cost::{Bounds, CostVector, MAX_DIM};

/// Outcome of a [`PlanIndex::dominance_scan`] witness search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DominanceScan {
    /// The smallest domination factor among the accepted entries at the
    /// point the scan stopped (`f64::INFINITY` if none was accepted).
    /// When the scan ran to completion this is the exact minimum; when
    /// it stopped early it is the factor that crossed the threshold —
    /// in both cases bit-identical between the batched and scalar
    /// paths, because both visit entries in the same order.
    pub best_factor: f64,
    /// Cost-vector comparisons charged to the scan. The batched path
    /// charges whole lane blocks (that is what it evaluates), so this
    /// may exceed the scalar count by up to one block around an early
    /// exit; it is diagnostics, never part of the pruning decision.
    pub comparisons: u64,
}

/// A borrowed batch of index entries in struct-of-arrays layout, at
/// most [`moqo_cost::lanes::BLOCK`] rows, yielded by
/// [`PlanIndex::scan_batch`]. The `mask` selects the rows that are
/// inside the scanned range; unselected rows are present in the columns
/// but must be ignored.
pub struct EntryBatch<'a, T: Copy> {
    items: &'a [T],
    levels: &'a [u8],
    invocations: &'a [u32],
    lanes: [&'a [f64]; MAX_DIM],
    dim: usize,
    mask: u64,
}

impl<'a, T: Copy> EntryBatch<'a, T> {
    /// Rows in the batch (selected or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the batch holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of cost metrics per row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Hit mask of in-range rows (bit `j` = row `j`).
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Iterates the selected row indices in ascending order.
    #[inline]
    pub fn selected(&self) -> impl Iterator<Item = usize> {
        let mut bits = self.mask;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(j)
            }
        })
    }

    /// The payload of row `i`.
    #[inline]
    pub fn item(&self, i: usize) -> T {
        self.items[i]
    }

    /// The resolution level of row `i`.
    #[inline]
    pub fn level(&self, i: usize) -> u8 {
        self.levels[i]
    }

    /// The insertion invocation of row `i`.
    #[inline]
    pub fn invocation(&self, i: usize) -> u32 {
        self.invocations[i]
    }

    /// The contiguous cost lane of metric `m`.
    #[inline]
    pub fn lane(&self, m: usize) -> &'a [f64] {
        self.lanes[m]
    }

    /// Reconstructs the cost vector of row `i`, bit-identical to the
    /// vector that was inserted.
    #[inline]
    pub fn cost(&self, i: usize) -> CostVector {
        CostVector::from_lanes(self.dim, |m| self.lanes[m][i])
    }

    /// Reconstructs the full entry of row `i`.
    #[inline]
    pub fn entry(&self, i: usize) -> Entry<T> {
        Entry::new(
            self.item(i),
            self.cost(i),
            self.level(i),
            self.invocation(i),
        )
    }
}

/// The scalar reference implementation of [`PlanIndex::dominance_scan`]:
/// a per-entry visitor scan computing the same minimum with the same
/// early exits. This is the default for indexes without native lane
/// storage and the ablation baseline the batched kernels are verified
/// against (`IamaConfig::use_batch_kernels = false` routes pruning
/// through this function even on a cell grid).
pub fn dominance_scan_scalar<T, I>(
    index: &I,
    bounds: &Bounds,
    max_level: u8,
    target: &CostVector,
    threshold: f64,
    accept: &mut dyn FnMut(T) -> bool,
) -> DominanceScan
where
    T: Copy,
    I: PlanIndex<T> + ?Sized,
{
    let mut best_factor = f64::INFINITY;
    let mut comparisons = 0u64;
    index.scan(bounds, max_level, &mut |e| {
        comparisons += 1;
        if accept(e.item) {
            let f = e.cost.domination_factor(target);
            if f < best_factor {
                best_factor = f;
            }
            if best_factor <= threshold {
                return true;
            }
        }
        false
    });
    DominanceScan {
        best_factor,
        comparisons,
    }
}

/// A plan-set index keyed by cost vector and resolution level.
///
/// `T` is the payload (a plan identifier in the optimizer).
pub trait PlanIndex<T: Copy> {
    /// Inserts an entry.
    fn insert(&mut self, entry: Entry<T>);

    /// Visits every entry in `S[0..b, 0..r]` (cost dominated by `bounds`,
    /// level `<= max_level`). The visitor returns `true` to stop early;
    /// `scan` returns `true` if it was stopped early.
    ///
    /// Visit order is unspecified.
    fn scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool;

    /// Removes and returns every entry in `S[0..b, 0..r]`.
    fn drain(&mut self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// True if no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects (copies of) all entries in `S[0..b, 0..r]`.
    fn collect(&self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>> {
        let mut out = Vec::new();
        self.scan(bounds, max_level, &mut |e| {
            out.push(*e);
            false
        });
        out
    }

    /// True if some entry in `S[0..b, 0..r]` satisfies `pred`.
    fn any(&self, bounds: &Bounds, max_level: u8, pred: &mut dyn FnMut(&Entry<T>) -> bool) -> bool {
        self.scan(bounds, max_level, pred)
    }

    /// Batched variant of [`PlanIndex::scan`]: visits `S[0..b, 0..r]`
    /// as struct-of-arrays [`EntryBatch`]es (hit mask per block)
    /// instead of one `dyn` callback per entry. The consumer returns
    /// `true` to stop early; `scan_batch` returns `true` if stopped.
    ///
    /// Selected rows arrive in exactly the order [`PlanIndex::scan`]
    /// would visit them, so batched and scalar consumers observe the
    /// same entry sequence. The default implementation wraps the scalar
    /// scan in one-row batches; SoA-backed indexes override it to yield
    /// whole blocks borrowed straight from cell storage.
    fn scan_batch(
        &self,
        bounds: &Bounds,
        max_level: u8,
        consumer: &mut dyn FnMut(&EntryBatch<'_, T>) -> bool,
    ) -> bool {
        self.scan(bounds, max_level, &mut |e| {
            let items = [e.item];
            let levels = [e.level];
            let invocations = [e.invocation];
            let dim = e.cost.dim();
            let mut lane_store = [[0.0f64; 1]; MAX_DIM];
            for (m, slot) in lane_store.iter_mut().enumerate().take(dim) {
                slot[0] = e.cost[m];
            }
            let lanes: [&[f64]; MAX_DIM] = std::array::from_fn(|m| &lane_store[m][..]);
            consumer(&EntryBatch {
                items: &items,
                levels: &levels,
                invocations: &invocations,
                lanes,
                dim,
                mask: 1,
            })
        })
    }

    /// Witness search over `S[0..b, 0..r]` (the pruning hot path,
    /// Algorithm 3 line 7): among the in-range entries for which
    /// `accept(item)` holds, finds the minimal domination factor of the
    /// entry's cost against `target`, stopping early as soon as the
    /// running minimum reaches `threshold` (pass
    /// `f64::NEG_INFINITY` to force a full scan — factors are never
    /// negative).
    ///
    /// The default implementation is the scalar visitor scan
    /// ([`dominance_scan_scalar`]); SoA-backed indexes override it with
    /// the lane kernels of [`moqo_cost::lanes`]. Both visit entries in
    /// the same order and compute bit-identical factors, so every
    /// caller decision (`best_factor <= x`) — and therefore every
    /// downstream frontier byte — is path-independent; only
    /// [`DominanceScan::comparisons`] may differ (block granularity).
    fn dominance_scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        target: &CostVector,
        threshold: f64,
        accept: &mut dyn FnMut(T) -> bool,
    ) -> DominanceScan {
        dominance_scan_scalar(self, bounds, max_level, target, threshold, accept)
    }
}

/// Which index implementation to use (runtime-selectable for the ablation
/// benchmarks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Flat per-resolution vectors.
    Linear,
    /// Logarithmic cell grid.
    CellGrid,
    /// k-d tree (cycling split axes, tombstoned drains).
    KdTree,
}

/// A [`PlanIndex`] implementation chosen at runtime.
pub enum DynIndex<T: Copy> {
    /// Flat index variant.
    Linear(LinearIndex<T>),
    /// Cell-grid variant.
    Grid(CellGrid<T>),
    /// k-d tree variant.
    Tree(KdTree<T>),
}

impl<T: Copy> DynIndex<T> {
    /// Creates an empty index of the requested kind for `dim` metrics.
    pub fn new(kind: IndexKind, dim: usize) -> Self {
        match kind {
            IndexKind::Linear => DynIndex::Linear(LinearIndex::new()),
            IndexKind::CellGrid => DynIndex::Grid(CellGrid::new(dim)),
            IndexKind::KdTree => DynIndex::Tree(KdTree::new(dim)),
        }
    }
}

impl<T: Copy> PlanIndex<T> for DynIndex<T> {
    fn insert(&mut self, entry: Entry<T>) {
        match self {
            DynIndex::Linear(i) => i.insert(entry),
            DynIndex::Grid(i) => i.insert(entry),
            DynIndex::Tree(i) => i.insert(entry),
        }
    }

    fn scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool {
        match self {
            DynIndex::Linear(i) => i.scan(bounds, max_level, visitor),
            DynIndex::Grid(i) => i.scan(bounds, max_level, visitor),
            DynIndex::Tree(i) => i.scan(bounds, max_level, visitor),
        }
    }

    fn drain(&mut self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>> {
        match self {
            DynIndex::Linear(i) => i.drain(bounds, max_level),
            DynIndex::Grid(i) => i.drain(bounds, max_level),
            DynIndex::Tree(i) => i.drain(bounds, max_level),
        }
    }

    fn len(&self) -> usize {
        match self {
            DynIndex::Linear(i) => PlanIndex::len(i),
            DynIndex::Grid(i) => PlanIndex::len(i),
            DynIndex::Tree(i) => PlanIndex::len(i),
        }
    }

    fn scan_batch(
        &self,
        bounds: &Bounds,
        max_level: u8,
        consumer: &mut dyn FnMut(&EntryBatch<'_, T>) -> bool,
    ) -> bool {
        match self {
            DynIndex::Linear(i) => i.scan_batch(bounds, max_level, consumer),
            DynIndex::Grid(i) => i.scan_batch(bounds, max_level, consumer),
            DynIndex::Tree(i) => i.scan_batch(bounds, max_level, consumer),
        }
    }

    fn dominance_scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        target: &CostVector,
        threshold: f64,
        accept: &mut dyn FnMut(T) -> bool,
    ) -> DominanceScan {
        match self {
            DynIndex::Linear(i) => i.dominance_scan(bounds, max_level, target, threshold, accept),
            DynIndex::Grid(i) => i.dominance_scan(bounds, max_level, target, threshold, accept),
            DynIndex::Tree(i) => i.dominance_scan(bounds, max_level, target, threshold, accept),
        }
    }
}

#[cfg(test)]
mod batch_proptests {
    use super::*;
    use proptest::prelude::*;

    fn fingerprint(e: &Entry<u32>) -> (u32, u8, u32, Vec<u64>) {
        (
            e.item,
            e.level,
            e.invocation,
            e.cost.as_slice().iter().map(|v| v.to_bits()).collect(),
        )
    }

    proptest! {
        /// The SoA batched scan and the scalar visitor scan accept the
        /// same entry sequence, and the batched witness search reports
        /// the same minimal domination factor bit for bit — across all
        /// index kinds (Linear/KdTree run the scalar default through
        /// the batch API, the cell grid runs the lane kernels).
        #[test]
        fn batched_scan_matches_scalar_across_kinds(
            entries in proptest::collection::vec(
                ((0.0f64..1e5), (0.0f64..1e5), (0.0f64..1e5), 0u8..4), 0..120),
            qb in (0.0f64..1.2e5, 0.0f64..1.2e5, 0.0f64..1.2e5),
            target in (1e-3f64..1e5, 1e-3f64..1e5, 1e-3f64..1e5),
            qr in 0u8..4,
            threshold in 0.9f64..4.0,
            unbounded in any::<bool>(),
        ) {
            for kind in [IndexKind::Linear, IndexKind::CellGrid, IndexKind::KdTree] {
                let mut idx: DynIndex<u32> = DynIndex::new(kind, 3);
                for (i, (a, b, c, lvl)) in entries.iter().enumerate() {
                    idx.insert(Entry::new(
                        i as u32,
                        CostVector::new(&[*a, *b, *c]),
                        *lvl,
                        i as u32,
                    ));
                }
                let bounds = if unbounded {
                    Bounds::unbounded(3)
                } else {
                    Bounds::from_slice(&[qb.0, qb.1, qb.2])
                };
                // Accepted entry sequence: identical, in order.
                let mut scalar_seq = Vec::new();
                idx.scan(&bounds, qr, &mut |e| {
                    scalar_seq.push(fingerprint(e));
                    false
                });
                let mut batch_seq = Vec::new();
                idx.scan_batch(&bounds, qr, &mut |batch| {
                    for j in batch.selected() {
                        batch_seq.push(fingerprint(&batch.entry(j)));
                    }
                    false
                });
                prop_assert_eq!(&scalar_seq, &batch_seq, "kind {:?}", kind);

                // Minimal domination factor: bit-identical, with and
                // without early-exit thresholds, with and without a
                // selective accept predicate.
                let t = CostVector::new(&[target.0, target.1, target.2]);
                for thr in [f64::NEG_INFINITY, threshold] {
                    let batched =
                        idx.dominance_scan(&bounds, qr, &t, thr, &mut |_| true);
                    let scalar = dominance_scan_scalar(
                        &idx, &bounds, qr, &t, thr, &mut |_| true);
                    prop_assert_eq!(
                        batched.best_factor.to_bits(),
                        scalar.best_factor.to_bits(),
                        "kind {:?} thr {}", kind, thr
                    );
                    let batched_odd = idx.dominance_scan(
                        &bounds, qr, &t, thr, &mut |item| item % 2 == 1);
                    let scalar_odd = dominance_scan_scalar(
                        &idx, &bounds, qr, &t, thr, &mut |item| item % 2 == 1);
                    prop_assert_eq!(
                        batched_odd.best_factor.to_bits(),
                        scalar_odd.best_factor.to_bits(),
                        "kind {:?} thr {} (selective)", kind, thr
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod dyn_tests {
    use super::*;
    use moqo_cost::CostVector;

    #[test]
    fn dyn_index_dispatches_both_kinds() {
        for kind in [IndexKind::Linear, IndexKind::CellGrid, IndexKind::KdTree] {
            let mut idx: DynIndex<u32> = DynIndex::new(kind, 2);
            idx.insert(Entry::new(7, CostVector::new(&[1.0, 2.0]), 0, 0));
            idx.insert(Entry::new(8, CostVector::new(&[5.0, 5.0]), 1, 0));
            assert_eq!(PlanIndex::len(&idx), 2);
            let all = idx.collect(&Bounds::unbounded(2), 1);
            assert_eq!(all.len(), 2);
            let low = idx.collect(&Bounds::from_slice(&[2.0, 2.0]), 1);
            assert_eq!(low.len(), 1);
            assert_eq!(low[0].item, 7);
            let lvl0 = idx.collect(&Bounds::unbounded(2), 0);
            assert_eq!(lvl0.len(), 1);
            let drained = idx.drain(&Bounds::unbounded(2), 1);
            assert_eq!(drained.len(), 2);
            assert!(PlanIndex::is_empty(&idx));
        }
    }
}
