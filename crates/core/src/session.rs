//! The interactive main control loop — Algorithm 1 of the paper, spoken
//! in the [session protocol](crate::protocol).
//!
//! One [`SessionCommand`] is one iteration of Algorithm 1: the command is
//! applied to the optimization focus (lines 17–25), one incremental
//! invocation runs at that focus (lines 13–14), and the resulting
//! [`SessionEvent`] carries the visualization (line 15) as a
//! [`FrontierDelta`] against the previous event. The same command/event
//! vocabulary drives `moqo-engine`'s `SessionManager` and `moqo-serve`'s
//! `MoqoServer`.

use crate::frontier::FrontierSnapshot;
use crate::optimizer::IamaOptimizer;
use crate::preference::Preference;
use crate::protocol::{
    FrontierDelta, ProtocolError, SessionCommand, SessionEvent, SessionOutcome, SessionRequest,
};
use crate::report::InvocationReport;
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::SharedCostModel;

/// The interactive MOQO session: owns the optimizer state, the current
/// bounds, resolution, and auto-select preference, and advances them one
/// [`SessionCommand`] at a time.
///
/// Usage mirrors Figure 1: apply [`SessionCommand::Refine`] to let the
/// approximation refine, [`SessionCommand::SetBounds`] when the user
/// drags a bound, and [`SessionCommand::SelectPlan`] to finish — or open
/// the session with a [`Preference`] and let it select automatically at
/// the target resolution.
///
/// ```
/// use moqo_core::{Session, SessionCommand, SessionRequest};
/// use moqo_cost::ResolutionSchedule;
/// use moqo_costmodel::{SharedCostModel, StandardCostModel};
/// use moqo_query::testkit;
/// use std::sync::Arc;
///
/// let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
/// let request = SessionRequest::new(Arc::new(testkit::chain_query(2, 20_000)));
/// let mut session =
///     Session::open(request, model, ResolutionSchedule::linear(2, 1.1, 0.4)).unwrap();
/// let event = session.apply(SessionCommand::Refine).unwrap();
/// // The user clicks the fastest visualized tradeoff.
/// let choice = session.frontier().min_by_metric(0).unwrap().plan;
/// let fin = session.apply(SessionCommand::SelectPlan(choice)).unwrap();
/// assert_eq!(fin.outcome.unwrap().selected(), Some(choice));
/// // The first event ships every frontier point as its delta.
/// assert_eq!(event.delta.shipped_points(), session.frontier().len());
/// ```
pub struct Session {
    optimizer: IamaOptimizer,
    bounds: Bounds,
    resolution: usize,
    preference: Option<Preference>,
    /// The frontier as of the last emitted event (delta base).
    frontier: FrontierSnapshot,
    epoch: u64,
    invocations: u64,
    finished: bool,
}

impl Session {
    /// Opens a session from a protocol request, filling unset fields from
    /// the given deployment defaults.
    ///
    /// The request's cost-model and schedule overrides win over the
    /// defaults; bounds and preference are validated against the
    /// effective model before any optimizer state is built.
    pub fn open(
        request: SessionRequest,
        default_model: SharedCostModel,
        default_schedule: ResolutionSchedule,
    ) -> Result<Self, ProtocolError> {
        let model = request.effective_model(&default_model);
        request.validate(model.dim())?;
        let schedule = request.schedule.clone().unwrap_or(default_schedule);
        let bounds = request
            .bounds
            .unwrap_or_else(|| Bounds::unbounded(model.dim()));
        let optimizer = IamaOptimizer::new(request.spec.clone(), model, schedule);
        let mut session = Self::with_bounds(optimizer, bounds);
        session.preference = request.preference;
        Ok(session)
    }

    /// Starts a session over an existing optimizer with default
    /// (unbounded) cost bounds — the warm-resume hook serving layers use
    /// when a parked optimizer comes out of a frontier cache.
    pub fn new(optimizer: IamaOptimizer) -> Self {
        let b = Bounds::unbounded(optimizer.model_dim());
        Self::with_bounds(optimizer, b)
    }

    /// Starts a session over an existing optimizer with explicit initial
    /// bounds.
    pub fn with_bounds(optimizer: IamaOptimizer, bounds: Bounds) -> Self {
        Self {
            optimizer,
            bounds,
            resolution: 0,
            preference: None,
            frontier: FrontierSnapshot::default(),
            epoch: 0,
            invocations: 0,
            finished: false,
        }
    }

    /// The current cost bounds.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// The resolution the next invocation will use.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// The currently visualized frontier (as of the last emitted event).
    pub fn frontier(&self) -> &FrontierSnapshot {
        &self.frontier
    }

    /// The installed auto-select preference, if any.
    pub fn preference(&self) -> Option<&Preference> {
        self.preference.as_ref()
    }

    /// Installs (or clears) the auto-select preference without running an
    /// invocation — the admission-time hook; mid-session use
    /// [`SessionCommand::SetPreference`].
    pub fn set_preference(&mut self, p: Option<Preference>) -> Result<(), ProtocolError> {
        if let Some(pref) = &p {
            pref.validate(self.optimizer.model_dim())?;
        }
        self.preference = p;
        Ok(())
    }

    /// Invocations run so far in this session.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// Epoch of the last emitted event.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Access to the underlying optimizer (stats, arena, frontier).
    pub fn optimizer(&self) -> &IamaOptimizer {
        &self.optimizer
    }

    /// Dissolves the session, handing back the optimizer with all its
    /// accumulated plan sets — the hook a serving layer uses to recycle a
    /// finished session's state into a warm-frontier cache.
    pub fn into_optimizer(self) -> IamaOptimizer {
        self.optimizer
    }

    /// True once the session ended (plan selected or cancelled).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// One iteration of the main control loop: apply the command to the
    /// optimization focus, run one incremental invocation at that focus,
    /// and emit the event (with the frontier delta since the previous
    /// event).
    ///
    /// [`SessionCommand::SelectPlan`] and [`SessionCommand::Cancel`] are
    /// terminal and run no invocation. If a [`Preference`] is installed
    /// and the invocation ran at the ladder's target resolution, the
    /// preference picks a plan from the bounded frontier and the event
    /// carries a [`SessionOutcome::Selected`] with `by_preference`.
    ///
    /// Errors are protocol errors — malformed dimensions or commands to a
    /// finished session — and leave the session state untouched.
    pub fn apply(&mut self, command: SessionCommand) -> Result<SessionEvent, ProtocolError> {
        if self.finished {
            return Err(ProtocolError::SessionFinished);
        }
        match command {
            SessionCommand::SelectPlan(plan) => {
                // The plan must exist in this session's arena — a made-up
                // id is client data, not a reason to hand back a plan
                // that `explain`/execution would index out of bounds on.
                if plan.0 as usize >= self.optimizer.arena().len() {
                    return Err(ProtocolError::UnknownPlan { plan });
                }
                return Ok(self.finish(SessionOutcome::Selected {
                    plan,
                    by_preference: false,
                }));
            }
            SessionCommand::Cancel => {
                return Ok(self.finish(SessionOutcome::Retired));
            }
            SessionCommand::SetBounds(b) => {
                if b.dim() != self.bounds.dim() {
                    return Err(ProtocolError::BoundsDimensionMismatch {
                        expected: self.bounds.dim(),
                        got: b.dim(),
                    });
                }
                // Optimization focus changes; the resolution resets to 0
                // (Algorithm 1 lines 19-21).
                self.bounds = b;
                self.resolution = 0;
            }
            SessionCommand::SetPreference(p) => {
                self.set_preference(p)?;
            }
            SessionCommand::Refine => {}
        }
        // Lines 13-15: generate more plans at the current focus,
        // visualize known plans.
        let report = self.optimizer.optimize(&self.bounds, self.resolution);
        let next = self.optimizer.frontier(&self.bounds, self.resolution);
        let at_target = self.resolution >= self.optimizer.schedule().r_max();
        self.resolution = (self.resolution + 1).min(self.optimizer.schedule().r_max());
        self.invocations += 1;
        let delta = FrontierDelta::between(&self.frontier, &next);
        self.frontier = next;
        self.epoch += 1;
        // The target resolution is reached: a stated preference selects a
        // plan automatically — the paper's contrast to the one-shot
        // scheme, available without a SelectPlan round-trip.
        let outcome = match (&self.preference, at_target) {
            (Some(pref), true) => {
                pref.select(&self.frontier, &self.bounds)?
                    .map(|point| SessionOutcome::Selected {
                        plan: point.plan,
                        by_preference: true,
                    })
            }
            _ => None,
        };
        if outcome.is_some() {
            self.finished = true;
        }
        Ok(SessionEvent {
            epoch: self.epoch,
            delta,
            resolution: self.resolution,
            bounds: self.bounds,
            invocations: self.invocations,
            first_report: (self.invocations == 1).then(|| report.clone()),
            report: Some(report),
            outcome,
            coalesced: 0,
        })
    }

    /// Emits the terminal event for `outcome` with an empty delta.
    fn finish(&mut self, outcome: SessionOutcome) -> SessionEvent {
        self.finished = true;
        self.epoch += 1;
        SessionEvent {
            epoch: self.epoch,
            delta: FrontierDelta::default(),
            resolution: self.resolution,
            bounds: self.bounds,
            invocations: self.invocations,
            report: None,
            first_report: None,
            outcome: Some(outcome),
            coalesced: 0,
        }
    }

    /// Convenience driver: applies [`SessionCommand::Refine`] `steps`
    /// times and returns the per-iteration reports (the paper's
    /// evaluation scenario, "without user interaction ... cost bounds
    /// fixed to ∞"). Stops early if a preference fires.
    pub fn run_uninterrupted(&mut self, steps: usize) -> Vec<InvocationReport> {
        let mut reports = Vec::with_capacity(steps);
        for _ in 0..steps {
            match self.apply(SessionCommand::Refine) {
                Ok(event) => {
                    let done = event.is_final();
                    if let Some(r) = event.report {
                        reports.push(r);
                    }
                    if done {
                        break;
                    }
                }
                Err(ProtocolError::SessionFinished) => break,
                Err(e) => unreachable!("Refine cannot be malformed: {e}"),
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SessionView;
    use moqo_cost::ResolutionSchedule;
    use moqo_costmodel::StandardCostModel;
    use moqo_query::testkit;
    use std::sync::Arc;

    fn open(n: usize, card: u64, levels: usize) -> Session {
        let request = SessionRequest::new(Arc::new(testkit::chain_query(n, card)));
        Session::open(
            request,
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(levels, 1.05, 0.5),
        )
        .unwrap()
    }

    #[test]
    fn uninterrupted_session_refines_resolution() {
        let mut session = open(3, 100_000, 3);
        let reports = session.run_uninterrupted(5);
        let resolutions: Vec<usize> = reports.iter().map(|r| r.resolution).collect();
        // 0, 1, 2, 3 then saturation at rM = 3.
        assert_eq!(resolutions, vec![0, 1, 2, 3, 3]);
    }

    #[test]
    fn bound_change_resets_resolution_and_runs_focused() {
        let mut session = open(2, 100_000, 3);
        session.apply(SessionCommand::Refine).unwrap();
        session.apply(SessionCommand::Refine).unwrap();
        assert_eq!(session.resolution(), 2);
        let b = Bounds::unbounded(3).with_limit(0, 1e12);
        let ev = session.apply(SessionCommand::SetBounds(b)).unwrap();
        // The event covers the invocation at the *new* focus, resolution
        // 0; the next invocation will use 1.
        assert_eq!(ev.report.unwrap().resolution, 0);
        assert_eq!(session.resolution(), 1);
        assert_eq!(session.bounds(), &b);
    }

    #[test]
    fn selecting_a_plan_finishes_the_session() {
        let mut session = open(2, 100_000, 2);
        session.apply(SessionCommand::Refine).unwrap();
        let chosen = session.frontier().points[0].plan;
        let fin = session.apply(SessionCommand::SelectPlan(chosen)).unwrap();
        assert_eq!(
            fin.outcome,
            Some(SessionOutcome::Selected {
                plan: chosen,
                by_preference: false
            })
        );
        assert!(session.is_finished());
        assert!(matches!(
            session.apply(SessionCommand::Refine),
            Err(ProtocolError::SessionFinished)
        ));
    }

    #[test]
    fn preference_auto_selects_at_the_target_resolution() {
        let spec = Arc::new(testkit::chain_query(3, 80_000));
        let request = SessionRequest::new(spec)
            .with_preference(Preference::WeightedSum(vec![1.0, 0.01, 0.01]));
        let mut session = Session::open(
            request,
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(2, 1.1, 0.4),
        )
        .unwrap();
        // Levels = 3 (r = 0, 1, 2): the third invocation runs at the
        // target resolution and the preference fires.
        let e1 = session.apply(SessionCommand::Refine).unwrap();
        assert!(e1.outcome.is_none());
        let e2 = session.apply(SessionCommand::Refine).unwrap();
        assert!(e2.outcome.is_none());
        let e3 = session.apply(SessionCommand::Refine).unwrap();
        match e3.outcome {
            Some(SessionOutcome::Selected {
                plan,
                by_preference,
            }) => {
                assert!(by_preference);
                // The preference picked the frontier's weighted-sum
                // minimum.
                let best = Preference::WeightedSum(vec![1.0, 0.01, 0.01])
                    .select(session.frontier(), session.bounds())
                    .unwrap()
                    .unwrap();
                assert_eq!(plan, best.plan);
            }
            other => panic!("expected auto-selection, got {other:?}"),
        }
        assert!(session.is_finished());
    }

    #[test]
    fn malformed_commands_error_without_corrupting_the_session() {
        let mut session = open(2, 50_000, 2);
        session.apply(SessionCommand::Refine).unwrap();
        let before = session.frontier().len();
        assert!(matches!(
            session.apply(SessionCommand::SetBounds(Bounds::unbounded(2))),
            Err(ProtocolError::BoundsDimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
        assert!(matches!(
            session.apply(SessionCommand::SetPreference(Some(Preference::Chebyshev(
                vec![1.0]
            )))),
            Err(ProtocolError::WeightDimensionMismatch {
                expected: 3,
                got: 1
            })
        ));
        // A made-up plan id is a typed error, not a bogus selection.
        let bogus = moqo_plan::PlanId(u32::MAX);
        assert!(matches!(
            session.apply(SessionCommand::SelectPlan(bogus)),
            Err(ProtocolError::UnknownPlan { plan }) if plan == bogus
        ));
        assert!(!session.is_finished());
        // The session keeps working.
        assert_eq!(session.frontier().len(), before);
        assert!(session.apply(SessionCommand::Refine).is_ok());
    }

    #[test]
    fn event_stream_reassembles_to_the_session_frontier() {
        let mut session = open(3, 60_000, 3);
        let mut view = SessionView::default();
        for _ in 0..4 {
            let ev = session.apply(SessionCommand::Refine).unwrap();
            view.fold(&ev).unwrap();
        }
        // Refocus mid-stream, then keep refining.
        let tight = Bounds::unbounded(3).with_limit(0, f64::MAX / 2.0);
        let ev = session.apply(SessionCommand::SetBounds(tight)).unwrap();
        view.fold(&ev).unwrap();
        for _ in 0..2 {
            let ev = session.apply(SessionCommand::Refine).unwrap();
            view.fold(&ev).unwrap();
        }
        assert!(view.frontier.bits_eq(session.frontier()));
        assert_eq!(view.invocations, session.invocations());
    }

    #[test]
    fn cancel_emits_a_retired_outcome() {
        let mut session = open(2, 30_000, 1);
        session.apply(SessionCommand::Refine).unwrap();
        let fin = session.apply(SessionCommand::Cancel).unwrap();
        assert_eq!(fin.outcome, Some(SessionOutcome::Retired));
        assert!(session.is_finished());
    }
}
