//! The single summary-statistics implementation for the bench crate.
//!
//! Every experiment used to carry its own copy of the sort-and-index
//! percentile helper; several of those copies indexed past the end of an
//! empty vector and all of them sorted with
//! `partial_cmp(..).unwrap()`, which panics on NaN. This module replaces
//! them: samples assert finiteness at collection time (where the broken
//! measurement is still attributable), sorting uses the total order on
//! `f64`, and summarizing an empty sample set returns `None` instead of
//! panicking.

/// A growing set of finite `f64` samples.
///
/// `push` rejects non-finite values immediately so a broken timer or a
/// divide-by-zero in metric extraction fails at the collection site,
/// not later inside a sort comparator three modules away.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sized empty sample set.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            values: Vec::with_capacity(n),
        }
    }

    /// Records one sample. Panics if `v` is NaN or infinite: a
    /// non-finite measurement is a bug in the experiment, and the
    /// collection site is where it can still be attributed.
    pub fn push(&mut self, v: f64) {
        assert!(
            v.is_finite(),
            "non-finite sample {v} collected; fix the measurement, \
             not the summary"
        );
        self.values.push(v);
    }

    /// Number of samples collected so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read-only view of the raw samples (unsorted, insertion order).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        for v in iter {
            s.push(v);
        }
        s
    }
}

/// Mean / p50 / p99 / max over a sample set, plus the count.
///
/// Percentiles use the nearest-rank method on a `f64::total_cmp`-sorted
/// copy, so `p50` of an even-length set is the upper median (matching
/// the `xs[len / 2]` convention the old per-experiment helpers used for
/// non-empty sets).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples summarized.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (upper median for even-length sets).
    pub p50: f64,
    /// 99th percentile (nearest rank).
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes `samples`, or `None` when there are none — the
    /// guarded replacement for the old `us[us.len() / 2]` pattern.
    pub fn of(samples: &Samples) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.values.clone();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        Some(Summary {
            count,
            mean: sum / count as f64,
            p50: sorted[count / 2],
            p99: sorted[nearest_rank(count, 0.99)],
            max: sorted[count - 1],
        })
    }

    /// Like [`Summary::of`], but an empty sample set yields an all-zero
    /// summary with `count == 0` instead of `None`. Experiments that
    /// report a table row per phase use this so an empty phase renders
    /// as zeros rather than aborting the whole run.
    pub fn of_or_zero(samples: &Samples) -> Summary {
        Summary::of(samples).unwrap_or(Summary {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p99: 0.0,
            max: 0.0,
        })
    }
}

/// Index of the nearest-rank percentile `q` in a sorted set of `count`
/// samples (`count > 0`, `0.0 < q <= 1.0`).
fn nearest_rank(count: usize, q: f64) -> usize {
    let rank = (q * count as f64).ceil() as usize;
    rank.clamp(1, count) - 1
}

/// Mean of a finite slice, or `None` when it is empty. Asserts
/// finiteness of every element (same contract as [`Samples::push`]).
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let sum: f64 = xs
        .iter()
        .inspect(|v| assert!(v.is_finite(), "non-finite sample {v} in mean"))
        .sum();
    Some(sum / xs.len() as f64)
}

/// Maximum of a slice under the total order, or `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().max_by(f64::total_cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_summarize_to_none_not_a_panic() {
        let s = Samples::new();
        assert!(Summary::of(&s).is_none());
        let z = Summary::of_or_zero(&s);
        assert_eq!(z.count, 0);
        assert_eq!(z.p50, 0.0);
        assert_eq!(z.max, 0.0);
        assert_eq!(mean(&[]), None);
        assert_eq!(max(&[]), None);
    }

    #[test]
    fn single_sample_is_its_own_summary() {
        let s: Samples = [7.5].into_iter().collect();
        let sum = Summary::of(&s).unwrap();
        assert_eq!(sum.count, 1);
        assert_eq!(sum.mean, 7.5);
        assert_eq!(sum.p50, 7.5);
        assert_eq!(sum.p99, 7.5);
        assert_eq!(sum.max, 7.5);
    }

    #[test]
    fn even_length_takes_the_upper_median() {
        // The old per-experiment helpers used xs[len / 2]; keep that
        // convention so regenerated BENCH files stay comparable.
        let s: Samples = [4.0, 1.0, 3.0, 2.0].into_iter().collect();
        let sum = Summary::of(&s).unwrap();
        assert_eq!(sum.p50, 3.0);
        assert_eq!(sum.mean, 2.5);
        assert_eq!(sum.max, 4.0);
    }

    #[test]
    fn p99_is_nearest_rank() {
        let s: Samples = (1..=100).map(f64::from).collect();
        let sum = Summary::of(&s).unwrap();
        assert_eq!(sum.p99, 99.0);
        assert_eq!(sum.max, 100.0);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn nan_is_rejected_at_collection_time() {
        let mut s = Samples::new();
        s.push(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-finite sample")]
    fn infinity_is_rejected_at_collection_time() {
        let mut s = Samples::new();
        s.push(f64::INFINITY);
    }
}
