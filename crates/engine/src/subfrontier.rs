//! The sub-frontier cache: warm state below whole-query granularity.
//!
//! The [`crate::FrontierCache`] only pays off on an *exact*
//! [`crate::QueryFingerprint`] hit, but production traffic is rarely
//! byte-identical — queries share join subgraphs. The paper's incremental
//! state is naturally per table subset (`Res^q`/`Cand^q`), so when a
//! session parks, the engine harvests each connected subset's state as a
//! position-independent blob (`IamaOptimizer::export_subset`) keyed by
//! [`crate::SubsetFingerprint`]. A later session over a *different* query
//! probes its own subsets here and seeds every hit: the transplanted
//! plans re-enter as level-0 candidates, re-costed at the door, so the
//! `alpha_T` guarantee is untouched while the seeded subsets skip plan
//! generation entirely.
//!
//! Blobs are immutable and shared by `Arc` — unlike parked optimizers
//! they can seed any number of concurrent sessions — and evicted LRU by
//! the same monotone-tick scheme as the frontier cache.

use crate::fingerprint::SubsetFingerprint;
use moqo_index::FxHashMap;
use std::sync::{Arc, Mutex};

/// Counters describing sub-frontier cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubFrontierCacheStats {
    /// Probes that found a transplantable blob.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Blobs harvested from parking sessions (re-harvests of an existing
    /// fingerprint count too; they refresh recency).
    pub insertions: u64,
    /// Blobs evicted because the cache was full.
    pub evictions: u64,
    /// Blobs currently cached.
    pub entries: usize,
}

/// A cached blob plus the tick of its last touch (insert or hit).
struct Slot {
    blob: Arc<Vec<u8>>,
    tick: u64,
}

#[derive(Default)]
struct Inner {
    map: FxHashMap<SubsetFingerprint, Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

/// Concurrent LRU cache of exported sub-frontier blobs keyed by
/// [`SubsetFingerprint`]. One instance is shared by every shard of a
/// `moqo-serve` deployment: sub-frontiers are position and query
/// independent, so cross-shard sharing is free and safe.
pub struct SubFrontierCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SubFrontierCache {
    /// Creates a cache holding at most `capacity` blobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Returns the blob for `fp`, if cached. A hit refreshes recency and
    /// shares the blob (the caller re-validates and re-costs on import).
    pub fn get(&self, fp: SubsetFingerprint) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().expect("sub-frontier cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&fp) {
            Some(slot) => {
                slot.tick = tick;
                let blob = Arc::clone(&slot.blob);
                inner.hits += 1;
                Some(blob)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Caches a harvested blob under `fp`, evicting the coldest entry if
    /// full. A re-harvest of the same fingerprint replaces the old blob
    /// and refreshes its recency.
    pub fn insert(&self, fp: SubsetFingerprint, blob: Vec<u8>) {
        let mut inner = self.inner.lock().expect("sub-frontier cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.insertions += 1;
        let blob = Arc::new(blob);
        if inner.map.insert(fp, Slot { blob, tick }).is_none() && inner.map.len() > self.capacity {
            if let Some(cold) = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.tick)
                .map(|(fp, _)| *fp)
            {
                inner.map.remove(&cold);
                inner.evictions += 1;
            }
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> SubFrontierCacheStats {
        let inner = self.inner.lock().expect("sub-frontier cache poisoned");
        SubFrontierCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

impl Default for SubFrontierCache {
    /// A cache with the default [`crate::EngineConfig`] capacity.
    fn default() -> Self {
        Self::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_costmodel::StandardCostModel;
    use moqo_query::testkit;

    fn fp(n: usize, card: u64) -> SubsetFingerprint {
        let spec = testkit::chain_query(n, card);
        let model = StandardCostModel::paper_metrics();
        SubsetFingerprint::of(&spec, spec.all_tables(), &model)
    }

    #[test]
    fn hits_share_the_blob_and_count() {
        let cache = SubFrontierCache::new(4);
        let k = fp(3, 10_000);
        assert!(cache.get(k).is_none());
        cache.insert(k, vec![1, 2, 3]);
        let a = cache.get(k).expect("blob cached");
        let b = cache.get(k).expect("blob shared");
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (2, 1, 1, 1));
    }

    #[test]
    fn eviction_drops_the_coldest_blob() {
        let cache = SubFrontierCache::new(2);
        let (a, b, c) = (fp(2, 10_000), fp(3, 10_000), fp(4, 10_000));
        cache.insert(a, vec![0]);
        cache.insert(b, vec![1]);
        assert!(cache.get(a).is_some()); // refresh a; b is now coldest
        cache.insert(c, vec![2]);
        let s = cache.stats();
        assert_eq!((s.evictions, s.entries), (1, 2));
        assert!(cache.get(b).is_none());
        assert!(cache.get(a).is_some());
        assert!(cache.get(c).is_some());
    }
}
