//! Minimal JSON emitter and parser for the machine-readable
//! `BENCH_*.json` outputs.
//!
//! The `repro` experiments print human tables *and* drop a small JSON
//! file per experiment so scripts can track medians and counters across
//! runs without scraping stdout. The workspace is offline (no serde);
//! the subset of JSON needed here — objects, arrays, strings, numbers,
//! booleans — is small enough to emit and parse by hand. Schemas are
//! documented in `docs/benchmarks.md`, and `repro diff` uses the parser
//! side to compare two envelopes.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A JSON value tree, built by the experiments and rendered with
/// [`Json::render`], or recovered from text with [`Json::parse`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned counter (serialized without a fraction).
    Int(u64),
    /// A float. Non-finite values render as `null` (JSON has no
    /// `Infinity`/`NaN`); finite values use Rust's shortest round-trip
    /// formatting, so readers recover the exact `f64`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(&str, Json)` pairs — the common literal
    /// shape at experiment call sites.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up `key` in an object; `None` for other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Num` both read as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the tree as pretty-printed JSON (2-space indent, trailing
    /// newline) for stable, diff-friendly files.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders into `path`, overwriting any previous run's file.
    pub fn write_file(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Parses JSON text produced by [`Json::render`] (or any standard
    /// JSON emitter). Numbers without a fraction or exponent that fit
    /// `u64` come back as [`Json::Int`]; everything else numeric is
    /// [`Json::Num`]. Errors carry a byte offset for context.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    escape_into(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // Everything JSON cannot carry raw, plus the cases that are
            // *legal* JSON but break downstream consumers: DEL and the
            // C1 block are invisible in most editors, and U+2028/U+2029
            // are line terminators in JavaScript source, so a BENCH
            // file inlined into a JS context would split a string
            // literal mid-token.
            c if (c as u32) < 0x20
                || (0x7f..=0x9f).contains(&(c as u32))
                || c == '\u{2028}'
                || c == '\u{2029}' =>
            {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(format!("bad low surrogate at byte {start}"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| format!("bad \\u escape at byte {start}"))?);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| format!("bad utf-8 at byte {}", self.pos))?;
                    let c = text.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(chunk, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_whole_grammar() {
        let j = Json::obj(vec![
            ("name", Json::Str("a \"quoted\"\nline".into())),
            ("count", Json::Int(42)),
            ("ratio", Json::Num(2.5)),
            ("unbounded", Json::Num(f64::INFINITY)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let s = j.render();
        assert!(s.contains("\"a \\\"quoted\\\"\\nline\""));
        assert!(s.contains("\"count\": 42"));
        assert!(s.contains("\"ratio\": 2.5"));
        assert!(s.contains("\"unbounded\": null"));
        assert!(s.contains("\"items\": [\n"));
        assert!(s.contains("\"empty_arr\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_every_control_case_uniformly() {
        // U+2028/U+2029 are valid JSON but illegal raw in JavaScript
        // string literals; DEL and the C1 block are invisible traps.
        let s = Json::Str("a\u{2028}b\u{2029}c\u{7f}d\u{85}e\u{1}f".into()).render();
        assert!(s.contains("\\u2028"));
        assert!(s.contains("\\u2029"));
        assert!(s.contains("\\u007f"));
        assert!(s.contains("\\u0085"));
        assert!(s.contains("\\u0001"));
        for c in s.trim().chars() {
            assert!(
                (c as u32) >= 0x20 && (c as u32) < 0x7f,
                "raw non-ASCII or control char {:?} leaked into output",
                c
            );
        }
    }

    #[test]
    fn floats_round_trip_through_the_shortest_repr() {
        let v = 0.1 + 0.2;
        let s = Json::Num(v).render();
        assert_eq!(s.trim().parse::<f64>().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn parse_round_trips_the_render_output() {
        let j = Json::obj(vec![
            ("name", Json::Str("line\u{2028}break \"q\" \\ \n".into())),
            ("count", Json::Int(42)),
            ("ratio", Json::Num(2.5)),
            ("neg", Json::Num(-0.125)),
            ("big", Json::Num(1.5e300)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("items", Json::Arr(vec![Json::Int(1), Json::Num(0.5)])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let parsed = Json::parse(&j.render()).unwrap();
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_handles_surrogate_pairs_and_rejects_garbage() {
        let j = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(j, Json::Str("😀".into()));
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("01x").is_err());
        assert!(Json::parse("\"\\ud83d\"").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn parse_distinguishes_counters_from_floats() {
        let j = Json::parse("[7, 7.0, -7, 1e2]").unwrap();
        assert_eq!(
            j,
            Json::Arr(vec![
                Json::Int(7),
                Json::Num(7.0),
                Json::Num(-7.0),
                Json::Num(100.0),
            ])
        );
    }
}
