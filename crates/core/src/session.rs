//! The interactive main control loop — Algorithm 1 of the paper.

use crate::frontier::FrontierSnapshot;
use crate::optimizer::IamaOptimizer;
use crate::report::InvocationReport;
use moqo_cost::Bounds;
use moqo_plan::PlanId;

/// User input arriving between optimizer invocations (Algorithm 1 lines
/// 17-25).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UserEvent {
    /// No input: the resolution is refined by one level.
    None,
    /// The user dragged the cost bounds: optimization focus changes and
    /// the resolution resets to 0.
    SetBounds(Bounds),
    /// The user clicked a visualized tradeoff: optimization ends and the
    /// chosen plan is returned for execution.
    SelectPlan(PlanId),
}

/// What one iteration of the main loop produced.
#[derive(Clone, Debug)]
pub enum StepOutcome {
    /// Optimization continues; the report and the visualized frontier for
    /// this iteration.
    Continue {
        /// The optimizer invocation's report.
        report: InvocationReport,
        /// The cost tradeoffs shown to the user.
        frontier: FrontierSnapshot,
    },
    /// The user selected a plan; the session is finished.
    Selected(PlanId),
}

/// The interactive MOQO session: owns the optimizer state, the current
/// bounds, and the current resolution, and advances them per user event.
///
/// Usage mirrors Figure 1: call [`Session::step`] with [`UserEvent::None`]
/// to let the approximation refine, with [`UserEvent::SetBounds`] when the
/// user drags a bound, and with [`UserEvent::SelectPlan`] to finish.
///
/// ```
/// use moqo_core::{IamaOptimizer, Session, StepOutcome, UserEvent};
/// use moqo_cost::ResolutionSchedule;
/// use moqo_costmodel::StandardCostModel;
/// use moqo_query::testkit;
/// use std::sync::Arc;
///
/// let spec = Arc::new(testkit::chain_query(2, 20_000));
/// let model = Arc::new(StandardCostModel::paper_metrics());
/// let opt = IamaOptimizer::new(spec, model, ResolutionSchedule::linear(2, 1.1, 0.4));
/// let mut session = Session::new(opt);
/// let frontier = match session.step(UserEvent::None) {
///     StepOutcome::Continue { frontier, .. } => frontier,
///     _ => unreachable!(),
/// };
/// // The user clicks the fastest visualized tradeoff.
/// let choice = frontier.min_by_metric(0).unwrap().plan;
/// match session.step(UserEvent::SelectPlan(choice)) {
///     StepOutcome::Selected(plan) => assert_eq!(plan, choice),
///     _ => unreachable!(),
/// }
/// ```
pub struct Session {
    optimizer: IamaOptimizer,
    bounds: Bounds,
    resolution: usize,
    finished: bool,
}

impl Session {
    /// Starts a session with default (unbounded) cost bounds.
    pub fn new(optimizer: IamaOptimizer) -> Self {
        let b = Bounds::unbounded(optimizer.model_dim());
        Self::with_bounds(optimizer, b)
    }

    /// Starts a session with explicit initial bounds.
    pub fn with_bounds(optimizer: IamaOptimizer, bounds: Bounds) -> Self {
        Self {
            optimizer,
            bounds,
            resolution: 0,
            finished: false,
        }
    }

    /// The current cost bounds.
    pub fn bounds(&self) -> &Bounds {
        &self.bounds
    }

    /// The resolution the next step will use.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Access to the underlying optimizer (stats, arena, frontier).
    pub fn optimizer(&self) -> &IamaOptimizer {
        &self.optimizer
    }

    /// Dissolves the session, handing back the optimizer with all its
    /// accumulated plan sets — the hook a serving layer uses to recycle a
    /// finished session's state into a warm-frontier cache.
    pub fn into_optimizer(self) -> IamaOptimizer {
        self.optimizer
    }

    /// True once a plan was selected.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// One iteration of the main control loop: optimize at the current
    /// focus, visualize, then apply the user event to pick the next focus.
    ///
    /// # Panics
    /// Panics if called after a plan was selected.
    pub fn step(&mut self, event: UserEvent) -> StepOutcome {
        assert!(!self.finished, "session already finished");
        // Lines 13-16: generate more plans, visualize known plans.
        let report = self.optimizer.optimize(&self.bounds, self.resolution);
        let frontier = self.optimizer.frontier(&self.bounds, self.resolution);
        // Lines 17-25: update bounds or refine resolution.
        match event {
            UserEvent::None => {
                self.resolution = (self.resolution + 1).min(self.optimizer.schedule().r_max());
            }
            UserEvent::SetBounds(b) => {
                assert_eq!(b.dim(), self.bounds.dim(), "bounds dimension changed");
                self.bounds = b;
                self.resolution = 0;
            }
            UserEvent::SelectPlan(p) => {
                self.finished = true;
                return StepOutcome::Selected(p);
            }
        }
        StepOutcome::Continue { report, frontier }
    }

    /// Convenience driver: runs `steps` iterations without user input and
    /// returns the per-iteration reports (the paper's evaluation scenario,
    /// "without user interaction ... cost bounds fixed to ∞").
    pub fn run_uninterrupted(&mut self, steps: usize) -> Vec<InvocationReport> {
        let mut reports = Vec::with_capacity(steps);
        for _ in 0..steps {
            match self.step(UserEvent::None) {
                StepOutcome::Continue { report, .. } => reports.push(report),
                StepOutcome::Selected(_) => unreachable!("no selection event was sent"),
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_cost::ResolutionSchedule;
    use moqo_costmodel::StandardCostModel;
    use moqo_query::testkit;
    use std::sync::Arc;

    #[test]
    fn uninterrupted_session_refines_resolution() {
        let spec = Arc::new(testkit::chain_query(3, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let opt = IamaOptimizer::new(
            spec.clone(),
            model.clone(),
            ResolutionSchedule::linear(3, 1.05, 0.5),
        );
        let mut session = Session::new(opt);
        let reports = session.run_uninterrupted(5);
        let resolutions: Vec<usize> = reports.iter().map(|r| r.resolution).collect();
        // 0, 1, 2, 3 then saturation at rM = 3.
        assert_eq!(resolutions, vec![0, 1, 2, 3, 3]);
    }

    #[test]
    fn bound_change_resets_resolution() {
        let spec = Arc::new(testkit::chain_query(2, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let opt = IamaOptimizer::new(
            spec.clone(),
            model.clone(),
            ResolutionSchedule::linear(3, 1.05, 0.5),
        );
        let mut session = Session::new(opt);
        session.step(UserEvent::None);
        session.step(UserEvent::None);
        assert_eq!(session.resolution(), 2);
        let b = Bounds::unbounded(3).with_limit(0, 1e12);
        session.step(UserEvent::SetBounds(b));
        assert_eq!(session.resolution(), 0);
        assert_eq!(session.bounds(), &b);
    }

    #[test]
    fn selecting_a_plan_finishes_the_session() {
        let spec = Arc::new(testkit::chain_query(2, 100_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let opt = IamaOptimizer::new(
            spec.clone(),
            model.clone(),
            ResolutionSchedule::linear(2, 1.05, 0.5),
        );
        let mut session = Session::new(opt);
        let frontier = match session.step(UserEvent::None) {
            StepOutcome::Continue { frontier, .. } => frontier,
            _ => panic!("unexpected selection"),
        };
        let chosen = frontier.points[0].plan;
        match session.step(UserEvent::SelectPlan(chosen)) {
            StepOutcome::Selected(p) => assert_eq!(p, chosen),
            _ => panic!("expected selection"),
        }
        assert!(session.is_finished());
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn stepping_after_selection_panics() {
        let spec = Arc::new(testkit::chain_query(2, 1000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let opt = IamaOptimizer::new(
            spec.clone(),
            model.clone(),
            ResolutionSchedule::linear(1, 1.05, 0.5),
        );
        let mut session = Session::new(opt);
        let frontier = match session.step(UserEvent::None) {
            StepOutcome::Continue { frontier, .. } => frontier,
            _ => panic!(),
        };
        session.step(UserEvent::SelectPlan(frontier.points[0].plan));
        session.step(UserEvent::None);
    }
}
