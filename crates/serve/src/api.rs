//! The non-blocking client surface.
//!
//! [`MoqoServer`] composes the sharded engine with admission control
//! behind a ticket API: [`MoqoServer::submit`] never blocks on optimizer
//! progress — it returns a [`Ticket`] after the admission decision, and
//! everything that happens afterwards (per-slice frontier refinements,
//! completion) arrives over the ticket's **own** channel. Callers either
//! [`MoqoServer::poll`] (non-blocking drain of buffered updates) or
//! [`MoqoServer::recv`] (block on the ticket channel with a timeout); no
//! caller ever parks on the engine's internal condvar, so a slow or
//! abandoned client cannot interfere with scheduling.
//!
//! Queued submissions (under [`AdmissionPolicy::Queue`]) admit lazily:
//! every API interaction pumps the pending queue against freed capacity,
//! so a server with *any* traffic drains its queue without a background
//! thread; an idle server drains it on the next call.
//!
//! [`AdmissionPolicy::Queue`]: crate::AdmissionPolicy::Queue

use crate::admission::{Admission, AdmissionConfig, AdmissionController, RejectReason};
use crate::shard::{GlobalSessionId, RouteDecision, ShardConfig, ShardedEngine};
use moqo_core::UserEvent;
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::SharedCostModel;
use moqo_engine::{SessionConfig, SessionStatus};
use moqo_plan::PlanId;
use moqo_query::QuerySpec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Serving-front configuration: sharding plus admission.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Shard count, per-shard engine tunables, rebalance headroom.
    pub shard: ShardConfig,
    /// Admission bound and overload policy.
    pub admission: AdmissionConfig,
    /// Closed (finished or rejected) tickets kept queryable; the oldest
    /// beyond this many are dropped so a long-lived server's ticket
    /// table tracks live load, not total traffic (mirrors
    /// [`moqo_engine::EngineConfig::retired_capacity`]).
    pub retired_tickets: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shard: ShardConfig::default(),
            admission: AdmissionConfig::default(),
            retired_tickets: 1024,
        }
    }
}

/// Handle to one submission. Cheap and copyable; rejected and finished
/// tickets stay queryable until [`ServeConfig::retired_tickets`] younger
/// tickets have closed after them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

/// Everything a caller can learn about a ticket without blocking.
#[derive(Clone, Debug)]
pub enum TicketStatus {
    /// Waiting in the bounded admission queue.
    Queued {
        /// Submissions currently queued (including this one).
        pending: usize,
    },
    /// Turned away by admission control.
    Rejected(RejectReason),
    /// Admitted; the latest session snapshot (which carries `finished`
    /// and the selected plan once the session ends).
    Active {
        /// Where the session runs.
        session: GlobalSessionId,
        /// How the router placed it.
        route: RouteDecision,
        /// True if admitted under a degraded resolution ladder.
        degraded: bool,
        /// Most recent status (updated by `poll`/`recv`).
        status: Box<SessionStatus>,
    },
}

struct ActiveCell {
    gid: GlobalSessionId,
    route: RouteDecision,
    degraded: bool,
    /// Taken out (under no lock) while a caller blocks in `recv`.
    rx: Option<mpsc::Receiver<SessionStatus>>,
    latest: SessionStatus,
    /// True once the finished status was observed and the ticket entered
    /// the bounded closed-history (set at most once).
    closed: bool,
}

enum Cell {
    Queued,
    Rejected(RejectReason),
    Active(Box<ActiveCell>),
}

struct PendingSubmit {
    ticket: u64,
    spec: Arc<QuerySpec>,
    config: SessionConfig,
}

/// Aggregate server statistics.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Admission counters.
    pub admission: crate::admission::AdmissionStats,
    /// Submissions waiting in the admission queue.
    pub pending: usize,
    /// Live sessions across all shards.
    pub live: usize,
    /// Per-shard load, cache, and routing statistics.
    pub shards: Vec<crate::shard::ShardStats>,
}

/// Ticket table plus the bounded history of closed (finished/rejected)
/// tickets, oldest first; trimmed to [`ServeConfig::retired_tickets`] so
/// a long-running server's memory tracks live load, not total traffic.
struct TicketTable {
    cells: HashMap<u64, Cell>,
    closed: std::collections::VecDeque<u64>,
}

impl TicketTable {
    /// Records `id` as closed and drops the oldest closed tickets beyond
    /// the cap. Must be called at most once per ticket.
    fn close(&mut self, id: u64, cap: usize) {
        self.closed.push_back(id);
        while self.closed.len() > cap.max(1) {
            if let Some(old) = self.closed.pop_front() {
                self.cells.remove(&old);
            }
        }
    }
}

/// Sharded, admission-controlled serving front; see the module docs for
/// the interaction model.
pub struct MoqoServer {
    engine: ShardedEngine,
    admission: AdmissionController<PendingSubmit>,
    tickets: Mutex<TicketTable>,
    /// Serializes admission *decisions* (load read + policy + slot
    /// reservation), making `max_live`/`hard_cap` exact bounds instead
    /// of racy targets. The engine submission itself runs outside the
    /// gate — `reserved` covers the gap — so one expensive submission
    /// (e.g. a cold wide-shape plan build) never stalls other
    /// admissions. Never acquired while holding `tickets`.
    gate: Mutex<()>,
    /// Admissions decided under the gate whose engine submission has not
    /// completed yet; added to the engine's live count for decisions.
    reserved: AtomicU64,
    retired_tickets: usize,
    next: AtomicU64,
}

impl MoqoServer {
    /// Starts the shard pool.
    pub fn new(model: SharedCostModel, schedule: ResolutionSchedule, config: ServeConfig) -> Self {
        Self {
            engine: ShardedEngine::new(model, schedule, config.shard),
            admission: AdmissionController::new(config.admission),
            tickets: Mutex::new(TicketTable {
                cells: HashMap::new(),
                closed: std::collections::VecDeque::new(),
            }),
            gate: Mutex::new(()),
            reserved: AtomicU64::new(0),
            retired_tickets: config.retired_tickets,
            next: AtomicU64::new(1),
        }
    }

    /// Live sessions plus decided-but-not-yet-submitted admissions — the
    /// load figure admission decisions are made against.
    fn admission_load(&self) -> usize {
        self.engine.live_sessions() + self.reserved.load(Ordering::Relaxed) as usize
    }

    /// The sharded engine behind the front (persistence, diagnostics).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Submits a query for interactive optimization. Returns immediately
    /// with a ticket; the admission outcome is visible via
    /// [`MoqoServer::poll`].
    pub fn submit(&self, spec: Arc<QuerySpec>) -> Ticket {
        self.submit_with_config(spec, SessionConfig::default())
    }

    /// Submits with per-session overrides. A degrade admission replaces
    /// the configuration's schedule with the policy's degraded ladder.
    pub fn submit_with_config(&self, spec: Arc<QuerySpec>, config: SessionConfig) -> Ticket {
        self.pump();
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        // Register the ticket BEFORE the admission decision: once
        // `request` parks the payload, a concurrent `pump` may pop and
        // activate it immediately — it must find the cell present so its
        // `Cell::Active` is never overwritten by a late `Cell::Queued`.
        self.with_tickets(|t| {
            t.cells.insert(id, Cell::Queued);
        });
        // The gate makes (load read, policy decision, slot reservation)
        // atomic across submitters: `max_live` and `hard_cap` are exact.
        // The engine submission happens after the gate drops, with the
        // reservation standing in for the not-yet-counted session.
        let gate = self.gate.lock().expect("admission gate poisoned");
        let decision = self.admission.request(
            self.admission_load(),
            PendingSubmit {
                ticket: id,
                spec: spec.clone(),
                config: config.clone(),
            },
        );
        match decision {
            Admission::Admit => {
                self.reserved.fetch_add(1, Ordering::Relaxed);
                drop(gate);
                let cell = Cell::Active(Box::new(self.activate(spec, config, false)));
                self.reserved.fetch_sub(1, Ordering::Relaxed);
                self.with_tickets(|t| {
                    t.cells.insert(id, cell);
                });
            }
            Admission::AdmitDegraded(ladder) => {
                self.reserved.fetch_add(1, Ordering::Relaxed);
                drop(gate);
                let degraded = SessionConfig {
                    schedule: Some(ladder),
                    ..config
                };
                let cell = Cell::Active(Box::new(self.activate(spec, degraded, true)));
                self.reserved.fetch_sub(1, Ordering::Relaxed);
                self.with_tickets(|t| {
                    t.cells.insert(id, cell);
                });
            }
            // The placeholder stands; a pump (possibly already racing on
            // another thread) will replace it with the active cell.
            Admission::Queued { .. } => drop(gate),
            Admission::Rejected(reason) => {
                drop(gate);
                self.with_tickets(|t| {
                    t.cells.insert(id, Cell::Rejected(reason));
                    t.close(id, self.retired_tickets);
                });
            }
        }
        Ticket(id)
    }

    /// Submits to the engine and wires up the per-ticket channel.
    fn activate(&self, spec: Arc<QuerySpec>, config: SessionConfig, degraded: bool) -> ActiveCell {
        let (gid, route) = self.engine.submit_with_config(spec, config);
        let rx = self.engine.watch(gid).expect("freshly submitted session");
        // The watch channel self-primes with the current status.
        let latest = rx.recv().expect("primed status");
        ActiveCell {
            gid,
            route,
            degraded,
            rx: Some(rx),
            latest,
            closed: false,
        }
    }

    /// Admits queued submissions into freed capacity (called from every
    /// public entry point). The gate keeps the (load read, release)
    /// decision atomic with concurrent admissions; the engine submission
    /// runs outside it under a reservation.
    fn pump(&self) {
        loop {
            let gate = self.gate.lock().expect("admission gate poisoned");
            let Some(p) = self.admission.release(self.admission_load()) else {
                return;
            };
            self.reserved.fetch_add(1, Ordering::Relaxed);
            drop(gate);
            let cell = Cell::Active(Box::new(self.activate(p.spec, p.config, false)));
            self.reserved.fetch_sub(1, Ordering::Relaxed);
            self.with_tickets(|t| {
                t.cells.insert(p.ticket, cell);
            });
        }
    }

    fn with_tickets<R>(&self, f: impl FnOnce(&mut TicketTable) -> R) -> R {
        f(&mut self.tickets.lock().expect("ticket table poisoned"))
    }

    /// Marks a finished active cell closed (dropping its channel) and
    /// files the ticket into the bounded closed-history. Call with the
    /// table lock held.
    fn close_if_finished(t: &mut TicketTable, id: u64, cap: usize) {
        if let Some(Cell::Active(active)) = t.cells.get_mut(&id) {
            if active.latest.finished && !active.closed {
                active.closed = true;
                active.rx = None;
                t.close(id, cap);
            }
        }
    }

    /// Non-blocking status: drains any buffered updates from the ticket
    /// channel and returns the latest view. `None` for unknown tickets
    /// (including closed tickets evicted from the bounded history).
    pub fn poll(&self, ticket: Ticket) -> Option<TicketStatus> {
        self.pump();
        let cap = self.retired_tickets;
        self.with_tickets(|t| {
            let cell = t.cells.get_mut(&ticket.0)?;
            let status = match cell {
                Cell::Queued => TicketStatus::Queued {
                    pending: self.admission.pending(),
                },
                Cell::Rejected(reason) => TicketStatus::Rejected(*reason),
                Cell::Active(active) => {
                    if let Some(rx) = &active.rx {
                        while let Ok(status) = rx.try_recv() {
                            // A finished status is terminal: never let an
                            // older buffered slice update regress it.
                            if !active.latest.finished {
                                active.latest = status;
                            }
                        }
                    }
                    TicketStatus::Active {
                        session: active.gid,
                        route: active.route,
                        degraded: active.degraded,
                        status: Box::new(active.latest.clone()),
                    }
                }
            };
            Self::close_if_finished(t, ticket.0, cap);
            Some(status)
        })
    }

    /// Blocks on the ticket's channel for the next status update (at most
    /// `timeout`), never on engine internals. Returns `None` for unknown,
    /// queued, or rejected tickets, on timeout, and once the channel is
    /// closed after the session finished (the final status remains
    /// available via [`MoqoServer::poll`]). Only one caller may block per
    /// ticket at a time; concurrent `recv`s on one ticket return `None`.
    pub fn recv(&self, ticket: Ticket, timeout: Duration) -> Option<SessionStatus> {
        self.pump();
        // Take the receiver out so the table lock is NOT held while
        // blocking; poll() keeps working (it sees `rx: None` and serves
        // the latest snapshot).
        let rx = self.with_tickets(|t| match t.cells.get_mut(&ticket.0) {
            Some(Cell::Active(active)) => active.rx.take(),
            _ => None,
        })?;
        let received = rx.recv_timeout(timeout).ok();
        let cap = self.retired_tickets;
        self.with_tickets(|t| {
            if let Some(Cell::Active(active)) = t.cells.get_mut(&ticket.0) {
                if let Some(status) = &received {
                    // A concurrent finish() may have recorded the final
                    // status while this recv was blocked on an older
                    // buffered update; finished is terminal — never
                    // regress it.
                    if !active.latest.finished {
                        active.latest = status.clone();
                    }
                }
                active.rx = Some(rx);
            }
            Self::close_if_finished(t, ticket.0, cap);
        });
        received
    }

    /// Drags a session's cost bounds (Algorithm 1's `SetBounds` event).
    pub fn set_bounds(&self, ticket: Ticket, bounds: Bounds) -> bool {
        self.with_session(ticket, |gid, engine| {
            engine.send_event(gid, UserEvent::SetBounds(bounds))
        })
    }

    /// Selects a visualized plan, ending the session (its optimizer parks
    /// in the owning shard's frontier cache).
    pub fn select_plan(&self, ticket: Ticket, plan: PlanId) -> bool {
        self.with_session(ticket, |gid, engine| {
            engine.send_event(gid, UserEvent::SelectPlan(plan))
        })
    }

    /// Retires a session without a selection, parking its warm frontier
    /// for future equivalent queries, and frees its admission slot.
    /// Returns the final status; `None` for tickets that never activated.
    pub fn finish(&self, ticket: Ticket) -> Option<SessionStatus> {
        let gid = self.with_tickets(|t| match t.cells.get(&ticket.0) {
            Some(Cell::Active(active)) => Some(active.gid),
            _ => None,
        })?;
        let status = self.engine.finish(gid);
        if let Some(status) = &status {
            let cap = self.retired_tickets;
            self.with_tickets(|t| {
                if let Some(Cell::Active(active)) = t.cells.get_mut(&ticket.0) {
                    active.latest = status.clone();
                }
                Self::close_if_finished(t, ticket.0, cap);
            });
        }
        // The freed slot may admit a queued submission right away.
        self.pump();
        status
    }

    /// Blocks until all shards drain (testing/batch use; interactive
    /// callers should `recv` their own ticket instead).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.pump();
        self.engine.wait_idle(timeout)
    }

    /// Aggregate admission + shard statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admission: self.admission.stats(),
            pending: self.admission.pending(),
            live: self.engine.live_sessions(),
            shards: self.engine.shard_stats(),
        }
    }

    fn with_session(
        &self,
        ticket: Ticket,
        f: impl FnOnce(GlobalSessionId, &ShardedEngine) -> bool,
    ) -> bool {
        let Some(gid) = self.with_tickets(|t| match t.cells.get(&ticket.0) {
            Some(Cell::Active(active)) => Some(active.gid),
            _ => None,
        }) else {
            return false;
        };
        f(gid, &self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use moqo_costmodel::StandardCostModel;
    use moqo_engine::EngineConfig;
    use moqo_query::testkit;

    const IDLE: Duration = Duration::from_secs(60);

    fn server(admission: AdmissionConfig) -> MoqoServer {
        MoqoServer::new(
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ServeConfig {
                shard: ShardConfig {
                    shards: 2,
                    engine: EngineConfig {
                        workers: 2,
                        ..EngineConfig::default()
                    },
                    rebalance_headroom: 8,
                },
                admission,
                retired_tickets: 1024,
            },
        )
    }

    #[test]
    fn ticket_flow_submit_recv_select() {
        let s = server(AdmissionConfig::default());
        let t = s.submit(Arc::new(testkit::chain_query(3, 80_000)));
        // Updates stream on the ticket channel until the ladder saturates.
        let mut latest = match s.poll(t).unwrap() {
            TicketStatus::Active { status, .. } => *status,
            other => panic!("expected active ticket, got {other:?}"),
        };
        while latest.invocations < 3 {
            latest = s.recv(t, IDLE).expect("slice update");
        }
        assert!(!latest.frontier.is_empty());
        // Select the fastest visualized plan; the session retires.
        let plan = latest.frontier.min_by_metric(0).unwrap().plan;
        assert!(s.select_plan(t, plan));
        assert!(s.wait_idle(IDLE));
        let fin = match s.poll(t).unwrap() {
            TicketStatus::Active { status, .. } => *status,
            other => panic!("expected active ticket, got {other:?}"),
        };
        assert!(fin.finished);
        assert_eq!(fin.selected, Some(plan));
        assert_eq!(s.stats().live, 0);
    }

    #[test]
    fn rejection_backpressure_is_visible_on_the_ticket() {
        let s = server(AdmissionConfig {
            max_live: 1,
            policy: AdmissionPolicy::Reject,
        });
        let a = s.submit(Arc::new(testkit::chain_query(2, 10_000)));
        let b = s.submit(Arc::new(testkit::chain_query(3, 10_000)));
        assert!(matches!(s.poll(a), Some(TicketStatus::Active { .. })));
        assert!(matches!(
            s.poll(b),
            Some(TicketStatus::Rejected(RejectReason::Overloaded { .. }))
        ));
        // recv on a rejected ticket returns immediately.
        assert!(s.recv(b, Duration::from_millis(10)).is_none());
        assert_eq!(s.stats().admission.rejected, 1);
    }

    #[test]
    fn queued_submissions_admit_as_capacity_frees() {
        let s = server(AdmissionConfig {
            max_live: 1,
            policy: AdmissionPolicy::Queue { depth: 1 },
        });
        let a = s.submit(Arc::new(testkit::chain_query(2, 20_000)));
        let b = s.submit(Arc::new(testkit::chain_query(3, 20_000)));
        let c = s.submit(Arc::new(testkit::chain_query(4, 20_000)));
        assert!(matches!(s.poll(a), Some(TicketStatus::Active { .. })));
        assert!(matches!(s.poll(b), Some(TicketStatus::Queued { .. })));
        // The bounded queue is full: c is rejected, never silently grown.
        assert!(matches!(
            s.poll(c),
            Some(TicketStatus::Rejected(RejectReason::QueueFull { .. }))
        ));
        // Finishing a frees the slot; the next interaction admits b.
        assert!(s.wait_idle(IDLE));
        s.finish(a).unwrap();
        match s.poll(b).unwrap() {
            TicketStatus::Active { .. } => {}
            other => panic!("queued ticket should have admitted, got {other:?}"),
        }
        assert!(s.wait_idle(IDLE));
        let st = match s.poll(b).unwrap() {
            TicketStatus::Active { status, .. } => *status,
            _ => unreachable!(),
        };
        assert!(!st.frontier.is_empty());
    }

    #[test]
    fn closed_ticket_history_is_bounded() {
        let s = MoqoServer::new(
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(1, 1.2, 0.4),
            ServeConfig {
                shard: ShardConfig {
                    shards: 1,
                    engine: EngineConfig {
                        workers: 1,
                        ..EngineConfig::default()
                    },
                    rebalance_headroom: 0,
                },
                admission: AdmissionConfig::default(),
                retired_tickets: 2,
            },
        );
        let tickets: Vec<Ticket> = (2..=5)
            .map(|n| s.submit(Arc::new(testkit::chain_query(n, 5_000))))
            .collect();
        assert!(s.wait_idle(IDLE));
        for &t in &tickets {
            s.finish(t).unwrap();
        }
        // Only the two youngest closed tickets stay queryable; the
        // older ones were evicted with their frontiers and channels.
        assert!(s.poll(tickets[0]).is_none());
        assert!(s.poll(tickets[1]).is_none());
        assert!(matches!(
            s.poll(tickets[2]),
            Some(TicketStatus::Active { .. })
        ));
        assert!(matches!(
            s.poll(tickets[3]),
            Some(TicketStatus::Active { .. })
        ));
        // Operations on an evicted ticket degrade gracefully.
        assert!(!s.set_bounds(tickets[0], Bounds::unbounded(3)));
        assert!(s.finish(tickets[0]).is_none());
    }

    #[test]
    fn degrade_policy_admits_under_a_coarse_ladder() {
        let s = server(AdmissionConfig {
            max_live: 1,
            policy: AdmissionPolicy::Degrade {
                schedule: ResolutionSchedule::linear(0, 1.5, 0.5),
                hard_cap: 2,
            },
        });
        let a = s.submit(Arc::new(testkit::chain_query(2, 30_000)));
        let b = s.submit(Arc::new(testkit::chain_query(3, 30_000)));
        let c = s.submit(Arc::new(testkit::chain_query(4, 30_000)));
        assert!(matches!(
            s.poll(a),
            Some(TicketStatus::Active {
                degraded: false,
                ..
            })
        ));
        match s.poll(b).unwrap() {
            TicketStatus::Active { degraded, .. } => assert!(degraded),
            other => panic!("expected degraded admission, got {other:?}"),
        }
        // Beyond the hard cap even degraded admission stops.
        assert!(matches!(s.poll(c), Some(TicketStatus::Rejected(_))));
        assert!(s.wait_idle(IDLE));
        let st = match s.poll(b).unwrap() {
            TicketStatus::Active { status, .. } => *status,
            _ => unreachable!(),
        };
        // One-level ladder: a single invocation, but a frontier exists.
        assert!(st.schedule_override);
        assert_eq!(st.invocations, 1);
        assert!(!st.frontier.is_empty());
    }
}
