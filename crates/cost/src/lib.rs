//! Multi-objective plan cost primitives for the IAMA reproduction.
//!
//! This crate implements the cost-space model of Section 3 of the paper:
//! cost vectors in `R^l_+`, (strict) dominance, approximate dominance with a
//! precision factor `alpha`, cost bounds, Pareto-set utilities, and the
//! resolution-level schedule `alpha_r = alpha_T + alpha_S * (rM - r) / rM`
//! used by the anytime loop.
//!
//! Everything here is independent of queries and plans; higher layers attach
//! these vectors to query plans.

#![warn(missing_docs)]

pub mod agg;
pub mod bounds;
pub mod dominance;
pub mod hash;
pub mod lanes;
pub mod pareto;
pub mod schedule;
pub mod vector;

pub use agg::{AggFn, ChildCombine};
pub use bounds::Bounds;
pub use dominance::{dominates, dominates_scaled, strictly_dominates};
pub use hash::Fnv64;
pub use lanes::{
    dominates_scaled_lanes, domination_factor_lanes, full_mask, respects_lanes, BLOCK, LANES,
};
pub use pareto::{
    coverage_factor, covers, covers_bounded, is_pareto_optimal, pareto_filter, ParetoAccumulator,
};
pub use schedule::ResolutionSchedule;
pub use vector::{CostVector, MAX_DIM};
