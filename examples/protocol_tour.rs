//! Protocol tour: one query, one request type, one command vocabulary,
//! one event stream — driven through all three layers.
//!
//! ```text
//! cargo run --release --example protocol_tour
//! ```
//!
//! The session protocol (`moqo_core::protocol`) is the point of this
//! example: the *same* [`SessionRequest`] opens a bare [`Session`], an
//! engine session in a [`SessionManager`], and a served ticket on a
//! [`MoqoServer`]; the *same* [`SessionCommand`]s steer all three; and
//! every layer streams the *same* [`SessionEvent`] type, whose frontier
//! deltas reassemble exactly. The example asserts, end to end:
//!
//! (a) **identical frontiers** — the same script (refine to saturation,
//!     drag one bound, refine again) yields bit-identical final
//!     frontiers in all three layers;
//! (b) **one preference, one answer** — the same `SetPreference` command
//!     makes every layer auto-select the same plan, no `SelectPlan`
//!     round-trip;
//! (c) **per-session cost models stay isolated** — the same query under
//!     a different cost model gets its own fingerprint and its own
//!     frontier, with zero warm-cache crossover.

use moqo::core::{Session, SessionView};
use moqo::prelude::*;
use moqo::serve::TicketStatus;
use std::sync::Arc;
use std::time::Duration;

const IDLE: Duration = Duration::from_secs(120);

fn spec() -> Arc<QuerySpec> {
    Arc::new(moqo::query::testkit::chain_query(4, 75_000))
}

fn schedule() -> ResolutionSchedule {
    ResolutionSchedule::linear(3, 1.05, 0.5)
}

/// The one request every layer receives.
fn request() -> SessionRequest {
    SessionRequest::new(spec())
}

/// The scripted interaction, as protocol commands: the refocus the user
/// performs after watching the first saturated frontier.
fn refocus_bound(frontier: &moqo::core::FrontierSnapshot, dim: usize) -> Bounds {
    let anchor = frontier.min_by_metric(0).expect("non-empty").cost[0];
    Bounds::unbounded(dim).with_limit(0, anchor * 4.0)
}

/// The preference that ends the session automatically.
fn preference() -> Preference {
    Preference::WeightedSum(vec![1.0, 0.05, 0.05])
}

struct LayerRun {
    label: &'static str,
    frontier: moqo::core::FrontierSnapshot,
    selected: moqo::plan::PlanId,
    events: u64,
}

/// Layer 1: the bare core session, commands applied inline, events
/// folded into a client-side view.
fn drive_core(model: SharedCostModel) -> LayerRun {
    let mut session = Session::open(request(), model.clone(), schedule()).expect("valid request");
    let mut view = SessionView::default();
    for _ in 0..schedule().levels() {
        let ev = session.apply(SessionCommand::Refine).expect("live");
        view.fold(&ev).expect("ordered stream");
    }
    let bound = refocus_bound(&view.frontier, model.dim());
    let ev = session
        .apply(SessionCommand::SetBounds(bound))
        .expect("live");
    view.fold(&ev).expect("ordered stream");
    for _ in 0..schedule().levels() {
        let ev = session.apply(SessionCommand::Refine).expect("live");
        view.fold(&ev).expect("ordered stream");
    }
    // Install the preference; the ladder is saturated, so it fires on
    // this very command.
    let fin = session
        .apply(SessionCommand::SetPreference(Some(preference())))
        .expect("live");
    view.fold(&fin).expect("ordered stream");
    let selected = view.selected().expect("preference fired");
    LayerRun {
        label: "core   Session",
        frontier: view.frontier.clone(),
        selected,
        events: view.epoch,
    }
}

/// Layer 2: the concurrent engine; the same commands travel through the
/// manager's inbox, the same events through its watch channel.
fn drive_engine(model: SharedCostModel) -> LayerRun {
    let manager = SessionManager::new(
        model.clone(),
        schedule(),
        EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        },
    );
    let id = manager.open(request()).expect("valid request");
    let rx = manager.watch(id).expect("watchable");
    assert!(manager.wait_idle(IDLE));
    let bound = refocus_bound(&manager.frontier(id).expect("live"), model.dim());
    manager
        .command(id, SessionCommand::SetBounds(bound))
        .expect("live");
    assert!(manager.wait_idle(IDLE));
    manager
        .command(id, SessionCommand::SetPreference(Some(preference())))
        .expect("live");
    assert!(manager.wait_idle(IDLE));
    // Fold the complete event stream; it must reassemble exactly to the
    // engine-side final state.
    let mut view = SessionView::default();
    while let Ok(ev) = rx.try_recv() {
        view.fold(&ev).expect("ordered stream");
    }
    let status = manager.status(id).expect("retired but queryable");
    assert_eq!(view.frontier.len(), status.frontier.len());
    let selected = view.selected().expect("preference fired");
    assert_eq!(Some(selected), status.selected());
    LayerRun {
        label: "engine SessionManager",
        frontier: view.frontier.clone(),
        selected,
        events: view.epoch,
    }
}

/// Layer 3: the sharded, admission-controlled server; same request, same
/// commands, same events — now behind a ticket.
fn drive_serve(model: SharedCostModel) -> LayerRun {
    let server = MoqoServer::new(
        model.clone(),
        schedule(),
        ServeConfig {
            shard: ShardConfig {
                shards: 2,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 8,
            },
            ..ServeConfig::default()
        },
    );
    let (ticket, response) = server.submit(request()).expect("valid request");
    assert_eq!(response, AdmissionResponse::Admitted);
    assert!(server.wait_idle(IDLE));
    let view = match server.poll(ticket).expect("known ticket") {
        TicketStatus::Active { view, .. } => *view,
        other => panic!("expected active ticket, got {other:?}"),
    };
    let bound = refocus_bound(&view.frontier, model.dim());
    server
        .command(ticket, SessionCommand::SetBounds(bound))
        .expect("live");
    assert!(server.wait_idle(IDLE));
    server
        .command(ticket, SessionCommand::SetPreference(Some(preference())))
        .expect("live");
    assert!(server.wait_idle(IDLE));
    let view = match server.poll(ticket).expect("known ticket") {
        TicketStatus::Active { view, .. } => *view,
        other => panic!("expected active ticket, got {other:?}"),
    };
    let selected = view.selected().expect("preference fired");
    LayerRun {
        label: "serve  MoqoServer",
        frontier: view.frontier.clone(),
        selected,
        events: view.epoch,
    }
}

fn main() {
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());

    // --- One script, three layers. ---
    let runs = [
        drive_core(model.clone()),
        drive_engine(model.clone()),
        drive_serve(model.clone()),
    ];
    for run in &runs {
        println!(
            "{}: {} frontier points, selected {:?}, {} events",
            run.label,
            run.frontier.len(),
            run.selected,
            run.events
        );
    }
    // (a) identical final frontiers, bit for bit.
    let base = &runs[0];
    for other in &runs[1..] {
        assert!(
            base.frontier.bits_eq(&other.frontier),
            "{} diverged from {}",
            other.label,
            base.label
        );
        // (b) the same preference selected the same plan everywhere.
        assert_eq!(base.selected, other.selected, "{} diverged", other.label);
    }
    println!(
        "ok: all three layers agree — {} points, plan {:?} auto-selected by the preference",
        base.frontier.len(),
        base.selected
    );

    // --- (c) per-session cost models: same query, different model, own
    // fingerprint, own frontier, zero warm crossover. ---
    let manager = SessionManager::new(model.clone(), schedule(), EngineConfig::default());
    let custom: SharedCostModel = Arc::new(StandardCostModel::new(
        moqo::costmodel::MetricSet::paper(),
        moqo::costmodel::StandardCostModelConfig {
            dops: vec![1, 2],
            sampling_rates_pm: vec![250, 500],
            ..moqo::costmodel::StandardCostModelConfig::default()
        },
    ));
    let a = manager.open(request()).expect("valid");
    let b = manager
        .open(request().with_cost_model(custom.clone()))
        .expect("valid");
    assert!(manager.wait_idle(IDLE));
    let sa = manager.status(a).unwrap();
    let sb = manager.status(b).unwrap();
    assert_ne!(sa.fingerprint, sb.fingerprint, "model identity missing");
    manager.finish(a).unwrap();
    manager.finish(b).unwrap();
    // Each model resumes exactly its own parked frontier.
    let a2 = manager.open(request()).expect("valid");
    let b2 = manager
        .open(request().with_cost_model(custom))
        .expect("valid");
    assert!(manager.wait_idle(IDLE));
    for (id, label) in [(a2, "default-model"), (b2, "custom-model")] {
        let s = manager.status(id).unwrap();
        assert!(s.warm_start, "{label} repeat must start warm");
        assert_eq!(
            s.first_report.as_ref().unwrap().plans_generated,
            0,
            "{label} warm start rebuilt plans"
        );
    }
    assert_eq!(manager.cache_stats().hits, 2);
    println!(
        "ok: per-session cost models warm independently \
         (fingerprints {:#018x} vs {:#018x})",
        sa.fingerprint.as_u64(),
        sb.fingerprint.as_u64()
    );
}
