//! Plan-set indexes supporting (cost, resolution) range queries.
//!
//! IAMA indexes both result plans and candidate plans "by plan cost and by
//! resolution level", using "a data structure supporting multi-dimensional
//! range queries" (Section 4.1). The notation `S[0..b, 0..r]` selects the
//! entries whose cost vector is dominated by the bounds `b` and whose
//! resolution tag is at most `r`.
//!
//! Three interchangeable implementations are provided behind the
//! [`PlanIndex`] trait:
//!
//! * [`LinearIndex`] — per-resolution flat vectors, scanned with a bounds
//!   filter. Simple and cache-friendly; retrieval is `O(stored)`.
//! * [`CellGrid`] — the logarithmically partitioned cell structure the
//!   paper recommends (citing Bentley & Friedman): cost space is split
//!   into cells along `floor(log2(1 + cost))` per metric, so a range query
//!   can accept whole cells without per-entry checks and reject
//!   out-of-range cells in `O(1)`. Under the paper's uniformity
//!   assumptions retrieval of `F` entries is `O(F)`.
//! * [`KdTree`] — a classic k-d tree over the cost metrics, pruning whole
//!   subtrees during range queries; drains use tombstones with periodic
//!   compaction.
//!
//! The paper's amortized analysis prioritizes retrieval over insertion
//! time (Section 4.1); the grid and flat structures insert in `O(1)`, the
//! tree in `O(depth)`.
//!
//! The crate also provides [`PairSet`], the hash structure behind the
//! `IsFresh` predicate ensuring no sub-plan pair is combined twice
//! (Lemma 6), and [`fxhash`], a small fast non-cryptographic hasher used
//! throughout the optimizer.

#![warn(missing_docs)]

pub mod cellgrid;
pub mod entry;
pub mod fxhash;
pub mod kdtree;
pub mod linear;
pub mod pairs;

pub use cellgrid::CellGrid;
pub use entry::Entry;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use kdtree::KdTree;
pub use linear::LinearIndex;
pub use pairs::PairSet;

use moqo_cost::Bounds;

/// A plan-set index keyed by cost vector and resolution level.
///
/// `T` is the payload (a plan identifier in the optimizer).
pub trait PlanIndex<T: Copy> {
    /// Inserts an entry.
    fn insert(&mut self, entry: Entry<T>);

    /// Visits every entry in `S[0..b, 0..r]` (cost dominated by `bounds`,
    /// level `<= max_level`). The visitor returns `true` to stop early;
    /// `scan` returns `true` if it was stopped early.
    ///
    /// Visit order is unspecified.
    fn scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool;

    /// Removes and returns every entry in `S[0..b, 0..r]`.
    fn drain(&mut self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>>;

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// True if no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Collects (copies of) all entries in `S[0..b, 0..r]`.
    fn collect(&self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>> {
        let mut out = Vec::new();
        self.scan(bounds, max_level, &mut |e| {
            out.push(*e);
            false
        });
        out
    }

    /// True if some entry in `S[0..b, 0..r]` satisfies `pred`.
    fn any(&self, bounds: &Bounds, max_level: u8, pred: &mut dyn FnMut(&Entry<T>) -> bool) -> bool {
        self.scan(bounds, max_level, pred)
    }
}

/// Which index implementation to use (runtime-selectable for the ablation
/// benchmarks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexKind {
    /// Flat per-resolution vectors.
    Linear,
    /// Logarithmic cell grid.
    CellGrid,
    /// k-d tree (cycling split axes, tombstoned drains).
    KdTree,
}

/// A [`PlanIndex`] implementation chosen at runtime.
pub enum DynIndex<T: Copy> {
    /// Flat index variant.
    Linear(LinearIndex<T>),
    /// Cell-grid variant.
    Grid(CellGrid<T>),
    /// k-d tree variant.
    Tree(KdTree<T>),
}

impl<T: Copy> DynIndex<T> {
    /// Creates an empty index of the requested kind for `dim` metrics.
    pub fn new(kind: IndexKind, dim: usize) -> Self {
        match kind {
            IndexKind::Linear => DynIndex::Linear(LinearIndex::new()),
            IndexKind::CellGrid => DynIndex::Grid(CellGrid::new(dim)),
            IndexKind::KdTree => DynIndex::Tree(KdTree::new(dim)),
        }
    }
}

impl<T: Copy> PlanIndex<T> for DynIndex<T> {
    fn insert(&mut self, entry: Entry<T>) {
        match self {
            DynIndex::Linear(i) => i.insert(entry),
            DynIndex::Grid(i) => i.insert(entry),
            DynIndex::Tree(i) => i.insert(entry),
        }
    }

    fn scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool {
        match self {
            DynIndex::Linear(i) => i.scan(bounds, max_level, visitor),
            DynIndex::Grid(i) => i.scan(bounds, max_level, visitor),
            DynIndex::Tree(i) => i.scan(bounds, max_level, visitor),
        }
    }

    fn drain(&mut self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>> {
        match self {
            DynIndex::Linear(i) => i.drain(bounds, max_level),
            DynIndex::Grid(i) => i.drain(bounds, max_level),
            DynIndex::Tree(i) => i.drain(bounds, max_level),
        }
    }

    fn len(&self) -> usize {
        match self {
            DynIndex::Linear(i) => PlanIndex::len(i),
            DynIndex::Grid(i) => PlanIndex::len(i),
            DynIndex::Tree(i) => PlanIndex::len(i),
        }
    }
}

#[cfg(test)]
mod dyn_tests {
    use super::*;
    use moqo_cost::CostVector;

    #[test]
    fn dyn_index_dispatches_both_kinds() {
        for kind in [IndexKind::Linear, IndexKind::CellGrid, IndexKind::KdTree] {
            let mut idx: DynIndex<u32> = DynIndex::new(kind, 2);
            idx.insert(Entry::new(7, CostVector::new(&[1.0, 2.0]), 0, 0));
            idx.insert(Entry::new(8, CostVector::new(&[5.0, 5.0]), 1, 0));
            assert_eq!(PlanIndex::len(&idx), 2);
            let all = idx.collect(&Bounds::unbounded(2), 1);
            assert_eq!(all.len(), 2);
            let low = idx.collect(&Bounds::from_slice(&[2.0, 2.0]), 1);
            assert_eq!(low.len(), 1);
            assert_eq!(low[0].item, 7);
            let lvl0 = idx.collect(&Bounds::unbounded(2), 0);
            assert_eq!(lvl0.len(), 1);
            let drained = idx.drain(&Bounds::unbounded(2), 1);
            assert_eq!(drained.len(), 2);
            assert!(PlanIndex::is_empty(&idx));
        }
    }
}
