//! Free-function dominance relations over [`CostVector`]s.
//!
//! These mirror the relations of Section 3 of the paper:
//! * `dominates(a, b)`  ⇔  `c(a) ⪯ c(b)` — `a` is at least as good as `b`
//!   on every metric;
//! * `strictly_dominates(a, b)`  ⇔  `c(a) ≺ c(b)` — dominates and strictly
//!   better on at least one metric;
//! * `dominates_scaled(a, b, alpha)`  ⇔  `c(a) ⪯ alpha · c(b)` — the
//!   approximate dominance used throughout pruning.

use crate::vector::CostVector;

/// `a ⪯ b`: `a` is at least as good as `b` according to every cost metric.
#[inline]
pub fn dominates(a: &CostVector, b: &CostVector) -> bool {
    a.dominates(b)
}

/// `a ≺ b`: `a` dominates `b` and has lower cost on at least one metric.
#[inline]
pub fn strictly_dominates(a: &CostVector, b: &CostVector) -> bool {
    a.strictly_dominates(b)
}

/// `a ⪯ alpha · b`: approximate dominance with precision factor `alpha`.
///
/// With `alpha > 1` this is *easier* to satisfy than plain dominance: the
/// cost of `b` is inflated before the comparison, so `a` only needs to be
/// within a factor `alpha` of `b` on every metric.
#[inline]
pub fn dominates_scaled(a: &CostVector, b: &CostVector, alpha: f64) -> bool {
    a.dominates_scaled(b, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[f64]) -> CostVector {
        CostVector::new(s)
    }

    #[test]
    fn free_functions_match_methods() {
        let a = v(&[1.0, 2.0]);
        let b = v(&[2.0, 2.0]);
        assert!(dominates(&a, &b));
        assert!(strictly_dominates(&a, &b));
        assert!(dominates_scaled(&b, &a, 2.0));
        assert!(!dominates_scaled(&b, &a, 1.0));
    }

    #[test]
    fn dominance_is_reflexive_and_antisymmetric_up_to_equality() {
        let a = v(&[3.0, 1.0]);
        let b = v(&[3.0, 1.0]);
        assert!(dominates(&a, &b) && dominates(&b, &a));
        assert!(!strictly_dominates(&a, &b));
    }

    #[test]
    fn scaled_dominance_with_alpha_one_is_plain_dominance() {
        let a = v(&[1.0, 4.0]);
        let b = v(&[2.0, 3.0]);
        assert_eq!(dominates(&a, &b), dominates_scaled(&a, &b, 1.0));
        assert_eq!(dominates(&b, &a), dominates_scaled(&b, &a, 1.0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn cost_vec(dim: usize) -> impl Strategy<Value = CostVector> {
        proptest::collection::vec(0.0f64..1e6, dim).prop_map(|v| CostVector::new(&v))
    }

    proptest! {
        /// Dominance is a partial order: reflexive and transitive.
        #[test]
        fn dominance_reflexive(a in cost_vec(3)) {
            prop_assert!(dominates(&a, &a));
        }

        #[test]
        fn dominance_transitive(a in cost_vec(3), b in cost_vec(3), c in cost_vec(3)) {
            if dominates(&a, &b) && dominates(&b, &c) {
                prop_assert!(dominates(&a, &c));
            }
        }

        /// Strict dominance is irreflexive and implies dominance.
        #[test]
        fn strict_implies_plain(a in cost_vec(4), b in cost_vec(4)) {
            if strictly_dominates(&a, &b) {
                prop_assert!(dominates(&a, &b));
                prop_assert!(a != b);
            }
        }

        /// Approximate dominance is monotone in alpha.
        #[test]
        fn scaled_monotone_in_alpha(
            a in cost_vec(3),
            b in cost_vec(3),
            alpha in 1.0f64..4.0,
            extra in 0.0f64..2.0,
        ) {
            if dominates_scaled(&a, &b, alpha) {
                prop_assert!(dominates_scaled(&a, &b, alpha + extra));
            }
        }

        /// Plain dominance implies alpha-dominance for any alpha >= 1.
        #[test]
        fn dominance_implies_scaled(a in cost_vec(3), b in cost_vec(3), alpha in 1.0f64..4.0) {
            if dominates(&a, &b) {
                prop_assert!(dominates_scaled(&a, &b, alpha));
            }
        }

        /// domination_factor is the exact threshold for dominates_scaled.
        #[test]
        fn domination_factor_is_threshold(a in cost_vec(3), b in cost_vec(3)) {
            let f = a.domination_factor(&b);
            if f.is_finite() {
                prop_assert!(dominates_scaled(&a, &b, f * (1.0 + 1e-12) + 1e-12));
                if f > 1e-9 {
                    prop_assert!(!dominates_scaled(&a, &b, f * (1.0 - 1e-9) - 1e-9));
                }
            }
        }
    }
}
