//! The concurrent multi-session serving layer.
//!
//! [`SessionManager`] owns many interactive optimization sessions at once
//! — the deployment shape Figure 1 of the paper implies: every connected
//! user drags bounds over their own refining Pareto frontier while a
//! shared worker pool advances all sessions fairly.
//!
//! The manager speaks the [session protocol](moqo_core::protocol)
//! end to end: sessions open from a [`SessionRequest`] (which may carry
//! per-session bounds, a schedule override, a [`Preference`] that
//! auto-selects at the target resolution, and a **per-session cost
//! model**), clients steer them with [`SessionCommand`]s routed into
//! per-session inboxes, and [`SessionManager::watch`] streams
//! [`SessionEvent`]s whose [`FrontierDelta`]s reassemble — exactly — to
//! the full frontier, instead of re-shipping it after every slice.
//!
//! Scheduling is round-robin with budgeted time slices: a worker checks a
//! session out of the shared map, runs at most
//! [`EngineConfig::ticks_per_slice`] anytime invocations (each tick is one
//! `optimize(bounds, r)` call, so the *incrementality* of IAMA — not the
//! scheduler — keeps slices short), then requeues the session at the back.
//!
//! Finished sessions park their optimizer in the [`FrontierCache`] keyed
//! by canonical [`QueryFingerprint`] — which embeds the cost model's
//! [identity](moqo_costmodel::CostModel::identity), so sessions under
//! different per-session models can never exchange warm state — and a
//! repeated query starts from a warm frontier: its first invocation
//! generates zero plans.
//!
//! [`Preference`]: moqo_core::Preference

use crate::cache::{CacheStats, FrontierCache};
use crate::fingerprint::{QueryFingerprint, RebaseKey, SubsetFingerprint};
use crate::plans::{PlanCache, PlanCacheStats};
use crate::subfrontier::{SubFrontierCache, SubFrontierCacheStats};
use moqo_core::protocol::{
    FrontierDelta, ProtocolError, SessionCommand, SessionEvent, SessionOutcome, SessionRequest,
};
use moqo_core::{FrontierSnapshot, IamaConfig, IamaOptimizer, InvocationReport, Session};
use moqo_cost::{Bounds, ResolutionSchedule};
use moqo_costmodel::SharedCostModel;
use moqo_plan::PlanId;
use moqo_query::QuerySpec;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Identifier of one interactive session within a [`SessionManager`].
pub type SessionId = u64;

/// Tunables of the serving layer.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads advancing sessions. At least 1.
    pub workers: usize,
    /// Parked optimizers kept in the warm-frontier cache.
    pub cache_capacity: usize,
    /// Anytime invocations a session may run without user input before it
    /// parks. `0` means "derive from the schedule": one full resolution
    /// ladder (`r_max + 1` invocations).
    pub auto_ticks: usize,
    /// Invocations a worker runs for one session per checkout before
    /// requeueing it (round-robin fairness knob).
    pub ticks_per_slice: usize,
    /// Wall-clock budget per checkout; the slice ends early once spent.
    pub slice_budget: Duration,
    /// Finished sessions whose final [`SessionStatus`] stays queryable
    /// after their optimizer moved to the cache; the oldest beyond this
    /// many are dropped so a long-lived manager's memory stays bounded.
    pub retired_capacity: usize,
    /// Harvested per-subset sub-frontier blobs kept for transplanting
    /// into similar (not identical) queries; see
    /// [`crate::SubFrontierCache`].
    pub subfrontier_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            cache_capacity: 64,
            auto_ticks: 0,
            ticks_per_slice: 1,
            slice_budget: Duration::from_millis(100),
            retired_capacity: 256,
            subfrontier_capacity: 1024,
        }
    }
}

/// Read-only snapshot of one session, refreshed after every slice.
#[derive(Clone, Debug)]
pub struct SessionStatus {
    /// The session's id.
    pub id: SessionId,
    /// Display name of the query being optimized.
    pub query: String,
    /// Canonical fingerprint (the frontier-cache key; embeds the
    /// session's effective cost-model identity).
    pub fingerprint: QueryFingerprint,
    /// True if the session started from a cached warm frontier.
    pub warm_start: bool,
    /// True if the session runs a non-default — typically degraded —
    /// resolution ladder: a [`SessionRequest`] schedule override took
    /// effect on a cold start, or a warm resume revived a frontier that
    /// was refined under a ladder other than the manager-wide one (its
    /// approximation guarantee is the parked ladder's, not the
    /// deployment default's).
    pub schedule_override: bool,
    /// True if the session runs under a per-session cost model instead of
    /// the manager-wide one.
    pub model_override: bool,
    /// True if the session started cold on its exact fingerprint but was
    /// seeded by **rebasing** a parked frontier of the same shape under
    /// drifted catalog cardinalities (plans re-admitted as re-costed
    /// level-0 candidates; see `IamaOptimizer::rebase_from`).
    pub rebased: bool,
    /// Number of table subsets seeded from transplanted sub-frontier
    /// blobs on a cold start (0 for warm and rebased sessions).
    pub seeded_subsets: u32,
    /// Epoch of the last published [`SessionEvent`] (watch streams resume
    /// from here).
    pub epoch: u64,
    /// Terminal state, once the session ended (plan selected, preference
    /// fired, cancelled, or retired).
    pub outcome: Option<SessionOutcome>,
    /// Invocations run so far *in this session*.
    pub invocations: u64,
    /// Resolution level the next invocation will use.
    pub resolution: usize,
    /// The session's current cost bounds.
    pub bounds: Bounds,
    /// Cost tradeoffs currently visualized for this session.
    pub frontier: FrontierSnapshot,
    /// Report of the session's first invocation (warm-start evidence:
    /// `plans_generated == 0` on a cache hit).
    pub first_report: Option<InvocationReport>,
    /// Report of the most recent invocation.
    pub last_report: Option<InvocationReport>,
}

impl SessionStatus {
    /// True once the session ended.
    pub fn is_finished(&self) -> bool {
        self.outcome.is_some()
    }

    /// The plan the session ended with, if any.
    pub fn selected(&self) -> Option<PlanId> {
        self.outcome.and_then(|o| o.selected())
    }
}

/// A checked-in session: the interactive state plus its command inbox.
struct Active {
    session: Session,
    inbox: VecDeque<SessionCommand>,
    remaining_ticks: usize,
    /// Refinement budget re-armed on bound changes; per-session because a
    /// [`SessionRequest`] can override the ladder length.
    auto_ticks: usize,
}

impl Active {
    fn has_work(&self) -> bool {
        !self.inbox.is_empty() || self.remaining_ticks > 0
    }
}

enum Cell {
    /// Parked in the map, available for checkout.
    Idle(Box<Active>),
    /// Currently owned by a worker.
    Running,
    /// Finished; the optimizer has moved to the frontier cache.
    Retired,
}

struct Slot {
    cell: Cell,
    status: SessionStatus,
    queued: bool,
    /// Commands that arrived while a worker held the session; merged into
    /// the session's inbox when the slice checks back in.
    late_inbox: VecDeque<SessionCommand>,
    /// Per-watcher push channels: every published [`SessionEvent`]
    /// (after a slice, on retirement, on `finish`) is cloned into each
    /// live watcher so callers can `recv` on their own channel instead of
    /// parking on the engine's internal condvar. Disconnected watchers
    /// are pruned on the next send.
    watchers: Vec<mpsc::Sender<SessionEvent>>,
}

impl Slot {
    /// Publishes one event to all watchers (dropping dead ones) and
    /// advances the stream epoch.
    fn publish(&mut self, event: SessionEvent) {
        self.status.epoch = event.epoch;
        if self.watchers.is_empty() {
            return;
        }
        self.watchers.retain(|w| w.send(event.clone()).is_ok());
    }
}

struct EngineState {
    slots: HashMap<SessionId, Slot>,
    queue: VecDeque<SessionId>,
    cache: FrontierCache,
    next_id: SessionId,
    running: usize,
    /// Sessions admitted and not yet finished (live load, for admission
    /// control and shard routing).
    live: usize,
    /// Retired sessions in retirement order, oldest first; trimmed to
    /// `EngineConfig::retired_capacity` so `slots` stays bounded.
    retired: VecDeque<SessionId>,
}

/// Callback fired whenever a session publishes a [`SessionEvent`] to its
/// watchers — the readiness signal an event-driven serving front needs to
/// know *which* watch channel became non-empty without polling them all.
///
/// Invoked with the engine state lock held, so implementations must be
/// cheap and must only take leaf locks (push an id on a queue, ring a
/// doorbell) — never call back into the manager.
pub type EventHook = Arc<dyn Fn(SessionId) + Send + Sync>;

struct Shared {
    state: Mutex<EngineState>,
    /// Signals workers that the run queue may be non-empty.
    work: Condvar,
    /// Signals waiters that a slice finished (idle / finish conditions).
    settled: Condvar,
    shutdown: AtomicBool,
    /// See [`EventHook`]; `None` until a serving front installs one.
    event_hook: Mutex<Option<EventHook>>,
    /// Harvested per-subset warm state, probed on cold opens. Internally
    /// locked (never under the state lock order issues: workers touch it
    /// *outside* the state lock, `open`/`finish` take state → sub-frontier
    /// in that order only).
    subfrontiers: Arc<SubFrontierCache>,
}

/// Owns many concurrent interactive sessions and the worker pool driving
/// them; see the module docs for the scheduling model.
///
/// One manager serves one deployment default (cost model + resolution
/// schedule) but any number of per-session overrides via
/// [`SessionRequest`]. Dropping the manager shuts the workers down and
/// joins them.
pub struct SessionManager {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    model: SharedCostModel,
    schedule: ResolutionSchedule,
    auto_ticks: usize,
    /// Enumeration plans shared across sessions, keyed by join-graph
    /// shape: structurally similar queries (same shape, any statistics,
    /// any cost model) reuse one plan even when their frontiers cannot be
    /// shared.
    plans: PlanCache,
}

impl SessionManager {
    /// Starts the worker pool with a private sub-frontier cache.
    pub fn new(model: SharedCostModel, schedule: ResolutionSchedule, config: EngineConfig) -> Self {
        let subfrontiers = Arc::new(SubFrontierCache::new(config.subfrontier_capacity));
        Self::with_subfrontiers(model, schedule, config, subfrontiers)
    }

    /// Starts the worker pool sharing an existing sub-frontier cache —
    /// the multi-shard deployment shape: sub-frontier blobs are position
    /// and query independent, so every shard of a `ShardedEngine` harvests
    /// into and transplants from one cache.
    pub fn with_subfrontiers(
        model: SharedCostModel,
        schedule: ResolutionSchedule,
        config: EngineConfig,
        subfrontiers: Arc<SubFrontierCache>,
    ) -> Self {
        let auto_ticks = if config.auto_ticks == 0 {
            schedule.levels()
        } else {
            config.auto_ticks
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                slots: HashMap::new(),
                queue: VecDeque::new(),
                cache: FrontierCache::new(config.cache_capacity),
                next_id: 1,
                running: 0,
                live: 0,
                retired: VecDeque::new(),
            }),
            work: Condvar::new(),
            settled: Condvar::new(),
            shutdown: AtomicBool::new(false),
            event_hook: Mutex::new(None),
            subfrontiers,
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cfg = config.clone();
                thread::Builder::new()
                    .name(format!("moqo-engine-{i}"))
                    .spawn(move || worker_loop(shared, cfg))
                    .expect("spawn engine worker")
            })
            .collect();
        Self {
            shared,
            workers,
            model,
            schedule,
            auto_ticks,
            plans: PlanCache::new(),
        }
    }

    /// Admits a new interactive session with every default in place
    /// (unbounded bounds, manager-wide model and schedule).
    ///
    /// If the frontier cache holds a parked optimizer for an equivalent
    /// query under the same cost model, the session resumes from that
    /// warm state.
    pub fn submit(&self, spec: Arc<QuerySpec>) -> SessionId {
        self.open(SessionRequest::new(spec))
            .expect("a bare request has nothing to validate")
    }

    /// Admits a new session from a protocol request.
    ///
    /// The request may override the initial bounds, the resolution ladder
    /// (cold starts only — a warm resume keeps the parked ladder), the
    /// refinement budget, the **cost model**, and may install a
    /// [`Preference`](moqo_core::Preference) that auto-selects a plan at
    /// the target resolution. All dimensioned fields are validated
    /// against the effective model here, so a malformed request is a
    /// typed [`ProtocolError`] at the door — never a worker panic.
    pub fn open(&self, request: SessionRequest) -> Result<SessionId, ProtocolError> {
        let model = request.effective_model(&self.model);
        request.validate(model.dim())?;
        let model_override = request.cost_model.is_some();
        let spec = request.spec.clone();
        let fp = QueryFingerprint::of(&spec, &model);
        let bounds = request
            .bounds
            .unwrap_or_else(|| Bounds::unbounded(model.dim()));
        // Resolve the shared enumeration plan outside the state lock —
        // plan construction can be expensive for wide shapes and must not
        // stall unrelated sessions. A warm frontier-cache hit below makes
        // this a pointer clone at worst (the shape is already cached).
        let config = IamaConfig::default();
        let plan = self
            .plans
            .get_or_build(&spec.graph, config.allow_cross_products);
        let mut state = self.lock();
        let (optimizer, warm, overridden, rebased, seeded_subsets) = match state.cache.take(fp) {
            // Warm resumes keep the parked ladder: its plan sets are
            // level-tagged under that schedule (see [`SessionRequest`]).
            // If that ladder is not the manager-wide one — e.g. the
            // frontier was refined under a degraded admission ladder —
            // the weaker guarantee must stay visible, so the override
            // flag is set from the *effective* schedule.
            Some(opt) => {
                let nonstandard = opt.schedule() != &self.schedule;
                (opt, true, nonstandard, false, 0)
            }
            None => {
                let (schedule, overridden) = match request.schedule.clone() {
                    Some(s) => (s, true),
                    None => (self.schedule.clone(), false),
                };
                let mut opt =
                    IamaOptimizer::with_plan(spec.clone(), model.clone(), schedule, config, plan);
                // Exact fingerprint miss. Two warm near-miss tiers before
                // cold enumeration, both re-costing every plan at the
                // door so the `alpha_T` guarantee never weakens:
                //
                // 1. **Rebase** — a parked frontier of the same shape
                //    whose fingerprint differs only in catalog
                //    cardinalities (the hourly stats refresh). Its plans
                //    re-enter as level-0 candidates; the donor stays
                //    parked for exact repeats of its own statistics.
                let mut rebased = false;
                if let Some(donor) = state.cache.rebase_donor(RebaseKey::of(&spec, &model)) {
                    rebased = opt.rebase_from(donor).map(|n| n > 0).unwrap_or(false);
                }
                // 2. **Transplant** — per-subset blobs harvested from
                //    *different* queries sharing a join subgraph with
                //    identical induced statistics. Skipped after a
                //    successful rebase (which already seeds every
                //    subset, including the full set).
                let mut seeded = 0u32;
                if !rebased {
                    let enumeration = Arc::clone(opt.enumeration());
                    for info in enumeration.subsets() {
                        let tables = info.tables;
                        if tables.len() < 2 {
                            continue;
                        }
                        let sfp = SubsetFingerprint::of(&spec, tables, &model);
                        if let Some(blob) = self.shared.subfrontiers.get(sfp) {
                            // Import errors are near-miss hash collisions
                            // or model drift: refuse the seed, run cold.
                            if let Ok(n) = opt.import_subset(tables, &blob) {
                                if n > 0 {
                                    seeded += 1;
                                }
                            }
                        }
                    }
                }
                (opt, false, overridden, rebased, seeded)
            }
        };
        let auto_ticks = request
            .auto_ticks
            .unwrap_or_else(|| match (&request.schedule, warm) {
                (Some(s), false) => s.levels(),
                _ => self.auto_ticks,
            });
        let mut session = Session::with_bounds(optimizer, bounds);
        session
            .set_preference(request.preference.clone())
            .expect("validated against the effective model above");
        let id = state.next_id;
        state.next_id += 1;
        let status = SessionStatus {
            id,
            query: spec.name.clone(),
            fingerprint: fp,
            warm_start: warm,
            rebased,
            seeded_subsets,
            schedule_override: overridden,
            model_override,
            epoch: 0,
            outcome: None,
            invocations: 0,
            resolution: 0,
            bounds,
            frontier: FrontierSnapshot::default(),
            first_report: None,
            last_report: None,
        };
        state.slots.insert(
            id,
            Slot {
                cell: Cell::Idle(Box::new(Active {
                    session,
                    inbox: VecDeque::new(),
                    remaining_ticks: auto_ticks,
                    auto_ticks,
                })),
                status,
                queued: false,
                late_inbox: VecDeque::new(),
                watchers: Vec::new(),
            },
        );
        state.live += 1;
        enqueue(&mut state, id);
        drop(state);
        self.shared.work.notify_one();
        Ok(id)
    }

    /// Routes a [`SessionCommand`] into a session's inbox and wakes it.
    ///
    /// Dimensioned commands are validated against the session's cost
    /// model here, so a malformed command is a typed error at the door —
    /// it never reaches (let alone crashes) a worker. `Ok` means the
    /// command was accepted for delivery, not that it will be acted on:
    /// a command racing with the session's own completion (the user's
    /// earlier `SelectPlan` lands in the same slice) is discarded with
    /// the rest of the inbox, exactly as if it had arrived a moment
    /// later.
    pub fn command(&self, id: SessionId, command: SessionCommand) -> Result<(), ProtocolError> {
        let mut state = self.lock();
        let Some(slot) = state.slots.get_mut(&id) else {
            return Err(ProtocolError::UnknownSession);
        };
        if slot.status.is_finished() {
            return Err(ProtocolError::SessionFinished);
        }
        let dim = slot.status.bounds.dim();
        match &command {
            SessionCommand::SetBounds(b) if b.dim() != dim => {
                return Err(ProtocolError::BoundsDimensionMismatch {
                    expected: dim,
                    got: b.dim(),
                });
            }
            SessionCommand::SetPreference(Some(p)) => p.validate(dim)?,
            // A selection must name a currently *visualized* tradeoff
            // (the published frontier is exactly what the client sees).
            SessionCommand::SelectPlan(p)
                if !slot.status.frontier.points.iter().any(|pt| pt.plan == *p) =>
            {
                return Err(ProtocolError::UnknownPlan { plan: *p });
            }
            _ => {}
        }
        match &mut slot.cell {
            Cell::Idle(active) => active.inbox.push_back(command),
            Cell::Running => {
                // The worker drains the inbox before checking the slot
                // back in, so park the command on the status-side queue;
                // the worker merges `late_inbox` on check-in.
                slot.late_inbox.push_back(command);
            }
            Cell::Retired => return Err(ProtocolError::SessionFinished),
        }
        enqueue(&mut state, id);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Snapshot of one session's current state.
    pub fn status(&self, id: SessionId) -> Option<SessionStatus> {
        self.lock().slots.get(&id).map(|s| s.status.clone())
    }

    /// The currently visualized frontier of one session.
    pub fn frontier(&self, id: SessionId) -> Option<FrontierSnapshot> {
        self.status(id).map(|s| s.frontier)
    }

    /// Ids of all sessions the manager still tracks.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self.lock().slots.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Retires a session, parking its optimizer in the frontier cache, and
    /// returns its final status. Blocks while a worker holds the session.
    /// Watchers receive a final [`SessionEvent`] with a
    /// [`SessionOutcome::Retired`] outcome (unless the session already
    /// ended).
    pub fn finish(&self, id: SessionId) -> Option<SessionStatus> {
        let mut state = self.lock();
        loop {
            let running = match state.slots.get(&id) {
                None => return None,
                Some(slot) => matches!(slot.cell, Cell::Running),
            };
            if !running {
                break;
            }
            state = self.shared.settled.wait(state).expect("engine lock");
        }
        let mut slot = state.slots.remove(&id).expect("checked above");
        if let Cell::Idle(active) = std::mem::replace(&mut slot.cell, Cell::Retired) {
            let fp = slot.status.fingerprint;
            let optimizer = active.session.into_optimizer();
            harvest_subfrontiers(&self.shared.subfrontiers, &optimizer);
            state.cache.put(fp, optimizer);
        }
        if slot.status.outcome.is_none() {
            slot.status.outcome = Some(SessionOutcome::Retired);
            state.live = state.live.saturating_sub(1);
        }
        let event = terminal_event(&slot.status);
        slot.publish(event);
        fire_event_hook(&self.shared, id);
        Some(slot.status)
    }

    /// Installs (or replaces) the [`EventHook`] fired after every
    /// published session event. The serving front uses it to learn which
    /// sessions have fresh events without sleep-polling watch channels.
    pub fn set_event_hook(&self, hook: EventHook) {
        *self.shared.event_hook.lock().expect("event hook lock") = Some(hook);
    }

    /// Subscribes to a session's event stream.
    ///
    /// Returns a channel that receives one [`SessionEvent`] per completed
    /// slice (and a final one when the session finishes). The stream is
    /// primed immediately with a reset-delta event carrying the current
    /// full frontier, so the first `recv` never blocks on optimizer
    /// progress and a [`moqo_core::SessionView`] folded over the stream
    /// reassembles the exact server-side frontier. Returns `None` for
    /// unknown sessions. Receivers that fall behind simply buffer (the
    /// channel is unbounded but updates are slice-paced); dropped
    /// receivers are pruned on the next update.
    ///
    /// This is the non-blocking alternative to
    /// [`SessionManager::wait_idle`]: callers park on their own channel,
    /// never on the engine's internal condvar.
    pub fn watch(&self, id: SessionId) -> Option<mpsc::Receiver<SessionEvent>> {
        let mut state = self.lock();
        let slot = state.slots.get_mut(&id)?;
        let (tx, rx) = mpsc::channel();
        let s = &slot.status;
        let prime = SessionEvent {
            epoch: s.epoch,
            delta: FrontierDelta::full(&s.frontier),
            resolution: s.resolution,
            bounds: s.bounds,
            invocations: s.invocations,
            report: s.last_report.clone(),
            first_report: s.first_report.clone(),
            outcome: s.outcome,
            coalesced: 0,
        };
        let _ = tx.send(prime);
        if s.outcome.is_none() {
            slot.watchers.push(tx);
        }
        Some(rx)
    }

    /// Parks an optimizer directly in the warm-frontier cache (the
    /// persistence-restore hook: a serving layer re-injects deserialized
    /// frontiers on startup so the first submission of a known query
    /// starts warm).
    pub fn park(&self, fp: QueryFingerprint, optimizer: IamaOptimizer) {
        harvest_subfrontiers(&self.shared.subfrontiers, &optimizer);
        self.lock().cache.put(fp, optimizer);
    }

    /// True if the warm-frontier cache holds a parked optimizer for `fp`.
    /// Does not count as a cache lookup (router warmth probe).
    pub fn has_parked(&self, fp: QueryFingerprint) -> bool {
        self.lock().cache.contains(fp)
    }

    /// Visits every parked optimizer under the state lock (persistence
    /// export). Keep the closure cheap-ish: submissions block while it
    /// runs. Live (non-parked) sessions are not visited — park them first
    /// via [`SessionManager::finish`] to capture their frontiers. For
    /// per-entry work (e.g. serialization), prefer
    /// [`SessionManager::parked_fingerprints`] +
    /// [`SessionManager::with_parked`], which take the lock once per
    /// entry instead of across the whole pass.
    pub fn for_each_parked(&self, f: impl FnMut(QueryFingerprint, &IamaOptimizer)) {
        self.lock().cache.for_each_parked(f);
    }

    /// Fingerprints of all currently parked optimizers (cheap snapshot
    /// under the lock; pair with [`SessionManager::with_parked`]).
    pub fn parked_fingerprints(&self) -> Vec<QueryFingerprint> {
        self.lock().cache.parked_fingerprints()
    }

    /// Runs `f` over one parked optimizer under the state lock; `None`
    /// if nothing is parked for `fp` (anymore). The lock is held only
    /// for this single entry, so long export passes interleave with
    /// submissions instead of stalling them wholesale.
    pub fn with_parked<R>(
        &self,
        fp: QueryFingerprint,
        f: impl FnOnce(&IamaOptimizer) -> R,
    ) -> Option<R> {
        self.lock().cache.parked(fp).map(f)
    }

    /// Serializes one parked optimizer as self-validating
    /// [`export_frontier`](IamaOptimizer::export_frontier) bytes; `None`
    /// if nothing is parked for `fp`. The warm-state hand-off hook: a
    /// fleet layer ships these bytes to another node, which re-parks
    /// them after the usual snapshot validation.
    pub fn export_parked(&self, fp: QueryFingerprint) -> Option<Vec<u8>> {
        self.with_parked(fp, |opt| opt.export_frontier())
    }

    /// Number of admitted, not-yet-finished sessions — the load figure
    /// admission control and shard routing balance on.
    pub fn live_sessions(&self) -> usize {
        self.lock().live
    }

    /// The manager-wide resolution ladder (sessions may override it via
    /// [`SessionRequest`]).
    pub fn schedule(&self) -> &ResolutionSchedule {
        &self.schedule
    }

    /// Shared handle to the deployment-wide default cost model.
    pub fn model(&self) -> SharedCostModel {
        self.model.clone()
    }

    /// Effectiveness counters of the warm-frontier cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.lock().cache.stats()
    }

    /// Effectiveness counters of the shared enumeration-plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Effectiveness counters of the sub-frontier transplant cache.
    pub fn subfrontier_stats(&self) -> SubFrontierCacheStats {
        self.shared.subfrontiers.stats()
    }

    /// Shared handle to the sub-frontier cache, for constructing sibling
    /// managers (shards) that pool their harvested sub-frontiers via
    /// [`SessionManager::with_subfrontiers`].
    pub fn subfrontiers(&self) -> Arc<SubFrontierCache> {
        Arc::clone(&self.shared.subfrontiers)
    }

    /// True if the warm-frontier cache holds a rebase donor — a parked
    /// optimizer of the same shape under drifted cardinalities — for
    /// `key`. Does not count as a lookup (router warmth probe).
    pub fn has_rebase_donor(&self, key: RebaseKey) -> bool {
        self.lock().cache.has_rebase_donor(key)
    }

    /// Blocks until no session has runnable work and no worker holds one.
    /// Returns `false` on timeout.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.lock();
        loop {
            if state.queue.is_empty() && state.running == 0 {
                return true;
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, res) = self
                .shared
                .settled
                .wait_timeout(state, left)
                .expect("engine lock");
            state = guard;
            if res.timed_out() && !(state.queue.is_empty() && state.running == 0) {
                return false;
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, EngineState> {
        self.shared.state.lock().expect("engine lock poisoned")
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Notify while holding the state lock: a worker is either before
        // its shutdown check (sees the flag) or parked in `work.wait()`
        // (receives this wakeup) — never in between, which would lose the
        // notification and deadlock `join`.
        {
            let _guard = self.shared.state.lock().expect("engine lock poisoned");
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The terminal event published on retirement: empty delta (the frontier
/// did not change), the final outcome.
fn terminal_event(status: &SessionStatus) -> SessionEvent {
    SessionEvent {
        epoch: status.epoch + 1,
        delta: FrontierDelta::default(),
        resolution: status.resolution,
        bounds: status.bounds,
        invocations: status.invocations,
        report: None,
        first_report: None,
        outcome: status.outcome,
        coalesced: 0,
    }
}

/// Harvests every multi-table subset of a parking optimizer's state into
/// the sub-frontier cache, keyed by [`SubsetFingerprint`]. Singleton
/// subsets are skipped: re-enumerating scans is cheaper than a cache
/// round trip. Empty subsets export `None` and are skipped too.
fn harvest_subfrontiers(cache: &SubFrontierCache, optimizer: &IamaOptimizer) {
    let spec = optimizer.spec();
    let model = optimizer.model();
    for info in optimizer.enumeration().subsets() {
        let tables = info.tables;
        if tables.len() < 2 {
            continue;
        }
        if let Some(blob) = optimizer.export_subset(tables) {
            cache.insert(SubsetFingerprint::of(spec, tables, &*model), blob);
        }
    }
}

/// Puts `id` on the run queue unless it is already there.
fn enqueue(state: &mut EngineState, id: SessionId) {
    if let Some(slot) = state.slots.get_mut(&id) {
        if !slot.queued {
            slot.queued = true;
            state.queue.push_back(id);
        }
    }
}

fn worker_loop(shared: Arc<Shared>, cfg: EngineConfig) {
    let mut state = shared.state.lock().expect("engine lock poisoned");
    loop {
        // Find the next checked-in session with work.
        let (id, mut active) = loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            match state.queue.pop_front() {
                Some(id) => {
                    let Some(slot) = state.slots.get_mut(&id) else {
                        // Finished and removed meanwhile; the queue shrank,
                        // so idle-waiters must re-evaluate their predicate.
                        shared.settled.notify_all();
                        continue;
                    };
                    slot.queued = false;
                    match std::mem::replace(&mut slot.cell, Cell::Running) {
                        Cell::Idle(active) => break (id, active),
                        // Running entries do appear here: command()
                        // enqueues a mid-slice session so its new command
                        // is re-checked after check-in (which requeues it
                        // anyway, making this pop redundant). Retired
                        // sessions stay retired. Either way the entry is
                        // consumed without a check-in, so wake idle-waiters.
                        other => {
                            slot.cell = other;
                            shared.settled.notify_all();
                        }
                    }
                }
                None => {
                    state = shared.work.wait(state).expect("engine lock poisoned");
                }
            }
        };
        state.running += 1;
        drop(state);

        // --- Run one budgeted slice outside the lock. ---
        let slice_start = Instant::now();
        let mut ticks = 0usize;
        let mut outcome: Option<SessionOutcome> = None;
        let mut first_report: Option<InvocationReport> = None;
        let mut last_report: Option<InvocationReport> = None;
        let mut invocations = 0u64;
        // Per-invocation deltas compose into the slice's published delta
        // (their base is the frontier at slice start, which is exactly
        // the last published `status.frontier`).
        let mut slice_delta = FrontierDelta::default();
        while outcome.is_none() {
            let command = match active.inbox.pop_front() {
                Some(cmd) => {
                    if matches!(cmd, SessionCommand::SetBounds(_)) {
                        // A user refocusing their bounds re-arms the
                        // refinement budget (Algorithm 1 keeps iterating
                        // after bound changes).
                        active.remaining_ticks = active.auto_ticks;
                    }
                    cmd
                }
                None if active.remaining_ticks > 0 => {
                    active.remaining_ticks -= 1;
                    SessionCommand::Refine
                }
                None => break,
            };
            // A protocol fault on a live session (a dimension mismatch
            // that slipped past command() — impossible today, but
            // commands are data and workers must never die on data)
            // drops the command and keeps the session.
            if let Ok(event) = active.session.apply(command) {
                if let Some(report) = event.report {
                    invocations += 1;
                    if first_report.is_none() {
                        first_report = Some(report.clone());
                    }
                    last_report = Some(report);
                }
                if event.outcome.is_some() {
                    outcome = event.outcome;
                }
                slice_delta = slice_delta.then(&event.delta);
            }
            ticks += 1;
            if ticks >= cfg.ticks_per_slice.max(1) || slice_start.elapsed() >= cfg.slice_budget {
                break;
            }
        }

        // A session that just ended is about to park; harvest its
        // per-subset frontiers while the worker still owns it exclusively,
        // outside the state lock (blob encoding is real work).
        if outcome.is_some() {
            harvest_subfrontiers(&shared.subfrontiers, active.session.optimizer());
        }

        // --- Check the session back in. ---
        state = shared.state.lock().expect("engine lock poisoned");
        state.running -= 1;
        let st: &mut EngineState = &mut state;
        let mut requeue = false;
        let mut retire = false;
        let mut published = false;
        let mut park: Option<(QueryFingerprint, IamaOptimizer)> = None;
        match st.slots.get_mut(&id) {
            // finish() cannot remove a Running slot, so this is
            // unreachable; tolerate it anyway rather than poisoning the
            // pool.
            None => {}
            Some(slot) => {
                let status = &mut slot.status;
                status.invocations += invocations;
                status.resolution = active.session.resolution();
                status.bounds = *active.session.bounds();
                let covered_first = invocations > 0 && status.first_report.is_none();
                if covered_first {
                    status.first_report = first_report.clone();
                }
                if last_report.is_some() {
                    status.last_report = last_report.clone();
                }
                // The composed slice delta advances the published
                // snapshot in place — no full-frontier diff or clone.
                slice_delta.apply(&mut status.frontier);
                debug_assert!(
                    status.frontier.bits_eq(active.session.frontier()),
                    "slice delta diverged from the session frontier"
                );
                // Commands that arrived while the slice ran.
                active.inbox.append(&mut slot.late_inbox);
                if let Some(out) = outcome {
                    status.outcome = Some(out);
                    slot.cell = Cell::Retired;
                    retire = true;
                    park = Some((status.fingerprint, active.session.into_optimizer()));
                } else {
                    requeue = active.has_work();
                    slot.cell = Cell::Idle(active);
                }
                if invocations > 0 || retire {
                    let event = SessionEvent {
                        epoch: slot.status.epoch + 1,
                        delta: slice_delta,
                        resolution: slot.status.resolution,
                        bounds: slot.status.bounds,
                        invocations: slot.status.invocations,
                        report: last_report,
                        first_report: if covered_first { first_report } else { None },
                        outcome: slot.status.outcome,
                        coalesced: 0,
                    };
                    slot.publish(event);
                    published = true;
                }
                if retire {
                    // Final update delivered above; release the channels.
                    slot.watchers.clear();
                }
            }
        }
        if retire {
            st.live = st.live.saturating_sub(1);
        }
        if let Some((fp, optimizer)) = park {
            st.cache.put(fp, optimizer);
        }
        if retire {
            // Keep the final status queryable, but bound the history.
            st.retired.push_back(id);
            while st.retired.len() > cfg.retired_capacity.max(1) {
                if let Some(old) = st.retired.pop_front() {
                    st.slots.remove(&old);
                }
            }
        }
        if requeue {
            enqueue(st, id);
            shared.work.notify_one();
        }
        if published {
            fire_event_hook(&shared, id);
        }
        shared.settled.notify_all();
    }
}

/// Fires the installed [`EventHook`], if any (see its locking contract).
fn fire_event_hook(shared: &Shared, id: SessionId) {
    let hook = shared.event_hook.lock().expect("event hook lock").clone();
    if let Some(hook) = hook {
        hook(id);
    }
}
