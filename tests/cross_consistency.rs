//! Cross-algorithm consistency: the whole stack agrees with itself.

use moqo::baselines::{memoryless_series, single_objective_dp};
use moqo::core::{IamaOptimizer, Preference};
use moqo::cost::{Bounds, ResolutionSchedule};
use moqo::costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo::query::testkit;
use std::sync::Arc;

fn model() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    )
}

#[test]
fn weighted_frontier_minimum_matches_single_objective_dp() {
    // Selecting from IAMA's finest frontier with a linear preference must
    // come within the approximation guarantee of the true scalar optimum
    // (computed by the classical single-objective DP).
    let spec = testkit::chain_query(4, 120_000);
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.02, 0.4);
    let weights = [1.0, 0.5, 100.0];

    let scalar = single_objective_dp(&spec, &model, &weights);
    let optimum = scalar.best.expect("scalar plan exists").1;

    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    let b = Bounds::unbounded(model.dim());
    for r in 0..=schedule.r_max() {
        opt.optimize(&b, r);
    }
    let frontier = opt.frontier(&b, schedule.r_max());
    let pick = Preference::WeightedSum(weights.to_vec())
        .select(&frontier, &b)
        .expect("well-formed preference")
        .expect("frontier non-empty");
    let picked_score: f64 = pick
        .cost
        .as_slice()
        .iter()
        .zip(&weights)
        .map(|(c, w)| c * w)
        .sum();
    // A linear score of an alpha^n-covered frontier is within alpha^n of
    // the optimum (linearity preserves the factor).
    let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
    assert!(
        picked_score <= optimum * guarantee + 1e-9,
        "weighted pick {picked_score} exceeds {guarantee} x optimum {optimum}"
    );
    assert!(
        picked_score >= optimum - 1e-9,
        "weighted pick beats the true optimum?!"
    );
}

#[test]
fn memoryless_and_iama_agree_level_by_level() {
    // "The memoryless algorithm produces the same sequence of result plan
    // sets as the incremental anytime algorithm" — exact set equality is
    // insertion-order dependent, but at every level the two frontiers
    // must mutually cover within that level's guarantee (both are
    // alpha_r^n-approximate Pareto sets), and their sizes stay close.
    let spec = testkit::star_query(4, 250_000);
    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    let b = Bounds::unbounded(model.dim());
    let mem = memoryless_series(&spec, &model, &schedule, &b);
    let mut opt = IamaOptimizer::new(
        Arc::new(spec.clone()),
        Arc::new(model.clone()),
        schedule.clone(),
    );
    for (r, mem_out) in mem.iter().enumerate() {
        opt.optimize(&b, r);
        let iama = opt.frontier(&b, r).costs();
        let mem_costs = mem_out.frontier_costs();
        let guarantee = schedule.guarantee(r, spec.n_tables());
        let a = moqo::cost::coverage_factor(&iama, &mem_costs);
        let m = moqo::cost::coverage_factor(&mem_costs, &iama);
        assert!(
            a <= guarantee + 1e-9 && m <= guarantee + 1e-9,
            "level {r}: frontiers diverge ({a} / {m} vs {guarantee})"
        );
        // Sizes track each other within a factor of two.
        let (big, small) = (
            iama.len().max(mem_costs.len()),
            iama.len().min(mem_costs.len()),
        );
        assert!(
            small * 2 >= big,
            "level {r}: sizes diverge ({} vs {})",
            iama.len(),
            mem_costs.len()
        );
    }
}

#[test]
fn metric_subsets_agree_on_shared_extremes() {
    // Optimizing with 2 metrics (time, cores) and with 3 (adding error)
    // must find the same minimum achievable time: extra metrics never
    // remove plans from the space.
    let spec = testkit::chain_query(3, 200_000);
    let config = StandardCostModelConfig {
        dops: vec![1, 4],
        sampling_rates_pm: vec![500],
        eval_spin: 0,
        ..StandardCostModelConfig::default()
    };
    let m2 = StandardCostModel::new(
        MetricSet::new(vec![
            moqo::costmodel::Metric::Time,
            moqo::costmodel::Metric::Cores,
        ]),
        config.clone(),
    );
    let m3 = StandardCostModel::new(MetricSet::paper(), config);
    let schedule = ResolutionSchedule::linear(4, 1.01, 0.3);
    let min_time = |model: &StandardCostModel| -> f64 {
        let mut opt = IamaOptimizer::new(
            Arc::new(spec.clone()),
            Arc::new(model.clone()),
            schedule.clone(),
        );
        let b = Bounds::unbounded(model.dim());
        for r in 0..=schedule.r_max() {
            opt.optimize(&b, r);
        }
        opt.frontier(&b, schedule.r_max())
            .min_by_metric(0)
            .unwrap()
            .cost[0]
    };
    let t2 = min_time(&m2);
    let t3 = min_time(&m3);
    // Identical plan spaces; pruning factors may blur the shared extreme
    // by at most the guarantee.
    let guarantee = schedule.guarantee(schedule.r_max(), spec.n_tables());
    assert!(
        (t2 - t3).abs() <= t2.min(t3) * (guarantee - 1.0) + 1e-9,
        "min-time mismatch: {t2} (2 metrics) vs {t3} (3 metrics)"
    );
}
