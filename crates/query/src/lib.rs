//! Query model: join graphs, table sets, and selectivity estimation.
//!
//! The paper models a query as a set `Q` of tables to be joined (Section 3)
//! and sketches in Section 4.3 how predicates and richer SQL are handled by
//! decomposition into select-project-join blocks. This crate provides:
//!
//! * [`TableSet`] — a 64-bit bitset over the query's table positions with
//!   the subset/split enumeration the DP needs;
//! * [`JoinGraph`] — join edges with selectivities plus per-table filter
//!   selectivities (local predicates applied as early as possible);
//! * [`QuerySpec`] — a query bound to a catalog, with cardinality
//!   estimation for arbitrary table subsets;
//! * [`enumeration`] — the precomputed enumeration plane: connected
//!   subsets by cardinality with their valid ordered splits and a dense
//!   `TableSet → SubsetId` rank, built once per join-graph *shape*
//!   ([`ShapeKey`]) and shared across structurally similar queries;
//! * [`testkit`] — synthetic query generators (chain, star, cycle,
//!   clique, random) used in tests, examples, and benchmarks.

#![warn(missing_docs)]

pub mod enumeration;
pub mod graph;
pub mod spec;
pub mod tableset;
pub mod testkit;

pub use enumeration::{EnumerationPlan, ShapeKey, Split, SubsetId, SubsetInfo};
pub use graph::{JoinEdge, JoinGraph};
pub use spec::QuerySpec;
pub use tableset::{k_subsets, SplitIter, SubsetIter, TableSet};
