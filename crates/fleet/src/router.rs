//! The fleet router: health probes, death detection, and warm-state
//! rebalancing over the shared placement table.

use crate::client::SharedPlacement;
use moqo_engine::QueryFingerprint;
use moqo_serve::NetClient;
use moqo_wire::{check_hello, client_hello, NetError, HELLO_LEN};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One node's probe outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeHealth {
    /// The probed node.
    pub id: String,
    /// True when the node accepted a connection and answered the
    /// `MOQOWIRE` handshake within the probe timeout.
    pub alive: bool,
}

/// What a planned [`FleetRouter::rebalance`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rebalance {
    /// The frontier was pulled off the old home, pushed to (and
    /// validated by) the new home, and the key pinned there.
    Moved {
        /// Node the warm state left.
        from: String,
        /// Node that now owns the key.
        to: String,
        /// Size of the shipped `export_frontier` blob.
        bytes: usize,
    },
    /// The old home had nothing parked for the key; the pin was still
    /// set (the new home starts cold, or adopts from the shared store on
    /// first pull).
    ColdMove {
        /// Node that now owns the key.
        to: String,
    },
}

/// The thin router process: it owns mutations of the [`SharedPlacement`]
/// (marking dead nodes, pinning rebalanced keys) and ships warm state
/// between nodes over their control endpoints. It holds **no** optimizer
/// state itself — every frontier it moves is self-validating
/// `export_frontier` bytes that the receiving node re-validates at
/// admission.
pub struct FleetRouter {
    placement: SharedPlacement,
    /// Per-node connect budget of a health probe.
    pub probe_timeout: Duration,
    /// Per-request budget of control pulls/pushes during rebalance.
    pub control_timeout: Duration,
}

impl FleetRouter {
    /// A router over the fleet's shared placement.
    pub fn new(placement: SharedPlacement) -> Self {
        Self {
            placement,
            probe_timeout: Duration::from_millis(500),
            control_timeout: Duration::from_secs(60),
        }
    }

    /// The shared placement table.
    pub fn placement(&self) -> &SharedPlacement {
        &self.placement
    }

    /// Probes `addr`: TCP connect within the timeout plus a full
    /// `MOQOWIRE` hello exchange — a port that accepts but speaks
    /// something else is as dead as a refused connection.
    fn probe_addr(&self, addr: &str) -> bool {
        let Some(sock_addr) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
            return false;
        };
        let Ok(mut stream) = TcpStream::connect_timeout(&sock_addr, self.probe_timeout) else {
            return false;
        };
        let _ = stream.set_read_timeout(Some(self.probe_timeout));
        let _ = stream.set_write_timeout(Some(self.probe_timeout));
        if stream.write_all(&client_hello()).is_err() {
            return false;
        }
        let mut hello = [0u8; HELLO_LEN];
        if stream.read_exact(&mut hello).is_err() {
            return false;
        }
        check_hello(&hello).is_ok()
    }

    /// Probes every non-dead node and marks the unreachable ones dead in
    /// the shared placement — after this returns, every key a dead node
    /// owned resolves to its surviving runner-up. Returns each probed
    /// node's health.
    pub fn probe(&self) -> Vec<NodeHealth> {
        let targets: Vec<(String, String)> = {
            let placement = self.placement.read().expect("placement poisoned");
            placement
                .live_nodes()
                .map(|n| (n.id.clone(), n.addr.clone()))
                .collect()
        };
        let mut health = Vec::with_capacity(targets.len());
        for (id, addr) in targets {
            let alive = self.probe_addr(&addr);
            if !alive {
                self.placement
                    .write()
                    .expect("placement poisoned")
                    .mark_dead(&id);
            }
            health.push(NodeHealth { id, alive });
        }
        health
    }

    /// Planned hand-off: pulls the warm frontier for `fp` off its
    /// current home, pushes it to node `to` (which re-validates it like
    /// a snapshot restore), and pins the key there. The pulled bytes
    /// stay parked on the old home too — placement decides who serves,
    /// duplicates are harmless.
    pub fn rebalance(&self, fp: QueryFingerprint, to: &str) -> Result<Rebalance, NetError> {
        let (from, from_addr, to_addr) = {
            let placement = self.placement.read().expect("placement poisoned");
            let target = placement
                .node(to)
                .filter(|n| !n.dead)
                .ok_or(NetError::Disconnected)?;
            match placement.home_of(fp) {
                Some(home) if home.id != target.id => {
                    (home.id.clone(), home.addr.clone(), target.addr.clone())
                }
                // Already home (or no home at all): nothing to ship.
                _ => (String::new(), String::new(), target.addr.clone()),
            }
        };
        let blob = if from.is_empty() {
            None
        } else {
            let mut control = NetClient::connect(&from_addr)?;
            control.pull_frontier(fp.as_u64(), self.control_timeout)?
        };
        let result = match blob {
            Some(blob) => {
                let bytes = blob.len();
                let mut control = NetClient::connect(&to_addr)?;
                let admitted = control.push_frontier(blob, self.control_timeout)?;
                if admitted != Some(fp.as_u64()) {
                    // The new home refused the bytes (or decoded them to
                    // a different fingerprint): do NOT pin — routing to
                    // a cold node on purpose needs a validated frontier.
                    return Err(NetError::UnexpectedFrame("push refused by the new home"));
                }
                Rebalance::Moved {
                    from,
                    to: to.to_string(),
                    bytes,
                }
            }
            None => Rebalance::ColdMove { to: to.to_string() },
        };
        self.placement
            .write()
            .expect("placement poisoned")
            .set_override(fp, to);
        Ok(result)
    }

    /// Adopt-after-death: asks `fp`'s **current** home to pull the
    /// frontier up — from its own cache or, for a key just inherited
    /// from a dead node, from the shared snapshot store (re-parking it).
    /// Returns the blob when the new home is warm, `None` when the key
    /// starts cold (nothing ever persisted).
    pub fn adopt(&self, fp: QueryFingerprint) -> Result<Option<Vec<u8>>, NetError> {
        let addr = {
            let placement = self.placement.read().expect("placement poisoned");
            match placement.home_of(fp) {
                Some(n) => n.addr.clone(),
                None => return Err(NetError::Disconnected),
            }
        };
        let mut control = NetClient::connect(&addr)?;
        control.pull_frontier(fp.as_u64(), self.control_timeout)
    }
}
