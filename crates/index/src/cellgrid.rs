//! Logarithmically partitioned cell grid.
//!
//! The paper suggests (Section 5.3, footnote 3) partitioning the cost space
//! into cells with *logarithmic* boundaries — the region a result plan
//! approximately dominates is its cost vector scaled by a constant factor,
//! so log-partitioning distributes plans more uniformly over cells.
//!
//! A cost vector `c` maps to the cell coordinate `floor(log2(1 + c_i))`
//! per metric. For a range query `[0, b]` the bound's coordinates split
//! the cells into three classes:
//!
//! * coordinate `< coord(b_i)` on every metric → the whole cell lies
//!   inside the range: its entries are accepted without per-entry checks;
//! * coordinate `> coord(b_i)` on some metric → the whole cell lies
//!   outside: rejected in `O(1)`;
//! * otherwise the cell straddles the boundary and entries are checked
//!   individually.
//!
//! Cells are kept in a hash map per resolution level, so insertion is
//! `O(1)` and queries only touch non-empty cells.
//!
//! Each cell stores its entries in struct-of-arrays layout ([`SoaCell`]):
//! one contiguous `f64` lane per metric plus parallel payload columns.
//! Range drains, batched scans, and the pruning witness search
//! ([`PlanIndex::dominance_scan`]) run the lane kernels of
//! [`moqo_cost::lanes`] over whole 64-row blocks — branch-light,
//! auto-vectorizable, and bit-exact with the scalar visitor protocol,
//! which remains available (and identical in visit order) through
//! [`PlanIndex::scan`].

use crate::entry::Entry;
use crate::fxhash::FxHashMap;
use crate::soa::SoaCell;
use crate::{DominanceScan, EntryBatch, PlanIndex};
use moqo_cost::{lanes, Bounds, CostVector, MAX_DIM};

/// Cell coordinates: one log-bucket index per metric.
type CellKey = [u8; MAX_DIM];

const COORD_INF: u8 = u8::MAX;

#[inline]
fn coord(v: f64) -> u8 {
    if v.is_infinite() {
        return COORD_INF;
    }
    debug_assert!(v >= 0.0);
    // floor(log2(1 + v)), read directly off the IEEE-754 exponent field:
    // x = 1 + v >= 1.0 is always a normal number, so its unbiased
    // exponent e satisfies 2^e <= x < 2^(e+1) *exactly* — unlike
    // x.log2().floor(), which rounds 50 - epsilon up to 50.0 for x just
    // below a power of two and mis-buckets it.
    let x = 1.0 + v;
    let e = ((x.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    e.clamp(0, (COORD_INF - 1) as i64) as u8
}

#[inline]
fn cell_key(c: &CostVector) -> CellKey {
    let mut key = [0u8; MAX_DIM];
    for (i, slot) in key.iter_mut().enumerate().take(c.dim()) {
        *slot = coord(c[i]);
    }
    key
}

/// Relationship of a cell to a query range.
#[derive(PartialEq, Eq, Debug, Clone, Copy)]
enum CellClass {
    Inside,
    Straddles,
    Outside,
}

#[inline]
fn classify(cell: &CellKey, bound: &CellKey, dim: usize) -> CellClass {
    let mut straddles = false;
    for i in 0..dim {
        if cell[i] > bound[i] {
            return CellClass::Outside;
        }
        if cell[i] == bound[i] && bound[i] != COORD_INF {
            straddles = true;
        }
    }
    if straddles {
        CellClass::Straddles
    } else {
        CellClass::Inside
    }
}

/// A [`PlanIndex`] backed by a logarithmic cell grid per resolution level,
/// with struct-of-arrays cell storage.
#[derive(Clone, Debug)]
pub struct CellGrid<T: Copy> {
    dim: usize,
    levels: Vec<FxHashMap<CellKey, SoaCell<T>>>,
    len: usize,
}

impl<T: Copy> CellGrid<T> {
    /// Creates an empty grid for `dim` metrics.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0 && dim <= MAX_DIM);
        Self {
            dim,
            levels: Vec::new(),
            len: 0,
        }
    }

    /// Number of non-empty cells (diagnostics / ablation reporting).
    pub fn cell_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Debug-build invariants: the cached `len` matches the sum of cell
    /// row counts, and no empty cell is retained in any level map (an
    /// empty cell would distort `cell_count` and waste classify work).
    #[cfg(debug_assertions)]
    fn check_consistency(&self) {
        let total: usize = self
            .levels
            .iter()
            .flat_map(|l| l.values())
            .map(|c| c.len())
            .sum();
        debug_assert_eq!(
            total, self.len,
            "cell grid len cache diverged from cell contents"
        );
        debug_assert!(
            self.levels
                .iter()
                .all(|l| l.values().all(|c| !c.is_empty())),
            "cell grid retained an empty cell"
        );
    }
}

impl<T: Copy> PlanIndex<T> for CellGrid<T> {
    fn insert(&mut self, entry: Entry<T>) {
        debug_assert_eq!(entry.cost.dim(), self.dim);
        let level = entry.level as usize;
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, FxHashMap::default);
        }
        let key = cell_key(&entry.cost);
        self.levels[level].entry(key).or_default().push(&entry);
        self.len += 1;
        #[cfg(debug_assertions)]
        self.check_consistency();
    }

    fn scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        visitor: &mut dyn FnMut(&Entry<T>) -> bool,
    ) -> bool {
        let bound_key = cell_key(bounds.limits());
        for level in self.levels.iter().take(max_level as usize + 1) {
            for (key, cell) in level {
                match classify(key, &bound_key, self.dim) {
                    CellClass::Outside => continue,
                    CellClass::Inside => {
                        for i in 0..cell.len() {
                            if visitor(&cell.entry(i, self.dim)) {
                                return true;
                            }
                        }
                    }
                    CellClass::Straddles => {
                        for i in 0..cell.len() {
                            let e = cell.entry(i, self.dim);
                            if bounds.respects(&e.cost) && visitor(&e) {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }

    fn drain(&mut self, bounds: &Bounds, max_level: u8) -> Vec<Entry<T>> {
        let bound_key = cell_key(bounds.limits());
        let dim = self.dim;
        let mut out = Vec::new();
        for level in self.levels.iter_mut().take(max_level as usize + 1) {
            level.retain(|key, cell| match classify(key, &bound_key, dim) {
                CellClass::Outside => true,
                CellClass::Inside => {
                    cell.drain_all_into(dim, &mut out);
                    false
                }
                CellClass::Straddles => {
                    cell.drain_respecting_into(dim, bounds, &mut out);
                    !cell.is_empty()
                }
            });
        }
        self.len -= out.len();
        #[cfg(debug_assertions)]
        self.check_consistency();
        out
    }

    fn len(&self) -> usize {
        self.len
    }

    fn scan_batch(
        &self,
        bounds: &Bounds,
        max_level: u8,
        consumer: &mut dyn FnMut(&EntryBatch<'_, T>) -> bool,
    ) -> bool {
        let bound_key = cell_key(bounds.limits());
        for level in self.levels.iter().take(max_level as usize + 1) {
            for (key, cell) in level {
                let class = classify(key, &bound_key, self.dim);
                if class == CellClass::Outside {
                    continue;
                }
                let cols = cell.lane_slices();
                let n = cell.len();
                let mut start = 0usize;
                while start < n {
                    let blk = (n - start).min(lanes::BLOCK);
                    let mask = if class == CellClass::Inside {
                        lanes::full_mask(blk)
                    } else {
                        bounds.respects_lanes(&cols[..self.dim], start, blk)
                    };
                    if mask != 0 {
                        let end = start + blk;
                        let batch = EntryBatch {
                            items: &cell.items()[start..end],
                            levels: &cell.levels()[start..end],
                            invocations: &cell.invocations()[start..end],
                            lanes: std::array::from_fn(|m| {
                                if m < self.dim {
                                    &cols[m][start..end]
                                } else {
                                    &[][..]
                                }
                            }),
                            dim: self.dim,
                            mask,
                        };
                        if consumer(&batch) {
                            return true;
                        }
                    }
                    start += blk;
                }
            }
        }
        false
    }

    fn dominance_scan(
        &self,
        bounds: &Bounds,
        max_level: u8,
        target: &CostVector,
        threshold: f64,
        accept: &mut dyn FnMut(T) -> bool,
    ) -> DominanceScan {
        let bound_key = cell_key(bounds.limits());
        let tgt = target.as_slice();
        let mut best_factor = f64::INFINITY;
        let mut comparisons = 0u64;
        let mut factors = [0.0f64; lanes::BLOCK];
        for level in self.levels.iter().take(max_level as usize + 1) {
            for (key, cell) in level {
                let class = classify(key, &bound_key, self.dim);
                if class == CellClass::Outside {
                    continue;
                }
                let cols = cell.lane_slices();
                let cols = &cols[..self.dim];
                let n = cell.len();
                let mut start = 0usize;
                // Sub-block granularity: the factor kernel is division
                // heavy and the scan usually exits early (witness found
                // within a handful of rows), so charging 64 rows at a
                // time wastes most of the block. 16 rows keep the lanes
                // full (4 chunks) while bounding the overshoot past an
                // early exit. Granularity is decision-neutral: factors
                // are per-row pure and rows are still consumed in the
                // exact scalar order.
                const SUB: usize = 16;
                while start < n {
                    let blk = (n - start).min(SUB);
                    let mask = if class == CellClass::Inside {
                        lanes::full_mask(blk)
                    } else {
                        bounds.respects_lanes(cols, start, blk)
                    };
                    if mask != 0 {
                        comparisons += u64::from(mask.count_ones());
                        lanes::domination_factor_lanes(cols, tgt, start, blk, &mut factors);
                        // Rows are consumed in ascending order — the same
                        // order the scalar visitor sees them — so early
                        // exits fire at the identical entry with the
                        // identical running minimum.
                        let mut bits = mask;
                        while bits != 0 {
                            let j = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let f = factors[j];
                            // Skipping `accept` for non-improving rows
                            // cannot change the minimum: `accept` is pure.
                            if f < best_factor && accept(cell.item(start + j)) {
                                best_factor = f;
                                if best_factor <= threshold {
                                    return DominanceScan {
                                        best_factor,
                                        comparisons,
                                    };
                                }
                            }
                        }
                    }
                    start += blk;
                }
            }
        }
        DominanceScan {
            best_factor,
            comparisons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_is_logarithmic() {
        assert_eq!(coord(0.0), 0);
        assert_eq!(coord(0.9), 0);
        assert_eq!(coord(1.0), 1);
        assert_eq!(coord(2.9), 1);
        assert_eq!(coord(3.0), 2);
        assert_eq!(coord(7.1), 3);
        assert_eq!(coord(f64::INFINITY), COORD_INF);
        // Huge but finite values clamp below the infinity sentinel.
        assert_eq!(coord(f64::MAX), COORD_INF - 1);
    }

    #[test]
    fn coord_is_the_exact_exponent_over_a_value_sweep() {
        // The exponent-extraction coord must satisfy the defining
        // inequality 2^e <= 1 + v < 2^(e+1) exactly (below the clamp),
        // including for the values the old log2().floor() got wrong.
        let sweep: Vec<f64> = vec![
            0.0,
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::MIN_POSITIVE,
            1e-300,
            0.5,
            0.999_999_999,
            1.0,
            2.9,
            3.0,
            // Just below a power of two: 1 + v is the largest f64 < 2^50.
            // log2().floor() rounds its logarithm up to 50.0 and
            // mis-buckets; the exponent field cannot.
            f64::from_bits(((1u64 << 50) as f64).to_bits() - 1) - 1.0,
            (1u64 << 50) as f64 - 1.0,
            (1u64 << 50) as f64,
            1e300,
            f64::MAX,
        ];
        for &v in &sweep {
            let e = coord(v);
            assert!(e < COORD_INF, "finite value hit the infinity sentinel");
            let lo = 2f64.powi(e as i32);
            assert!(lo <= 1.0 + v, "coord({v}) = {e}: 2^e > 1 + v");
            if e < COORD_INF - 1 {
                let hi = 2f64.powi(e as i32 + 1);
                assert!(1.0 + v < hi, "coord({v}) = {e}: 1 + v >= 2^(e+1)");
            }
        }
        assert_eq!(coord(f64::INFINITY), COORD_INF);
    }

    #[test]
    fn classify_cells() {
        // dim 2, bound at coords [3, COORD_INF] (second metric unbounded).
        let bound = {
            let mut k = [0u8; MAX_DIM];
            k[0] = 3;
            k[1] = COORD_INF;
            k
        };
        let mk = |a: u8, b: u8| {
            let mut k = [0u8; MAX_DIM];
            k[0] = a;
            k[1] = b;
            k
        };
        assert_eq!(classify(&mk(2, 5), &bound, 2), CellClass::Inside);
        assert_eq!(classify(&mk(3, 5), &bound, 2), CellClass::Straddles);
        assert_eq!(classify(&mk(4, 0), &bound, 2), CellClass::Outside);
        // Unbounded metric never causes straddling.
        assert_eq!(
            classify(&mk(0, COORD_INF - 1), &bound, 2),
            CellClass::Inside
        );
    }

    #[test]
    fn insert_scan_drain_roundtrip() {
        let mut grid: CellGrid<u32> = CellGrid::new(2);
        for i in 0..20u32 {
            let c = CostVector::new(&[i as f64, (20 - i) as f64]);
            grid.insert(Entry::new(i, c, (i % 3) as u8, 0));
        }
        assert_eq!(PlanIndex::len(&grid), 20);
        assert!(grid.cell_count() > 1);

        // Unbounded query at max level sees everything.
        assert_eq!(grid.collect(&Bounds::unbounded(2), 2).len(), 20);
        // Level filter.
        let lvl0: Vec<u32> = grid
            .collect(&Bounds::unbounded(2), 0)
            .iter()
            .map(|e| e.item)
            .collect();
        assert!(lvl0.iter().all(|i| i % 3 == 0));

        // Bounds filter agrees with a manual check.
        let b = Bounds::from_slice(&[10.0, 15.0]);
        let got: std::collections::HashSet<u32> =
            grid.collect(&b, 2).iter().map(|e| e.item).collect();
        let expected: std::collections::HashSet<u32> = (0..20u32)
            .filter(|&i| (i as f64) <= 10.0 && ((20 - i) as f64) <= 15.0)
            .collect();
        assert_eq!(got, expected);

        // Drain removes exactly the matching entries.
        let drained = grid.drain(&b, 2);
        assert_eq!(drained.len(), expected.len());
        assert_eq!(PlanIndex::len(&grid), 20 - expected.len());
        assert!(grid.collect(&b, 2).is_empty());
    }

    #[test]
    fn drain_keeps_len_and_cells_consistent() {
        // Exercises the debug consistency assertion across a sequence of
        // straddling drains (partial-cell removal) and re-inserts, and
        // checks the observable counters agree with the contents.
        let mut grid: CellGrid<u32> = CellGrid::new(2);
        for i in 0..64u32 {
            let c = CostVector::new(&[(i % 16) as f64, (i / 4) as f64]);
            grid.insert(Entry::new(i, c, (i % 2) as u8, 0));
        }
        for limit in [3.0, 7.0, 11.0, 100.0] {
            let before = PlanIndex::len(&grid);
            let drained = grid.drain(&Bounds::from_slice(&[limit, limit]), 1);
            assert_eq!(PlanIndex::len(&grid), before - drained.len());
            let remaining = grid.collect(&Bounds::unbounded(2), 1);
            assert_eq!(remaining.len(), PlanIndex::len(&grid));
            // Re-insert half of the drained rows to churn the cells.
            for e in drained.iter().step_by(2) {
                grid.insert(*e);
            }
        }
        // Empty cells are never retained, so every cell contributes.
        assert!(grid.cell_count() <= PlanIndex::len(&grid));
    }

    #[test]
    fn scan_early_exit_counts_once() {
        let mut grid: CellGrid<u32> = CellGrid::new(1);
        for i in 0..50u32 {
            grid.insert(Entry::new(i, CostVector::new(&[i as f64]), 0, 0));
        }
        let mut seen = 0;
        let stopped = grid.scan(&Bounds::unbounded(1), 0, &mut |_| {
            seen += 1;
            true
        });
        assert!(stopped);
        assert_eq!(seen, 1);
    }

    #[test]
    fn scan_batch_visits_the_same_entries_as_scan() {
        let mut grid: CellGrid<u32> = CellGrid::new(2);
        for i in 0..150u32 {
            let c = CostVector::new(&[(i % 30) as f64 * 3.7, (i % 11) as f64 * 9.1]);
            grid.insert(Entry::new(i, c, (i % 3) as u8, i));
        }
        let b = Bounds::from_slice(&[60.0, 55.0]);
        let mut scalar = Vec::new();
        grid.scan(&b, 2, &mut |e| {
            scalar.push((e.item, e.level, e.invocation, e.cost));
            false
        });
        let mut batched = Vec::new();
        grid.scan_batch(&b, 2, &mut |batch| {
            for j in batch.selected() {
                batched.push((
                    batch.item(j),
                    batch.level(j),
                    batch.invocation(j),
                    batch.cost(j),
                ));
            }
            false
        });
        assert_eq!(scalar, batched);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::linear::LinearIndex;
    use proptest::prelude::*;

    proptest! {
        /// The cell grid agrees with the linear index on arbitrary
        /// workloads (same query results, same drain behaviour).
        #[test]
        fn grid_equivalent_to_linear(
            entries in proptest::collection::vec(
                ((0.0f64..1e5), (0.0f64..1e5), 0u8..4), 0..80),
            qb in (0.0f64..1.2e5, 0.0f64..1.2e5),
            qr in 0u8..4,
            unbounded in any::<bool>(),
        ) {
            let mut grid: CellGrid<u32> = CellGrid::new(2);
            let mut lin: LinearIndex<u32> = LinearIndex::new();
            for (i, (a, b, lvl)) in entries.iter().enumerate() {
                let e = Entry::new(i as u32, CostVector::new(&[*a, *b]), *lvl, 0);
                grid.insert(e);
                lin.insert(e);
            }
            let bounds = if unbounded {
                Bounds::unbounded(2)
            } else {
                Bounds::from_slice(&[qb.0, qb.1])
            };
            let norm = |mut v: Vec<Entry<u32>>| {
                v.sort_by_key(|e| e.item);
                v.iter().map(|e| e.item).collect::<Vec<_>>()
            };
            prop_assert_eq!(
                norm(grid.collect(&bounds, qr)),
                norm(lin.collect(&bounds, qr))
            );
            // Drain agreement and post-state agreement.
            let dg = norm(grid.drain(&bounds, qr));
            let dl = norm(lin.drain(&bounds, qr));
            prop_assert_eq!(dg, dl);
            prop_assert_eq!(PlanIndex::len(&grid), PlanIndex::len(&lin));
            let all = Bounds::unbounded(2);
            prop_assert_eq!(
                norm(grid.collect(&all, 4)),
                norm(lin.collect(&all, 4))
            );
        }
    }
}
