//! Offline drop-in subset of the `proptest` API.
//!
//! The workspace builds without a crates.io mirror, so this crate provides
//! the slice of `proptest` the test suites actually use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_filter` / `boxed`,
//! range and tuple and `Just` strategies, character-class string
//! strategies (`"[a-z]{1,5}"`), [`collection::vec`], weighted
//! [`prop_oneof!`], and the [`proptest!`] / `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Unlike upstream, failing cases are **not shrunk**: the failing
//! assertion panics with its message and the deterministic case number, so
//! a failure reproduces by rerunning the same test binary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::rc::Rc;

/// Deterministic per-case RNG handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for one named test case attempt; the same `(name, attempt)`
    /// pair always yields the same stream.
    pub fn deterministic(name: &str, attempt: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h ^ ((attempt as u64) << 1)))
    }

    fn f64(&mut self) -> f64 {
        self.0.gen_range(0.0..1.0)
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty choice in strategy");
        self.0.gen_range(0..n)
    }

    fn u64(&mut self) -> u64 {
        self.0.gen_range(0..u64::MAX)
    }
}

/// Why a generated case did not count as a passing case.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// `prop_assert*!` failed; abort the test.
    Fail(String),
}

/// Execution parameters of a [`proptest!`] block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of test values.
///
/// Combinator methods are `Self: Sized` so the trait stays object-safe for
/// [`BoxedStrategy`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds from it.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerating up to a retry cap).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Strategy producing one fixed value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "anything" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over every value of `T`; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()`, `any::<u8>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Weighted union of boxed strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            branches.iter().any(|(w, _)| *w > 0),
            "prop_oneof! needs a positive weight"
        );
        Self { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.branches.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.u64() % total;
        for (w, s) in &self.branches {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------------
// Character-class string strategies: `"[a-z][a-z0-9_]{0,6}"` etc.
// ---------------------------------------------------------------------------

struct PatternAtom {
    /// Inclusive character ranges to draw from.
    choices: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pat:?}"))
                    + i;
                let body = &chars[i + 1..close];
                i = close + 1;
                let mut out = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        out.push((body[j], body[j + 2]));
                        j += 3;
                    } else {
                        out.push((body[j], body[j]));
                        j += 1;
                    }
                }
                out
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pat:?}"));
                i += 2;
                vec![(c, c)]
            }
            c => {
                assert!(
                    !"(){}|*+?.^$".contains(c),
                    "unsupported regex syntax {c:?} in pattern {pat:?}"
                );
                i += 1;
                vec![(c, c)]
            }
        };
        // Optional {m} / {m,n} quantifier.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom { choices, min, max });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..count {
                let (lo, hi) = atom.choices[rng.below(atom.choices.len())];
                let span = hi as u32 - lo as u32 + 1;
                let c = char::from_u32(lo as u32 + (rng.u64() % span as u64) as u32)
                    .expect("invalid char range");
                out.push(c);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec()`]: exact or half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Strategy for vectors of `element` values; see [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_excl - self.size.min;
            let len = self.size.min + super::below_pub(rng, span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub fn below_pub(rng: &mut TestRng, n: usize) -> usize {
    rng.below(n)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests. Supports the upstream surface used here:
/// optional `#![proptest_config(...)]`, doc comments and `#[test]` on each
/// function, and `arg in strategy` parameter lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut accepted: u32 = 0;
                let mut attempt: u32 = 0;
                while accepted < cfg.cases {
                    attempt += 1;
                    assert!(
                        attempt <= cfg.cases.saturating_mul(20).saturating_add(1000),
                        "prop_assume! rejected too many cases"
                    );
                    let mut __rng = $crate::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempt,
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property failed at {} case #{attempt}: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts inside a property; failure aborts the whole test with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {:?} != {:?}",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_matches_class() {
        let mut rng = super::TestRng::deterministic("pattern", 1);
        for _ in 0..200 {
            let s = super::Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_range_pattern_works() {
        let mut rng = super::TestRng::deterministic("printable", 1);
        for _ in 0..100 {
            let s = super::Strategy::generate(&"[ -~]{0,80}", &mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_tuples_vecs_and_filters_compose(
            x in 0u32..100,
            pair in (0.0f64..1.0, any::<bool>()),
            v in crate::collection::vec(0u8..4, 1..6),
            even in (0u32..50).prop_filter("even", |n| n % 2 == 0),
            tagged in prop_oneof![2 => Just("a"), 1 => Just("b")],
        ) {
            prop_assert!(x < 100);
            prop_assert!((0.0..1.0).contains(&pair.0));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 4));
            prop_assert_eq!(even % 2, 0);
            prop_assert!(tagged == "a" || tagged == "b");
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert!(n != 3);
        }
    }
}
