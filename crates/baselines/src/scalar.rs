//! Classical single-objective dynamic programming (Selinger-style, bushy).
//!
//! Theorem 5 states that IAMA's amortized time over many invocations
//! matches "the time complexity of single-objective query optimization
//! with bushy plans" — this module provides that comparison point. Cost
//! vectors are collapsed to a scalar with a user-supplied weight vector;
//! per table set, one best plan per physical-property class survives.

use moqo_cost::CostVector;
use moqo_costmodel::{CostModel, PlanInput};
use moqo_index::FxHashMap;
use moqo_plan::{PhysicalProps, PlanArena, PlanId};
use moqo_query::{k_subsets, QuerySpec, TableSet};
use std::time::{Duration, Instant};

/// Result of a single-objective DP run.
pub struct ScalarOutcome {
    /// The arena holding every constructed plan.
    pub arena: PlanArena,
    /// The best complete plan, if any.
    pub best: Option<(PlanId, f64)>,
    /// Plans constructed.
    pub plans_generated: u64,
    /// Wall-clock time.
    pub duration: Duration,
}

#[derive(Clone, Copy)]
struct Best {
    plan: PlanId,
    cost: CostVector,
    scalar: f64,
    props: PhysicalProps,
}

#[inline]
fn scalarize(cost: &CostVector, weights: &[f64]) -> f64 {
    cost.as_slice()
        .iter()
        .zip(weights)
        .map(|(c, w)| c * w)
        .sum()
}

/// Keeps, per table set, the cheapest plan for each physical-property
/// class (an unordered plan plus one per interesting order).
fn keep_best(set: &mut Vec<Best>, new: Best) {
    for e in set.iter_mut() {
        if e.props == new.props {
            if new.scalar < e.scalar {
                *e = new;
            }
            return;
        }
    }
    set.push(new);
}

/// Single-objective bushy DP minimizing `weights · cost`.
///
/// # Panics
/// Panics if `weights.len() != model.dim()` or all weights are zero.
pub fn single_objective_dp<M: CostModel>(
    spec: &QuerySpec,
    model: &M,
    weights: &[f64],
) -> ScalarOutcome {
    assert_eq!(weights.len(), model.dim(), "weight dimension mismatch");
    assert!(
        weights.iter().any(|w| *w > 0.0),
        "at least one weight must be positive"
    );
    let start = Instant::now();
    let n = spec.n_tables();
    let mut arena = PlanArena::new();
    let mut sets: FxHashMap<TableSet, Vec<Best>> = FxHashMap::default();
    let mut plans_generated = 0u64;

    for pos in 0..n {
        let q = TableSet::singleton(pos);
        for (op, cost, props) in model.scan_alternatives(spec, pos) {
            let pid = arena.push_scan(op, pos, cost, props);
            plans_generated += 1;
            keep_best(
                sets.entry(q).or_default(),
                Best {
                    plan: pid,
                    cost,
                    scalar: scalarize(&cost, weights),
                    props,
                },
            );
        }
    }

    for k in 2..=n {
        for q in k_subsets(n, k) {
            for (q1, q2) in q.splits() {
                for (a, b) in [(q1, q2), (q2, q1)] {
                    if spec.is_cross_product(a, b) {
                        continue;
                    }
                    let (p1s, p2s) = match (sets.get(&a), sets.get(&b)) {
                        (Some(x), Some(y)) if !x.is_empty() && !y.is_empty() => {
                            (x.clone(), y.clone())
                        }
                        _ => continue,
                    };
                    for e1 in &p1s {
                        for e2 in &p2s {
                            let left = PlanInput {
                                tables: a,
                                cost: e1.cost,
                                props: e1.props,
                            };
                            let right = PlanInput {
                                tables: b,
                                cost: e2.cost,
                                props: e2.props,
                            };
                            for (op, cost, props) in model.join_alternatives(spec, &left, &right) {
                                let pid = arena.push_join(op, e1.plan, e2.plan, cost, props);
                                plans_generated += 1;
                                keep_best(
                                    sets.entry(q).or_default(),
                                    Best {
                                        plan: pid,
                                        cost,
                                        scalar: scalarize(&cost, weights),
                                        props,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    let best = sets
        .get(&spec.all_tables())
        .and_then(|s| {
            s.iter()
                .min_by(|a, b| a.scalar.partial_cmp(&b.scalar).unwrap())
        })
        .map(|b| (b.plan, b.scalar));
    ScalarOutcome {
        arena,
        best,
        plans_generated,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::exhaustive_pareto;
    use moqo_cost::Bounds;
    use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};
    use moqo_query::testkit;

    fn small_model() -> StandardCostModel {
        StandardCostModel::new(
            MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 4],
                sampling_rates_pm: vec![100, 500],
                ..StandardCostModelConfig::default()
            },
        )
    }

    #[test]
    fn finds_a_complete_plan() {
        let spec = testkit::chain_query(4, 100_000);
        let model = small_model();
        let out = single_objective_dp(&spec, &model, &[1.0, 0.0, 0.0]);
        let (plan, scalar) = out.best.expect("no plan found");
        assert!(scalar > 0.0);
        assert_eq!(out.arena.tables(plan), spec.all_tables());
    }

    #[test]
    fn scalar_optimum_matches_exhaustive_frontier_minimum() {
        // The weighted optimum over the exact Pareto frontier equals the
        // single-objective DP optimum (for monotone linear weights).
        let spec = testkit::chain_query(3, 100_000);
        let model = small_model();
        let weights = [1.0, 0.1, 5.0];
        let scalar_out = single_objective_dp(&spec, &model, &weights);
        let exact = exhaustive_pareto(&spec, &model, &Bounds::unbounded(3));
        let frontier_min = exact
            .frontier
            .iter()
            .map(|(_, c)| scalarize(c, &weights))
            .fold(f64::INFINITY, f64::min);
        let dp_min = scalar_out.best.unwrap().1;
        assert!(
            (dp_min - frontier_min).abs() / frontier_min < 1e-9,
            "scalar DP {dp_min} vs frontier minimum {frontier_min}"
        );
    }

    #[test]
    fn generates_far_fewer_plans_than_exhaustive() {
        let spec = testkit::chain_query(4, 100_000);
        let model = small_model();
        let scalar_out = single_objective_dp(&spec, &model, &[1.0, 1.0, 1.0]);
        let exact = exhaustive_pareto(&spec, &model, &Bounds::unbounded(3));
        assert!(scalar_out.plans_generated < exact.plans_generated);
    }

    #[test]
    #[should_panic(expected = "weight dimension")]
    fn rejects_wrong_weight_dimension() {
        let spec = testkit::chain_query(2, 1000);
        let model = small_model();
        single_objective_dp(&spec, &model, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_all_zero_weights() {
        let spec = testkit::chain_query(2, 1000);
        let model = small_model();
        single_objective_dp(&spec, &model, &[0.0, 0.0, 0.0]);
    }
}
