//! The shared enumeration-plan cache.
//!
//! An [`EnumerationPlan`] depends only on a query's join-graph *shape*
//! (which table pairs are joined) and the cross-product policy — not on
//! statistics, selectivities, or names. That makes it far more shareable
//! than a parked frontier: the [`crate::FrontierCache`] requires an
//! *equivalent* query (same shape **and** same statistics and metrics),
//! while the plan cache serves every *structurally similar* query — the
//! same dashboard template against refreshed statistics, the same TPC-H
//! shape at another scale factor, or two users exploring differently
//! filtered variants of one report.
//!
//! This is the first step of cross-session sharing for similar (not
//! identical) queries: all concurrent sessions over one shape walk a
//! single immutable `Arc<EnumerationPlan>`, so the `O(3^n)`-worst-case
//! subset/split construction is paid once per shape per process instead
//! of once per session.

use moqo_index::FxHashMap;
use moqo_query::{EnumerationPlan, JoinGraph, ShapeKey};
use std::sync::{Arc, Mutex};

/// Counters describing plan-cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served by an existing shared plan.
    pub hits: u64,
    /// Lookups that had to build a new plan.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// Concurrent cache of [`EnumerationPlan`]s keyed by [`ShapeKey`] — the
/// shape component of the engine's `QueryFingerprint`.
///
/// Plans are immutable and shared by `Arc`, so a hit is a clone of a
/// pointer; entries are never evicted (a plan is small relative to the
/// optimizer state it serves, and the number of distinct shapes in a
/// workload is bounded by its templates, not its queries).
#[derive(Default)]
pub struct PlanCache {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    map: FxHashMap<ShapeKey, Arc<EnumerationPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared plan for the graph's shape, building (and
    /// caching) it on first sight.
    pub fn get_or_build(
        &self,
        graph: &JoinGraph,
        allow_cross_products: bool,
    ) -> Arc<EnumerationPlan> {
        let key = ShapeKey::of(graph, allow_cross_products);
        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            if let Some(plan) = inner.map.get(&key).map(Arc::clone) {
                // Structural backstop: a 64-bit key collision between two
                // distinct shapes must not serve the wrong plan. Fall
                // through and build a private (uncached) plan instead.
                if plan.matches(graph, allow_cross_products) {
                    inner.hits += 1;
                    return plan;
                }
            }
        }
        // Build outside the lock: plan construction is `O(3^n)` in the
        // worst case and must not serialize unrelated submissions. Two
        // racing builders of one shape both succeed; the first insert
        // wins and the loser's plan is dropped.
        let plan = Arc::new(EnumerationPlan::build(graph, allow_cross_products));
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.misses += 1;
        let cached = inner.map.entry(key).or_insert_with(|| Arc::clone(&plan));
        if cached.matches(graph, allow_cross_products) {
            Arc::clone(cached)
        } else {
            // Key collision with a different shape already in the slot:
            // leave the cache alone and serve this query a private plan.
            plan
        }
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock().expect("plan cache poisoned");
        PlanCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_query::testkit;

    #[test]
    fn similar_shapes_share_one_plan() {
        let cache = PlanCache::new();
        // Same shape, different statistics: one build, one pointer.
        let a = testkit::chain_query(4, 100_000);
        let b = testkit::chain_query(4, 777);
        let pa = cache.get_or_build(&a.graph, false);
        let pb = cache.get_or_build(&b.graph, false);
        assert!(Arc::ptr_eq(&pa, &pb));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_shapes_and_policies_get_distinct_plans() {
        let cache = PlanCache::new();
        let chain = testkit::chain_query(4, 1000);
        let star = testkit::star_query(4, 1000);
        let p1 = cache.get_or_build(&chain.graph, false);
        let p2 = cache.get_or_build(&star.graph, false);
        let p3 = cache.get_or_build(&chain.graph, true);
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.stats().entries, 3);
    }
}
