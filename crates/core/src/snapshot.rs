//! Versioned export/import of the optimizer's warm state.
//!
//! A parked optimizer is the product of the whole incremental machinery:
//! the plan arena, the per-subset result and candidate sets, the
//! append-only active lists with their positional watermark rectangles,
//! and the `IsFresh` fallback. Losing it on process restart means the
//! first user of a known query pays for plan generation from resolution 0
//! again — exactly what the paper's incrementality exists to avoid.
//!
//! [`IamaOptimizer::export_frontier`] serializes everything the optimizer
//! needs to resume *bit-equivalently* — including the query spec and the
//! trimmed catalog statistics it was costed against — into a versioned,
//! self-describing byte buffer; [`IamaOptimizer::import_frontier`]
//! rebuilds the optimizer from that buffer and a live cost model. After a
//! round trip, a repeat invocation behaves like a repeat invocation on
//! the original: the watermark rectangles settle every split and **zero**
//! plans are generated.
//!
//! The format is defensive: every plan id, table set, watermark operand,
//! and cost component is validated on import, and any mismatch (including
//! an enumeration plane that no longer lines up with the serialized
//! state) yields a [`SnapshotError`] instead of a silently wrong
//! optimizer — callers fall back to a cold start.
//!
//! The cost model itself is *not* serialized (it is code, not data); the
//! importer instead verifies that the provided model's metric layout
//! matches the exporter's, so frontiers are never revived under a cost
//! space they were not computed in.

use crate::optimizer::{ActiveEntry, IamaOptimizer, Watermark};
use crate::wire::{WireDecode, WireEncode, WireError, WireReader, WireWriter};
use crate::IamaConfig;
use moqo_cost::{Bounds, CostVector, ResolutionSchedule};
use moqo_costmodel::{CostModel, PlanInput, SharedCostModel};
use moqo_index::{DynIndex, Entry, IndexKind, PlanIndex};
use moqo_plan::{JoinAlgo, Operator, PlanArena, ScanMethod};
use moqo_plan::{PhysicalProps, PlanId, PlanNode};
use moqo_query::{QuerySpec, TableSet};
use std::fmt;
use std::sync::Arc;

/// Magic bytes opening every frontier snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MOQOFRNT";

/// Current snapshot format version. Bumped whenever the byte layout *or*
/// the deterministic enumeration-plane construction changes (watermarks
/// are stored in plan order, so a re-ordered enumeration invalidates old
/// snapshots — the per-split operand check below catches stragglers).
/// Version 2 added the exporting cost model's
/// [identity](moqo_costmodel::CostModel::identity) to the model guard,
/// so a frontier refined under one model can never warm-start a session
/// under a differently parameterized model with the same metric layout.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Why a snapshot could not be imported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the encoded structure did.
    Truncated,
    /// The buffer does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The buffer was written by an unsupported format version.
    UnsupportedVersion(u32),
    /// The provided cost model's metric layout differs from the
    /// exporter's; reviving the frontier would mix cost spaces.
    ModelMismatch(String),
    /// A structural invariant failed during decoding.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a moqo frontier snapshot"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ModelMismatch(m) => write!(f, "cost model mismatch: {m}"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The byte-level primitives live in [`crate::wire`] (shared with the
/// session-protocol codec); snapshot decoding maps their errors into
/// [`SnapshotError`] so `?` composes across both layers.
impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Truncated => SnapshotError::Truncated,
            WireError::Corrupt(m) => SnapshotError::Corrupt(m),
            WireError::UnknownModel { identity } => SnapshotError::ModelMismatch(format!(
                "unknown cost-model identity {identity:#018x}"
            )),
        }
    }
}

type Result<T> = std::result::Result<T, SnapshotError>;

fn corrupt(msg: String) -> SnapshotError {
    SnapshotError::Corrupt(msg)
}

fn index_kind_tag(kind: IndexKind) -> u8 {
    match kind {
        IndexKind::Linear => 0,
        IndexKind::CellGrid => 1,
        IndexKind::KdTree => 2,
    }
}

fn index_kind_from(tag: u8) -> Result<IndexKind> {
    match tag {
        0 => Ok(IndexKind::Linear),
        1 => Ok(IndexKind::CellGrid),
        2 => Ok(IndexKind::KdTree),
        t => Err(corrupt(format!("unknown index kind {t}"))),
    }
}

fn write_operator(w: &mut WireWriter, op: &Operator) {
    match *op {
        Operator::Scan { position, method } => {
            w.u8(0);
            w.u16(position);
            match method {
                ScanMethod::Full => w.u8(0),
                ScanMethod::Sampled { rate_pm } => {
                    w.u8(1);
                    w.u16(rate_pm);
                }
            }
        }
        Operator::Join { algo, dop } => {
            w.u8(1);
            w.u8(match algo {
                JoinAlgo::Hash => 0,
                JoinAlgo::SortMerge => 1,
                JoinAlgo::NestedLoop => 2,
            });
            w.u16(dop);
        }
    }
}

fn read_operator(r: &mut WireReader<'_>) -> Result<Operator> {
    match r.u8()? {
        0 => {
            let position = r.u16()?;
            let method = match r.u8()? {
                0 => ScanMethod::Full,
                1 => {
                    let rate_pm = r.u16()?;
                    if !(1..1000).contains(&rate_pm) {
                        return Err(corrupt(format!("sampling rate {rate_pm}‰ out of range")));
                    }
                    ScanMethod::Sampled { rate_pm }
                }
                t => return Err(corrupt(format!("unknown scan method {t}"))),
            };
            Ok(Operator::Scan { position, method })
        }
        1 => {
            let algo = match r.u8()? {
                0 => JoinAlgo::Hash,
                1 => JoinAlgo::SortMerge,
                2 => JoinAlgo::NestedLoop,
                t => return Err(corrupt(format!("unknown join algorithm {t}"))),
            };
            let dop = r.u16()?;
            if dop == 0 {
                return Err(corrupt("join degree of parallelism 0".into()));
            }
            Ok(Operator::Join { algo, dop })
        }
        t => Err(corrupt(format!("unknown operator tag {t}"))),
    }
}

/// Writes index entries in a canonical order (plan id, level,
/// invocation): the plan-set indexes are *sets* whose iteration order
/// depends on insertion history, so sorting here makes the export a pure
/// function of optimizer state — equal state produces equal bytes even
/// across an import/re-export round trip, which is what lets the
/// snapshot store's dirty tracking skip unchanged frontiers.
fn write_entries(w: &mut WireWriter, entries: &[Entry<PlanId>]) {
    let mut order: Vec<usize> = (0..entries.len()).collect();
    order.sort_unstable_by_key(|&i| {
        let e = &entries[i];
        (e.item.0, e.level, e.invocation)
    });
    w.u32(entries.len() as u32);
    for i in order {
        let e = &entries[i];
        w.u32(e.item.0);
        e.cost.encode(w);
        w.u8(e.level);
        w.u32(e.invocation);
    }
}

fn read_entries(
    r: &mut WireReader<'_>,
    arena_len: usize,
    r_max: usize,
    dim: usize,
) -> Result<Vec<Entry<PlanId>>> {
    let n = r.count("index entry")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let item = r.u32()?;
        if item as usize >= arena_len {
            return Err(corrupt(format!(
                "entry references plan {item} outside arena"
            )));
        }
        let cost = CostVector::decode(r)?;
        if cost.dim() != dim {
            return Err(corrupt(format!(
                "entry cost dimension {} != {dim}",
                cost.dim()
            )));
        }
        let level = r.u8()?;
        if level as usize > r_max {
            return Err(corrupt(format!("entry level {level} exceeds rM={r_max}")));
        }
        let invocation = r.u32()?;
        out.push(Entry::new(PlanId(item), cost, level, invocation));
    }
    Ok(out)
}

impl IamaOptimizer {
    /// Serializes the optimizer's complete warm state — spec, catalog
    /// statistics, schedule, configuration, plan arena, result/candidate
    /// sets, active lists, watermark rectangles, pair hash, and the
    /// invocation context — into a versioned byte buffer.
    ///
    /// The buffer is self-contained: [`IamaOptimizer::import_frontier`]
    /// needs only these bytes plus a cost model with the same metric
    /// layout. Cumulative [`crate::OptimizerStats`] counters are carried
    /// along; the test-only per-plan invariant maps are not.
    pub fn export_frontier(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_VERSION);

        // --- Model guard: metric layout of the exporting cost model. ---
        let metrics = self.model.metrics();
        w.u8(metrics.dim() as u8);
        for i in 0..metrics.dim() {
            w.str(metrics.metric(i).name());
        }
        w.u64(self.model.identity());

        // --- Query spec: name, catalog, join graph (the shared wire
        // codec; byte-compatible with the pre-wire inline encoding). ---
        self.spec.encode(&mut w);

        // --- Schedule and configuration. ---
        self.schedule.encode(&mut w);
        w.u8(index_kind_tag(self.config.index_kind));
        w.bool(self.config.use_delta);
        w.bool(self.config.allow_cross_products);
        w.bool(self.config.track_invariants);
        w.bool(self.config.eager_level_skip);
        w.bool(self.config.shadow_dominated);
        // `use_batch_kernels` and `time_pruning` are deliberately not
        // serialized: both settings produce byte-identical optimizer
        // state (the batch kernels are decision-equivalent to the scalar
        // path, and prune timing is pure diagnostics), so encoding them
        // would bump SNAPSHOT_VERSION for no observable difference.
        // Imported optimizers run with the defaults.

        // --- Invocation context. ---
        w.u32(self.invocation);
        w.bool(self.scans_done);
        match &self.last_ctx {
            None => w.bool(false),
            Some((bounds, r)) => {
                w.bool(true);
                bounds.limits().encode(&mut w);
                w.u32(*r as u32);
            }
        }

        // --- Plan arena, in insertion order (children precede parents).
        w.u32(self.arena.len() as u32);
        for (_, node) in self.arena.iter() {
            write_operator(&mut w, &node.op);
            match node.children {
                None => w.bool(false),
                Some((l, r)) => {
                    w.bool(true);
                    w.u32(l.0);
                    w.u32(r.0);
                }
            }
            node.cost.encode(&mut w);
            node.props.encode(&mut w);
        }

        // --- Per-subset state, aligned with the enumeration plan. ---
        let unbounded = Bounds::unbounded(self.model.dim());
        w.u32(self.states.len() as u32);
        for (ix, state) in self.states.iter().enumerate() {
            w.u64(
                self.plan
                    .tables(moqo_query::SubsetId::from_index(ix))
                    .bits(),
            );
            w.u32(state.last_res_insert);
            let res = state
                .res
                .as_ref()
                .map(|i| i.collect(&unbounded, u8::MAX))
                .unwrap_or_default();
            write_entries(&mut w, &res);
            let cand = state
                .cand
                .as_ref()
                .map(|i| i.collect(&unbounded, u8::MAX))
                .unwrap_or_default();
            write_entries(&mut w, &cand);
            w.u32(state.active.len() as u32);
            for e in &state.active {
                w.u32(e.plan.0);
                e.cost.encode(&mut w);
                e.props.encode(&mut w);
                w.u32(e.invocation);
                w.u8(e.level);
                w.bool(e.shadowed);
            }
        }

        // --- Watermark rectangles, in plan split order; each record
        // carries its operand table sets so a misaligned enumeration is
        // detected on import instead of silently violating Lemma 6. ---
        w.u32(self.watermarks.len() as u32);
        for (pos, wm) in self.watermarks.iter().enumerate() {
            let split = self.plan.splits()[pos];
            w.u64(self.plan.tables(split.left).bits());
            w.u64(self.plan.tables(split.right).bits());
            w.u32(wm.left);
            w.u32(wm.right);
        }

        // --- IsFresh fallback pairs (non-empty only after churn epochs).
        let mut keys: Vec<u64> = self.pairs.keys().collect();
        keys.sort_unstable(); // deterministic output for equal state
        w.u32(keys.len() as u32);
        for k in keys {
            w.u64(k);
        }

        // --- Cumulative counters (invariant maps excluded). ---
        let s = &self.stats;
        w.u32(s.invocations);
        w.u64(s.plans_generated);
        w.u64(s.pairs_generated);
        w.u64(s.candidate_retrievals);
        w.u64(s.prune_comparisons);
        w.u64(s.result_insertions);
        w.u64(s.candidate_insertions);
        w.u64(s.candidates_discarded);
        w.u64(s.stale_pairs_skipped);
        w.u64(s.pairs_skipped_watermark);
        w.u32(s.delta_invocations);
        w.u64(s.subsets_visited);
        w.u64(s.splits_visited);
        w.u64(s.splits_skipped);
        w.u64(s.scratch_high_water as u64);

        w.into_vec()
    }

    /// Rebuilds an optimizer from [`IamaOptimizer::export_frontier`]
    /// bytes and a live cost model.
    ///
    /// The model must expose the same metric layout the exporter used
    /// (checked by name, not just dimension). On success the optimizer is
    /// state-equivalent to the exported one: a repeat invocation
    /// generates zero plans, and later bound changes resume the
    /// incremental series without violating Lemmas 5–7.
    pub fn import_frontier(model: SharedCostModel, bytes: &[u8]) -> Result<IamaOptimizer> {
        let mut r = WireReader::new(bytes);
        if r.take(8)? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        match r.u32()? {
            SNAPSHOT_VERSION => {}
            v => return Err(SnapshotError::UnsupportedVersion(v)),
        }

        // --- Model guard. ---
        let dim = r.u8()? as usize;
        let metrics = model.metrics();
        if dim != metrics.dim() {
            return Err(SnapshotError::ModelMismatch(format!(
                "snapshot has {dim} metrics, model has {}",
                metrics.dim()
            )));
        }
        for i in 0..dim {
            let name = r.str()?;
            if name != metrics.metric(i).name() {
                return Err(SnapshotError::ModelMismatch(format!(
                    "metric {i} is {name:?} in the snapshot but {:?} in the model",
                    metrics.metric(i).name()
                )));
            }
        }
        let identity = r.u64()?;
        if identity != model.identity() {
            return Err(SnapshotError::ModelMismatch(format!(
                "snapshot was exported under cost-model identity {identity:#018x}, \
                 the provided model has {:#018x}",
                model.identity()
            )));
        }

        // --- Query spec (shared wire codec: every reference, filter, and
        // selectivity validated before the panicking constructors run). ---
        let spec = Arc::new(QuerySpec::decode(&mut r)?);

        // --- Schedule and configuration. ---
        let schedule = ResolutionSchedule::decode(&mut r)?;
        let r_max = schedule.r_max();
        let config = IamaConfig {
            index_kind: index_kind_from(r.u8()?)?,
            use_delta: r.bool()?,
            allow_cross_products: r.bool()?,
            track_invariants: r.bool()?,
            eager_level_skip: r.bool()?,
            shadow_dominated: r.bool()?,
            // Execution-strategy knobs are not part of the wire state
            // (see the encode side); imports run with the defaults.
            ..IamaConfig::default()
        };

        // --- Invocation context. ---
        let invocation = r.u32()?;
        let scans_done = r.bool()?;
        let last_ctx = if r.bool()? {
            let limits = CostVector::decode(&mut r)?;
            if limits.dim() != dim {
                return Err(corrupt("last-context bounds dimension mismatch".into()));
            }
            let lr = r.u32()? as usize;
            if lr > r_max {
                return Err(corrupt(format!(
                    "last-context resolution {lr} exceeds rM={r_max}"
                )));
            }
            Some((Bounds::new(limits), lr))
        } else {
            None
        };

        // The empty optimizer: builds the enumeration plane
        // deterministically from the (validated) graph and sizes the
        // dense state arrays.
        let mut opt = IamaOptimizer::with_config(spec, model, schedule, config);

        // --- Plan arena. ---
        let n_plans = r.count("arena plan")?;
        for i in 0..n_plans {
            let op = read_operator(&mut r)?;
            let children = if r.bool()? {
                let l = r.u32()?;
                let rt = r.u32()?;
                if l as usize >= i || rt as usize >= i {
                    return Err(corrupt(format!("plan {i} children must precede it")));
                }
                Some((PlanId(l), PlanId(rt)))
            } else {
                None
            };
            let cost = CostVector::decode(&mut r)?;
            if cost.dim() != dim {
                return Err(corrupt(format!("plan {i} cost dimension mismatch")));
            }
            let props = PhysicalProps::decode(&mut r)?;
            match (op, children) {
                (Operator::Scan { position, .. }, None) => {
                    if position as usize >= opt.spec.n_tables() {
                        return Err(corrupt(format!("scan position {position} out of range")));
                    }
                    opt.arena.push_scan(op, position as usize, cost, props);
                }
                (Operator::Join { .. }, Some((l, rt))) => {
                    if !opt.arena.tables(l).is_disjoint(opt.arena.tables(rt)) {
                        return Err(corrupt(format!("plan {i} joins overlapping children")));
                    }
                    opt.arena.push_join(op, l, rt, cost, props);
                }
                _ => return Err(corrupt(format!("plan {i} operator/children mismatch"))),
            }
        }

        // --- Per-subset state. ---
        let n_subsets = r.count("subset")?;
        if n_subsets != opt.plan.len() {
            return Err(corrupt(format!(
                "snapshot has {n_subsets} subsets, enumeration plan has {}",
                opt.plan.len()
            )));
        }
        let kind = opt.config.index_kind;
        for ix in 0..n_subsets {
            let bits = r.u64()?;
            let expect = opt.plan.tables(moqo_query::SubsetId::from_index(ix)).bits();
            if bits != expect {
                return Err(corrupt(format!(
                    "subset {ix} tables {bits:#x} do not match plan order ({expect:#x})"
                )));
            }
            let last_res_insert = r.u32()?;
            let res = read_entries(&mut r, n_plans, r_max, dim)?;
            let cand = read_entries(&mut r, n_plans, r_max, dim)?;
            // Every indexed plan must join exactly this subset's tables
            // and predate the imported invocation counter — a plan id
            // swapped to another subset's plan would otherwise import
            // cleanly and silently serve wrong frontiers.
            for e in res.iter().chain(cand.iter()) {
                if opt.arena.tables(e.item).bits() != bits {
                    return Err(corrupt(format!(
                        "subset {ix} entry references plan {} of another subset",
                        e.item.0
                    )));
                }
                if e.invocation >= invocation {
                    return Err(corrupt(format!(
                        "entry invocation {} not before counter {invocation}",
                        e.invocation
                    )));
                }
            }
            let n_active = r.count("active entry")?;
            let mut active = Vec::with_capacity(n_active);
            let mut prev_inv = 0u32;
            for _ in 0..n_active {
                let plan = r.u32()?;
                if plan as usize >= n_plans {
                    return Err(corrupt(format!("active entry references plan {plan}")));
                }
                if opt.arena.tables(PlanId(plan)).bits() != bits {
                    return Err(corrupt(format!(
                        "subset {ix} active entry references plan {plan} of another subset"
                    )));
                }
                let cost = CostVector::decode(&mut r)?;
                if cost.dim() != dim {
                    return Err(corrupt(format!(
                        "active cost dimension {} != {dim}",
                        cost.dim()
                    )));
                }
                let props = PhysicalProps::decode(&mut r)?;
                let inv = r.u32()?;
                if inv < prev_inv {
                    return Err(corrupt("active list not in invocation order".into()));
                }
                if inv >= invocation {
                    return Err(corrupt(format!(
                        "active invocation {inv} not before counter {invocation}"
                    )));
                }
                prev_inv = inv;
                let level = r.u8()?;
                if level as usize > r_max {
                    return Err(corrupt(format!("active level {level} exceeds rM={r_max}")));
                }
                let shadowed = r.bool()?;
                active.push(ActiveEntry {
                    plan: PlanId(plan),
                    cost,
                    props,
                    invocation: inv,
                    level,
                    shadowed,
                });
            }
            let state = &mut opt.states[ix];
            if !res.is_empty() {
                let idx = state.res.get_or_insert_with(|| DynIndex::new(kind, dim));
                for e in res {
                    idx.insert(e);
                }
            }
            if !cand.is_empty() {
                let idx = state.cand.get_or_insert_with(|| DynIndex::new(kind, dim));
                for e in cand {
                    idx.insert(e);
                }
            }
            state.active = active;
            state.last_res_insert = last_res_insert;
        }

        // --- Watermarks (plan split order, operands verified). ---
        let n_marks = r.count("watermark")?;
        if n_marks != opt.plan.total_splits() {
            return Err(corrupt(format!(
                "snapshot has {n_marks} watermarks, plan has {} splits",
                opt.plan.total_splits()
            )));
        }
        for pos in 0..n_marks {
            let left_bits = r.u64()?;
            let right_bits = r.u64()?;
            let wl = r.u32()?;
            let wr = r.u32()?;
            let split = opt.plan.splits()[pos];
            if opt.plan.tables(split.left).bits() != left_bits
                || opt.plan.tables(split.right).bits() != right_bits
            {
                return Err(corrupt(format!(
                    "watermark {pos} operands misaligned with plan"
                )));
            }
            let (la, rb) = (split.left.index(), split.right.index());
            if wl as usize > opt.states[la].active.len()
                || wr as usize > opt.states[rb].active.len()
            {
                return Err(corrupt(format!("watermark {pos} exceeds its active lists")));
            }
            opt.watermarks[pos] = Watermark {
                left: wl,
                right: wr,
            };
        }

        // --- Pairs. ---
        let n_pairs = r.count("pair")?;
        for _ in 0..n_pairs {
            opt.pairs.insert_key(r.u64()?);
        }

        // --- Counters and context. ---
        opt.stats.invocations = r.u32()?;
        opt.stats.plans_generated = r.u64()?;
        opt.stats.pairs_generated = r.u64()?;
        opt.stats.candidate_retrievals = r.u64()?;
        opt.stats.prune_comparisons = r.u64()?;
        opt.stats.result_insertions = r.u64()?;
        opt.stats.candidate_insertions = r.u64()?;
        opt.stats.candidates_discarded = r.u64()?;
        opt.stats.stale_pairs_skipped = r.u64()?;
        opt.stats.pairs_skipped_watermark = r.u64()?;
        opt.stats.delta_invocations = r.u32()?;
        opt.stats.subsets_visited = r.u64()?;
        opt.stats.splits_visited = r.u64()?;
        opt.stats.splits_skipped = r.u64()?;
        opt.stats.scratch_high_water = r.u64()? as usize;
        opt.invocation = invocation;
        opt.scans_done = scans_done;
        opt.last_ctx = last_ctx;

        if !r.done() {
            return Err(corrupt("trailing bytes after snapshot".into()));
        }
        Ok(opt)
    }
}

/// Magic bytes opening every per-subset sub-frontier blob.
pub const SUBSNAPSHOT_MAGIC: [u8; 8] = *b"MOQOSUBF";

/// Current sub-frontier blob format version.
pub const SUBSNAPSHOT_VERSION: u32 = 1;

/// Encodes the operator tree rooted at `id` with scan positions remapped
/// through `local` (global table position → local index within the
/// subset). Pre-order and self-delimiting, so trees concatenate without
/// length prefixes and compare lexicographically for the canonical order.
fn encode_subtree(arena: &PlanArena, id: PlanId, local: &[u8], out: &mut WireWriter) {
    let node = arena.node(id);
    match node.op {
        Operator::Scan { position, method } => {
            out.u8(0);
            out.u8(local[position as usize]);
            match method {
                ScanMethod::Full => out.u8(0),
                ScanMethod::Sampled { rate_pm } => {
                    out.u8(1);
                    out.u16(rate_pm);
                }
            }
        }
        Operator::Join { algo, dop } => {
            out.u8(1);
            out.u8(match algo {
                JoinAlgo::Hash => 0,
                JoinAlgo::SortMerge => 1,
                JoinAlgo::NestedLoop => 2,
            });
            out.u16(dop);
            let (l, r) = node.children.expect("join node has children");
            encode_subtree(arena, l, local, out);
            encode_subtree(arena, r, local, out);
        }
    }
}

/// Per-table `(cardinality, row_width, filter)` in ascending position
/// order plus the induced join edges `(local left, local right,
/// selectivity bits)` — the statistics a sub-frontier blob guards on.
type InducedStats = (Vec<(u64, u32, f64)>, Vec<(u8, u8, u64)>);

/// The induced statistics a sub-frontier blob guards on. Computed
/// identically on export and import, so a transplant only proceeds when
/// the donor's sub-catalog matches the recipient's exactly (the
/// structural backstop behind the engine's sub-fingerprint hash).
fn induced_stats(spec: &QuerySpec, tables: TableSet) -> InducedStats {
    let g = &spec.graph;
    let mut local = vec![u8::MAX; g.n_tables()];
    let mut stats = Vec::with_capacity(tables.len());
    for (k, pos) in tables.iter().enumerate() {
        local[pos] = k as u8;
        let t = spec.catalog.table(g.tables[pos]);
        stats.push((t.cardinality, t.row_width, g.filters[pos]));
    }
    let mut edges: Vec<(u8, u8, u64)> = g
        .edges
        .iter()
        .filter(|e| tables.contains(e.left) && tables.contains(e.right))
        .map(|e| (local[e.left], local[e.right], e.selectivity.to_bits()))
        .collect();
    edges.sort_unstable();
    (stats, edges)
}

impl IamaOptimizer {
    /// Serializes the warm `Res^q`/`Cand^q` state of one connected table
    /// subset as a self-describing, position-independent blob: the metric
    /// layout and cost-model identity it was refined under, the induced
    /// sub-catalog statistics (the validation gate for transplants), and
    /// the operator trees of every result/candidate plan with scan
    /// positions relabeled to `0..k` in ascending order.
    ///
    /// Costs are deliberately *not* serialized: an importer re-scores
    /// every tree against its live cost model at admission, which is what
    /// keeps the paper's `alpha_T` guarantee intact across transplants.
    /// Trees are sorted and deduplicated, so equal subset state exports
    /// equal bytes regardless of insertion history.
    ///
    /// Returns `None` when the subset is not enumerated for this query or
    /// holds no result/candidate plans.
    pub fn export_subset(&self, tables: TableSet) -> Option<Vec<u8>> {
        let q = self.plan.subset_id(tables)?;
        let state = &self.states[q.index()];
        let unbounded = Bounds::unbounded(self.model.dim());
        let mut roots: Vec<PlanId> = Vec::new();
        for idx in [&state.res, &state.cand].into_iter().flatten() {
            roots.extend(idx.collect(&unbounded, u8::MAX).iter().map(|e| e.item));
        }
        roots.sort_unstable();
        roots.dedup();
        if roots.is_empty() {
            return None;
        }

        let g = &self.spec.graph;
        let mut local = vec![u8::MAX; g.n_tables()];
        for (k, pos) in tables.iter().enumerate() {
            local[pos] = k as u8;
        }
        let mut trees: Vec<Vec<u8>> = roots
            .iter()
            .map(|&p| {
                let mut tw = WireWriter::new();
                encode_subtree(&self.arena, p, &local, &mut tw);
                tw.into_vec()
            })
            .collect();
        trees.sort_unstable();
        trees.dedup();

        let mut w = WireWriter::new();
        w.bytes(&SUBSNAPSHOT_MAGIC);
        w.u32(SUBSNAPSHOT_VERSION);
        let metrics = self.model.metrics();
        w.u8(metrics.dim() as u8);
        for i in 0..metrics.dim() {
            w.str(metrics.metric(i).name());
        }
        w.u64(self.model.identity());
        let (stats, edges) = induced_stats(&self.spec, tables);
        w.u8(stats.len() as u8);
        for (card, width, filter) in stats {
            w.u64(card);
            w.u32(width);
            w.u64(filter.to_bits());
        }
        w.u32(edges.len() as u32);
        for (l, r, sel) in edges {
            w.u8(l);
            w.u8(r);
            w.u64(sel);
        }
        w.u32(trees.len() as u32);
        for t in &trees {
            w.bytes(t);
        }
        Some(w.into_vec())
    }

    /// Seeds subset `tables` of this optimizer from an
    /// [`export_subset`](IamaOptimizer::export_subset) blob produced by a
    /// *different* (but statistically identical on this subset) query.
    ///
    /// Every tree is replayed bottom-up against the **live** cost model:
    /// each operator must still be offered by
    /// [`scan_alternatives`](moqo_costmodel::CostModel::scan_alternatives)
    /// / [`join_alternatives`](moqo_costmodel::CostModel::join_alternatives),
    /// and the plan is queued with the freshly computed cost for
    /// admission as a level-0 `Cand` entry — the next invocations admit
    /// at most [`IamaConfig::max_seeds_per_slice`](crate::IamaConfig)
    /// seeds each, and every admitted seed re-enters through pruning
    /// exactly like a natively generated plan, so Theorem 2's `alpha_T`
    /// guarantee is preserved without caveats. Trees whose operators are
    /// no longer offered are skipped, not errors.
    ///
    /// The blob's metric layout, cost-model identity, and induced
    /// statistics must match this optimizer's; any mismatch yields an
    /// error and the caller falls back to cold enumeration. Returns the
    /// number of admitted candidate plans.
    pub fn import_subset(&mut self, tables: TableSet, bytes: &[u8]) -> Result<usize> {
        let q = self
            .plan
            .subset_id(tables)
            .ok_or_else(|| corrupt("subset not enumerated for this query".into()))?;
        let mut r = WireReader::new(bytes);
        if r.take(8)? != SUBSNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        match r.u32()? {
            SUBSNAPSHOT_VERSION => {}
            v => return Err(SnapshotError::UnsupportedVersion(v)),
        }
        let dim = r.u8()? as usize;
        let metrics = self.model.metrics();
        if dim != metrics.dim() {
            return Err(SnapshotError::ModelMismatch(format!(
                "sub-frontier has {dim} metrics, model has {}",
                metrics.dim()
            )));
        }
        for i in 0..dim {
            let name = r.str()?;
            if name != metrics.metric(i).name() {
                return Err(SnapshotError::ModelMismatch(format!(
                    "metric {i} is {name:?} in the sub-frontier but {:?} in the model",
                    metrics.metric(i).name()
                )));
            }
        }
        let identity = r.u64()?;
        if identity != self.model.identity() {
            return Err(SnapshotError::ModelMismatch(format!(
                "sub-frontier was refined under cost-model identity {identity:#018x}, \
                 this optimizer runs {:#018x}",
                self.model.identity()
            )));
        }
        let (stats, edges) = induced_stats(&self.spec, tables);
        let k = r.u8()? as usize;
        if k != stats.len() {
            return Err(corrupt(format!(
                "sub-frontier covers {k} tables, subset has {}",
                stats.len()
            )));
        }
        for (i, &(card, width, filter)) in stats.iter().enumerate() {
            let (bc, bw, bf) = (r.u64()?, r.u32()?, r.u64()?);
            if bc != card || bw != width || bf != filter.to_bits() {
                return Err(corrupt(format!(
                    "sub-frontier table {i} statistics differ from the live catalog"
                )));
            }
        }
        let n_edges = r.count("induced edge")?;
        if n_edges != edges.len() {
            return Err(corrupt(format!(
                "sub-frontier has {n_edges} induced edges, subset has {}",
                edges.len()
            )));
        }
        for (i, &(l, rt, sel)) in edges.iter().enumerate() {
            let (bl, br, bs) = (r.u8()?, r.u8()?, r.u64()?);
            if bl != l || br != rt || bs != sel {
                return Err(corrupt(format!(
                    "sub-frontier edge {i} differs from the live join graph"
                )));
            }
        }

        let positions: Vec<usize> = tables.iter().collect();
        let n_trees = r.count("sub-frontier tree")?;
        let mut admitted = 0usize;
        for _ in 0..n_trees {
            if let Some((plan, cost)) = self.replay_tree(&mut r, &positions)? {
                if self.arena.tables(plan) != tables {
                    return Err(corrupt(
                        "sub-frontier tree does not cover its subset".into(),
                    ));
                }
                // Queued, not indexed: the next invocations admit seeds
                // at most `max_seeds_per_slice` at a time (level-0 `Cand`
                // entries), amortizing the drain across the ladder.
                self.pending_seeds.push_back((q, plan, cost));
                self.stats.transplanted_candidates += 1;
                admitted += 1;
            }
        }
        if !r.done() {
            return Err(corrupt("trailing bytes after sub-frontier".into()));
        }
        if admitted > 0 {
            self.stats.subsets_seeded += 1;
        }
        Ok(admitted)
    }

    /// Decodes one pre-order tree and replays it bottom-up against the
    /// live cost model, returning the admitted root and its fresh cost,
    /// or `None` when some operator is no longer offered (the rest of the
    /// tree is still consumed so decoding stays aligned).
    fn replay_tree(
        &mut self,
        r: &mut WireReader<'_>,
        positions: &[usize],
    ) -> Result<Option<(PlanId, CostVector)>> {
        match r.u8()? {
            0 => {
                let lp = r.u8()? as usize;
                if lp >= positions.len() {
                    return Err(corrupt(format!("local scan position {lp} out of range")));
                }
                let method = match r.u8()? {
                    0 => ScanMethod::Full,
                    1 => {
                        let rate_pm = r.u16()?;
                        if !(1..1000).contains(&rate_pm) {
                            return Err(corrupt(format!("sampling rate {rate_pm}‰ out of range")));
                        }
                        ScanMethod::Sampled { rate_pm }
                    }
                    t => return Err(corrupt(format!("unknown scan method {t}"))),
                };
                let pos = positions[lp];
                let want = Operator::Scan {
                    position: pos as u16,
                    method,
                };
                for (op, cost, props) in self.model.scan_alternatives(&self.spec, pos) {
                    if op == want {
                        let id = self.arena.push_scan(op, pos, cost, props);
                        return Ok(Some((id, cost)));
                    }
                }
                Ok(None)
            }
            1 => {
                let algo = match r.u8()? {
                    0 => JoinAlgo::Hash,
                    1 => JoinAlgo::SortMerge,
                    2 => JoinAlgo::NestedLoop,
                    t => return Err(corrupt(format!("unknown join algorithm {t}"))),
                };
                let dop = r.u16()?;
                if dop == 0 {
                    return Err(corrupt("join degree of parallelism 0".into()));
                }
                let left = self.replay_tree(r, positions)?;
                let right = self.replay_tree(r, positions)?;
                let (Some((l, _)), Some((rt, _))) = (left, right) else {
                    return Ok(None);
                };
                let want = Operator::Join { algo, dop };
                let input = |n: &PlanNode| PlanInput {
                    tables: n.tables,
                    cost: n.cost,
                    props: n.props,
                };
                let (li, ri) = (input(self.arena.node(l)), input(self.arena.node(rt)));
                if !li.tables.is_disjoint(ri.tables) {
                    return Err(corrupt("sub-frontier join children overlap".into()));
                }
                for (op, cost, props) in self.model.join_alternatives(&self.spec, &li, &ri) {
                    if op == want {
                        let id = self.arena.push_join(op, l, rt, cost, props);
                        return Ok(Some((id, cost)));
                    }
                }
                Ok(None)
            }
            t => Err(corrupt(format!("unknown operator tag {t}"))),
        }
    }

    /// Rebase: seeds this **fresh** optimizer with every result/candidate
    /// plan of `donor`, a parked optimizer for the *same query shape*
    /// whose catalog statistics have since drifted. The donor is read
    /// only — it stays parked and can serve an exact-fingerprint repeat.
    ///
    /// Every donor plan tree is copied arena-to-arena with the identity
    /// table mapping and re-costed under this optimizer's model and live
    /// statistics, then queued for admission as a level-0 `Cand` entry of
    /// its subset (at most
    /// [`IamaConfig::max_seeds_per_slice`](crate::IamaConfig) seeds enter
    /// the candidate sets per invocation, amortizing a very warm donor's
    /// drain across the ladder).
    /// By Lemma 7 each re-admitted candidate is re-examined at most
    /// `rM + 1` times, which is cheaper than regenerating it through the
    /// full enumeration — while pruning under the fresh costs keeps the
    /// `alpha_T` guarantee exact.
    ///
    /// Requires a cold `self` (no invocations run), a donor with an
    /// identical join-graph shape and cross-product policy, and an
    /// identical cost-model identity/metric layout. Returns the number of
    /// admitted candidate plans.
    pub fn rebase_from(&mut self, donor: &IamaOptimizer) -> Result<usize> {
        if self.invocation != 0 || self.scans_done || !self.arena.is_empty() {
            return Err(corrupt("rebase target must be a cold optimizer".into()));
        }
        let metrics = self.model.metrics();
        let donor_metrics = donor.model.metrics();
        if metrics.dim() != donor_metrics.dim()
            || (0..metrics.dim())
                .any(|i| metrics.metric(i).name() != donor_metrics.metric(i).name())
        {
            return Err(SnapshotError::ModelMismatch(
                "rebase donor has a different metric layout".into(),
            ));
        }
        if self.model.identity() != donor.model.identity() {
            return Err(SnapshotError::ModelMismatch(format!(
                "rebase donor has cost-model identity {:#018x}, this optimizer {:#018x}",
                donor.model.identity(),
                self.model.identity()
            )));
        }
        if !self
            .plan
            .matches(&donor.spec.graph, donor.config.allow_cross_products)
        {
            return Err(corrupt(
                "rebase donor has a different join-graph shape".into(),
            ));
        }

        let unbounded = Bounds::unbounded(donor.model.dim());
        // One memo across all subsets: roots share subtrees, and the
        // donor arena is append-only, so each donor plan is replayed at
        // most once into `self`.
        let mut memo: Vec<Option<Option<PlanId>>> = vec![None; donor.arena.len()];
        let mut admitted = 0usize;
        for ix in 0..donor.states.len() {
            let q = moqo_query::SubsetId::from_index(ix);
            let state = &donor.states[ix];
            let mut roots: Vec<PlanId> = Vec::new();
            for idx in [&state.res, &state.cand].into_iter().flatten() {
                roots.extend(idx.collect(&unbounded, u8::MAX).iter().map(|e| e.item));
            }
            roots.sort_unstable();
            roots.dedup();
            let mut seeded = false;
            for root in roots {
                if let Some(plan) = self.replay_donor(donor, root, &mut memo) {
                    let cost = *self.arena.cost(plan);
                    // Queued for per-slice admission; see `import_subset`.
                    self.pending_seeds.push_back((q, plan, cost));
                    self.stats.rebased_candidates += 1;
                    admitted += 1;
                    seeded = true;
                }
            }
            if seeded {
                self.stats.subsets_seeded += 1;
            }
        }
        Ok(admitted)
    }

    /// Replays donor plan `id` into this optimizer's arena, re-costing
    /// every node under the live model. Memoized per donor plan id so
    /// shared subtrees are copied once.
    fn replay_donor(
        &mut self,
        donor: &IamaOptimizer,
        id: PlanId,
        memo: &mut [Option<Option<PlanId>>],
    ) -> Option<PlanId> {
        if let Some(done) = memo[id.0 as usize] {
            return done;
        }
        let node = donor.arena.node(id);
        let replayed = match (node.op, node.children) {
            (op @ Operator::Scan { position, .. }, None) => {
                let pos = position as usize;
                self.model
                    .scan_alternatives(&self.spec, pos)
                    .into_iter()
                    .find(|&(alt, _, _)| alt == op)
                    .map(|(alt, cost, props)| self.arena.push_scan(alt, pos, cost, props))
            }
            (op @ Operator::Join { .. }, Some((dl, dr))) => {
                let l = self.replay_donor(donor, dl, memo);
                let r = self.replay_donor(donor, dr, memo);
                match (l, r) {
                    (Some(l), Some(r)) => {
                        let input = |n: &PlanNode| PlanInput {
                            tables: n.tables,
                            cost: n.cost,
                            props: n.props,
                        };
                        let (li, ri) = (input(self.arena.node(l)), input(self.arena.node(r)));
                        self.model
                            .join_alternatives(&self.spec, &li, &ri)
                            .into_iter()
                            .find(|&(alt, _, _)| alt == op)
                            .map(|(alt, cost, props)| self.arena.push_join(alt, l, r, cost, props))
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        memo[id.0 as usize] = Some(replayed);
        replayed
    }
}

// Re-assert at compile time that the arena node shape the codec assumes
// still holds; a new `PlanNode` field would silently be dropped otherwise.
const _: fn(&PlanNode) = |n: &PlanNode| {
    let PlanNode {
        op: _,
        children: _,
        tables: _,
        cost: _,
        props: _,
    } = *n;
};

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_costmodel::StandardCostModel;
    use moqo_query::testkit;

    fn model() -> SharedCostModel {
        Arc::new(StandardCostModel::paper_metrics())
    }

    fn schedule() -> ResolutionSchedule {
        ResolutionSchedule::linear(3, 1.05, 0.5)
    }

    fn warm_optimizer(n: usize) -> IamaOptimizer {
        let spec = Arc::new(testkit::chain_query(n, 150_000));
        let mut opt = IamaOptimizer::new(spec, model(), schedule());
        let b = Bounds::unbounded(3);
        for r in 0..=opt.schedule().r_max() {
            opt.optimize(&b, r);
        }
        opt
    }

    #[test]
    fn round_trip_preserves_zero_work_steady_state() {
        let opt = warm_optimizer(4);
        let b = Bounds::unbounded(3);
        let expected = opt.frontier(&b, opt.schedule().r_max());
        let bytes = opt.export_frontier();

        let mut revived = IamaOptimizer::import_frontier(model(), bytes.as_slice()).unwrap();
        // The revived frontier is identical (same plans, same costs).
        let frontier = revived.frontier(&b, revived.schedule().r_max());
        assert_eq!(frontier.len(), expected.len());
        let mut a: Vec<_> = expected.points.iter().map(|p| p.plan).collect();
        let mut c: Vec<_> = frontier.points.iter().map(|p| p.plan).collect();
        a.sort_unstable();
        c.sort_unstable();
        assert_eq!(a, c);
        // A repeat invocation at any resolution does zero plan work: the
        // restored watermarks settle every split.
        let report = revived.optimize(&b, 0);
        assert_eq!(
            report.plans_generated, 0,
            "restore must not regenerate plans"
        );
        assert_eq!(report.pairs_generated, 0);
        let report = revived.optimize(&b, revived.schedule().r_max());
        assert_eq!(report.plans_generated, 0);
        assert_eq!(
            report.splits_visited, 0,
            "watermarks must settle after restore"
        );
    }

    #[test]
    fn round_trip_resumes_the_incremental_series() {
        // Restore mid-series (after a partial ladder), then continue the
        // refinement on both the original and the revived optimizer. The
        // exact result-set membership may differ (index iteration order
        // is unspecified, and insertion order decides which plainly
        // dominated plans land in Res vs Cand), but both frontiers must
        // stay within the Theorem 2 guarantee of each other.
        use moqo_cost::coverage_factor;
        let spec = Arc::new(testkit::chain_query(4, 150_000));
        let guarantee = schedule().guarantee(3, spec.n_tables());
        let mut opt = IamaOptimizer::new(spec, model(), schedule());
        let b = Bounds::unbounded(3);
        opt.optimize(&b, 0);
        opt.optimize(&b, 1);
        let bytes = opt.export_frontier();
        // Reference: continue the original.
        opt.optimize(&b, 2);
        opt.optimize(&b, 3);
        let expected = opt.frontier(&b, 3).costs();

        let mut revived = IamaOptimizer::import_frontier(model(), bytes.as_slice()).unwrap();
        revived.optimize(&b, 2);
        revived.optimize(&b, 3);
        let frontier = revived.frontier(&b, 3);
        assert!(!frontier.is_empty());
        let costs = frontier.costs();
        assert!(coverage_factor(&costs, &expected) <= guarantee + 1e-9);
        assert!(coverage_factor(&expected, &costs) <= guarantee + 1e-9);
        // Tightening bounds afterwards must not panic, and keeps serving
        // plans within the tighter focus.
        let t_min = frontier.min_by_metric(0).unwrap().cost[0];
        let tight = Bounds::unbounded(3).with_limit(0, t_min * 2.0);
        let rep = revived.optimize(&tight, 0);
        assert!(rep.frontier_size >= 1);
    }

    #[test]
    fn import_rejects_wrong_magic_version_and_truncation() {
        let opt = warm_optimizer(3);
        let bytes = opt.export_frontier();
        assert!(matches!(
            IamaOptimizer::import_frontier(model(), &bytes[..4]),
            Err(SnapshotError::Truncated)
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            IamaOptimizer::import_frontier(model(), &bad),
            Err(SnapshotError::BadMagic)
        ));
        let mut vbad = bytes.clone();
        vbad[8] = 99;
        assert!(matches!(
            IamaOptimizer::import_frontier(model(), &vbad),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        let truncated = &bytes[..bytes.len() - 3];
        assert!(IamaOptimizer::import_frontier(model(), truncated).is_err());
    }

    #[test]
    fn single_byte_corruption_never_panics_the_importer() {
        // Every field is validated before any panicking constructor runs:
        // flipping any single byte must yield Ok (benign field, e.g. a
        // stats counter) or Err — never a panic or a huge allocation.
        let spec = Arc::new(testkit::chain_query(2, 5_000));
        let mut opt = IamaOptimizer::new(spec, model(), ResolutionSchedule::linear(1, 1.2, 0.4));
        let b = Bounds::unbounded(3);
        opt.optimize(&b, 0);
        opt.optimize(&b, 1);
        let bytes = opt.export_frontier();
        for i in 0..bytes.len() {
            let mut mutant = bytes.clone();
            mutant[i] ^= 0xa5;
            let _ = IamaOptimizer::import_frontier(model(), &mutant);
        }
    }

    #[test]
    fn import_rejects_corrupt_entry_dimension() {
        // Targeted check for the Res/Cand entry dim guard: shrinking one
        // entry's cost-vector dim byte must fail import, not park a
        // dominance-poisoned optimizer.
        let opt = warm_optimizer(3);
        let bytes = opt.export_frontier();
        let mut seen_rejection = false;
        let mut mutant = bytes.clone();
        for i in 0..bytes.len() {
            // Dim bytes are exactly the value 3 followed by 3 f64s; try
            // turning each candidate 3 into a 1 and require that imports
            // which *succeed* still optimize without panicking.
            if bytes[i] != 3 {
                continue;
            }
            mutant[i] = 1;
            match IamaOptimizer::import_frontier(model(), &mutant) {
                Err(_) => seen_rejection = true,
                Ok(mut revived) => {
                    // A byte that happened not to be a dim field: the
                    // revived optimizer must still be usable.
                    let _ = revived.optimize(&Bounds::unbounded(3), 0);
                }
            }
            mutant[i] = bytes[i];
        }
        assert!(seen_rejection, "no dim corruption was ever rejected");
    }

    #[test]
    fn import_rejects_model_mismatch() {
        use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};
        let opt = warm_optimizer(3);
        let bytes = opt.export_frontier();
        let other: SharedCostModel = Arc::new(StandardCostModel::new(
            MetricSet::cloud(),
            StandardCostModelConfig::default(),
        ));
        assert!(matches!(
            IamaOptimizer::import_frontier(other, bytes.as_slice()),
            Err(SnapshotError::ModelMismatch(_))
        ));
    }

    #[test]
    fn import_rejects_same_metrics_different_model_identity() {
        use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};
        let opt = warm_optimizer(3);
        let bytes = opt.export_frontier();
        // Same metric layout, different cost parameters: the identity
        // guard must refuse — this model would cost the frontier's plans
        // differently, so resuming warm would serve wrong tradeoffs.
        let tweaked: SharedCostModel = Arc::new(StandardCostModel::new(
            MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 2],
                ..StandardCostModelConfig::default()
            },
        ));
        assert!(matches!(
            IamaOptimizer::import_frontier(tweaked, bytes.as_slice()),
            Err(SnapshotError::ModelMismatch(_))
        ));
    }

    #[test]
    fn export_is_deterministic_for_equal_state() {
        let a = warm_optimizer(3).export_frontier();
        let b = warm_optimizer(3).export_frontier();
        assert_eq!(a, b, "equal optimizer state must serialize identically");
    }

    #[test]
    fn sub_export_is_deterministic_for_equal_state() {
        // Satellite requirement: equal per-subset state ⇒ equal bytes.
        // The blob is the value of a content-addressed cache, so the
        // encoding must be canonical — trees sorted, edges sorted, no
        // iteration-order leakage from the indexes.
        let a = warm_optimizer(4);
        let b = warm_optimizer(4);
        for tables in TableSet::full(4).subsets() {
            if tables.len() < 2 {
                continue;
            }
            assert_eq!(
                a.export_subset(tables),
                b.export_subset(tables),
                "subset {:?} serialized differently for equal state",
                tables.iter().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn sub_round_trip_transplants_into_a_larger_query() {
        // chain(4) is the 4-table prefix of chain(5) (same alternating
        // cardinalities, same edge selectivities), so every sub-frontier
        // harvested from a warm chain(4) seeds the {0..3} subsets of a
        // cold chain(5).
        let donor = warm_optimizer(4);
        let spec5 = Arc::new(testkit::chain_query(5, 150_000));
        let mut cold = IamaOptimizer::new(spec5.clone(), model(), schedule());
        let mut seeded = IamaOptimizer::new(spec5, model(), schedule());
        let mut imported = 0usize;
        for tables in TableSet::full(4).subsets() {
            if tables.len() < 2 {
                continue;
            }
            // Disconnected subsets (e.g. {0, 2} in a chain) are not
            // enumerated and export nothing.
            if let Some(blob) = donor.export_subset(tables) {
                imported += seeded.import_subset(tables, &blob).unwrap();
            }
        }
        assert!(imported > 0, "no candidates transplanted");
        assert_eq!(seeded.stats().transplanted_candidates, imported as u64);
        assert!(seeded.stats().subsets_seeded > 0);

        let b = Bounds::unbounded(3);
        for r in 0..=schedule().r_max() {
            cold.optimize(&b, r);
            seeded.optimize(&b, r);
        }
        // Transplanted state must not change what the optimizer serves:
        // both frontiers cover each other within the Theorem 2 factor
        // (they are frontiers of the same query under the same ladder).
        use moqo_cost::coverage_factor;
        let guarantee = schedule().guarantee(schedule().r_max(), 5);
        let fc = cold.frontier(&b, schedule().r_max()).costs();
        let fs = seeded.frontier(&b, schedule().r_max()).costs();
        assert!(!fs.is_empty());
        assert!(coverage_factor(&fs, &fc) <= guarantee + 1e-9);
        assert!(coverage_factor(&fc, &fs) <= guarantee + 1e-9);
        // And it must pay: the seeded run generates fewer plans (the
        // transplanted Pareto plans win the door competition early, so
        // dominated combinations die before fanning out).
        let (gc, gs) = (cold.stats().plans_generated, seeded.stats().plans_generated);
        assert!(
            gs < gc,
            "transplant must reduce generation: cold={gc} seeded={gs}"
        );
    }

    #[test]
    fn sub_import_rejects_drifted_stats_and_foreign_models() {
        let donor = warm_optimizer(4);
        let tables = TableSet::from_positions(0..4);
        let blob = donor.export_subset(tables).expect("warm subset exports");
        // Same shape, drifted cardinalities: the stats backstop refuses
        // (this near miss is the rebase path's job, not the transplant's).
        let drifted = Arc::new(testkit::chain_query(5, 170_000));
        let mut opt = IamaOptimizer::new(drifted, model(), schedule());
        assert!(matches!(
            opt.import_subset(tables, &blob),
            Err(SnapshotError::Corrupt(_))
        ));
        // Same spec, different model identity: refused before any decode.
        use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};
        let tweaked: SharedCostModel = Arc::new(StandardCostModel::new(
            MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 2],
                ..StandardCostModelConfig::default()
            },
        ));
        let spec = Arc::new(testkit::chain_query(5, 150_000));
        let mut opt = IamaOptimizer::new(spec, tweaked, schedule());
        assert!(matches!(
            opt.import_subset(tables, &blob),
            Err(SnapshotError::ModelMismatch(_))
        ));
        // Byte corruption anywhere must never panic the decoder.
        let spec = Arc::new(testkit::chain_query(5, 150_000));
        let mut opt = IamaOptimizer::new(spec, model(), schedule());
        for i in 0..blob.len() {
            let mut bad = blob.clone();
            bad[i] ^= 0x5a;
            let _ = opt.import_subset(tables, &bad);
        }
    }

    #[test]
    fn rebase_replays_a_drifted_donor_and_still_converges() {
        // The donor refined under last hour's statistics; the recipient
        // sees the same query shape with drifted cardinalities. Rebase
        // re-admits the donor's plans as level-0 candidates re-costed
        // under the *new* stats, and the ladder converges to the same
        // frontier a cold run finds — with less generation.
        let donor = warm_optimizer(4);
        let drifted = Arc::new(testkit::chain_query(4, 165_000));
        let mut cold = IamaOptimizer::new(drifted.clone(), model(), schedule());
        let mut rebased = IamaOptimizer::new(drifted, model(), schedule());
        let admitted = rebased.rebase_from(&donor).unwrap();
        assert!(admitted > 0, "nothing rebased");
        assert_eq!(rebased.stats().rebased_candidates, admitted as u64);

        let b = Bounds::unbounded(3);
        for r in 0..=schedule().r_max() {
            cold.optimize(&b, r);
            rebased.optimize(&b, r);
        }
        use moqo_cost::coverage_factor;
        let guarantee = schedule().guarantee(schedule().r_max(), 4);
        let fc = cold.frontier(&b, schedule().r_max()).costs();
        let fr = rebased.frontier(&b, schedule().r_max()).costs();
        assert!(!fr.is_empty());
        assert!(coverage_factor(&fr, &fc) <= guarantee + 1e-9);
        assert!(coverage_factor(&fc, &fr) <= guarantee + 1e-9);
        let (gc, gr) = (
            cold.stats().plans_generated,
            rebased.stats().plans_generated,
        );
        assert!(
            gr < gc,
            "rebase must reduce generation: cold={gc} rebased={gr}"
        );
    }

    #[test]
    fn rebase_refuses_mismatched_shapes_and_warm_targets() {
        let donor = warm_optimizer(4);
        // Different shape: refused.
        let mut other = IamaOptimizer::new(
            Arc::new(testkit::star_query(3, 150_000)),
            model(),
            schedule(),
        );
        assert!(matches!(
            other.rebase_from(&donor),
            Err(SnapshotError::Corrupt(_))
        ));
        // A warm target would mix two refinement histories: refused.
        let mut warm = warm_optimizer(4);
        assert!(matches!(
            warm.rebase_from(&donor),
            Err(SnapshotError::Corrupt(_))
        ));
        // Different model identity: refused.
        use moqo_costmodel::{MetricSet, StandardCostModel, StandardCostModelConfig};
        let tweaked: SharedCostModel = Arc::new(StandardCostModel::new(
            MetricSet::paper(),
            StandardCostModelConfig {
                dops: vec![1, 2],
                ..StandardCostModelConfig::default()
            },
        ));
        let mut foreign = IamaOptimizer::new(
            Arc::new(testkit::chain_query(4, 165_000)),
            tweaked,
            schedule(),
        );
        assert!(matches!(
            foreign.rebase_from(&donor),
            Err(SnapshotError::ModelMismatch(_))
        ));
    }
}
