//! The tagged message envelopes a connection exchanges.
//!
//! One connection serves one ticket: the client opens with
//! [`ClientMessage::Submit`], the server answers
//! [`ServerMessage::Admission`], and from then on the client streams
//! [`ClientMessage::Command`]s while the server streams
//! [`ServerMessage::Event`]s (plus typed [`ServerMessage::Error`]s for
//! commands that could not be honored). Each envelope is one frame
//! payload; see [`crate::framing`] for the frame layout.

use moqo_core::wire::{WireDecode, WireEncode, WireError, WireReader, WireResult, WireWriter};
use moqo_core::{AdmissionResponse, ProtocolError, SessionCommand, SessionEvent, SessionRequest};
use moqo_costmodel::ModelResolver;

fn corrupt(msg: impl Into<String>) -> WireError {
    WireError::Corrupt(msg.into())
}

/// Client → server envelope.
#[derive(Clone, Debug)]
pub enum ClientMessage {
    /// Open the connection's session. Valid only as the first message;
    /// the per-session cost model (if any) travels by identity.
    Submit(SessionRequest),
    /// Steer the live session (Algorithm 1's event vocabulary).
    Command(SessionCommand),
    /// Ask the node for the parked frontier of one fingerprint, as
    /// self-validating [`export_frontier`] bytes. Valid only on a
    /// connection that has not submitted a session (a *control*
    /// connection); the fleet layer uses it to pull warm state off a
    /// node before rebalancing its shard away.
    ///
    /// [`export_frontier`]: moqo_core::IamaOptimizer::export_frontier
    PullFrontier {
        /// The `QueryFingerprint` whose parked frontier is requested,
        /// as its raw `u64`.
        fingerprint: u64,
    },
    /// Push one exported frontier onto the node, to be parked at its
    /// home shard. The bytes are validated at admission exactly like a
    /// `SnapshotStore` restore — magic, version, metric layout, and
    /// cost-model identity are all checked, never trusted — and the
    /// fingerprint is recomputed from the decoded spec, not taken from
    /// the sender. Valid only on a control connection.
    PushFrontier {
        /// Self-validating `export_frontier` bytes.
        frontier: Vec<u8>,
    },
}

/// The envelope kind of an encoded client frame, readable from its tag
/// byte alone. An event loop peeks this to route expensive frames
/// (submits, frontier transfers) to decode workers while dispatching
/// cheap ones inline — without paying a full [`ClientMessage::decode`]
/// on the loop thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientFrameKind {
    /// [`ClientMessage::Submit`].
    Submit,
    /// [`ClientMessage::Command`].
    Command,
    /// [`ClientMessage::PullFrontier`].
    PullFrontier,
    /// [`ClientMessage::PushFrontier`].
    PushFrontier,
}

impl ClientMessage {
    /// Peeks the envelope kind of an encoded payload from its tag byte,
    /// without decoding. `None` for an empty payload or an unknown tag
    /// (both decode errors; callers fault such frames).
    pub fn kind_of(payload: &[u8]) -> Option<ClientFrameKind> {
        match payload.first()? {
            0 => Some(ClientFrameKind::Submit),
            1 => Some(ClientFrameKind::Command),
            2 => Some(ClientFrameKind::PullFrontier),
            3 => Some(ClientFrameKind::PushFrontier),
            _ => None,
        }
    }

    /// Serializes the envelope into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            ClientMessage::Submit(request) => {
                w.u8(0);
                request.wire_encode(&mut w);
            }
            ClientMessage::Command(command) => {
                w.u8(1);
                command.encode(&mut w);
            }
            ClientMessage::PullFrontier { fingerprint } => {
                w.u8(2);
                w.u64(*fingerprint);
            }
            ClientMessage::PushFrontier { frontier } => {
                w.u8(3);
                w.u32(frontier.len() as u32);
                w.bytes(frontier);
            }
        }
        w.into_vec()
    }

    /// Deserializes one frame payload, resolving cost-model identities
    /// through `models`. The whole payload must be consumed — trailing
    /// bytes mean a framing bug or tampering, both fatal.
    pub fn decode(bytes: &[u8], models: &dyn ModelResolver) -> WireResult<ClientMessage> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            0 => ClientMessage::Submit(SessionRequest::wire_decode(&mut r, models)?),
            1 => ClientMessage::Command(SessionCommand::decode(&mut r)?),
            2 => ClientMessage::PullFrontier {
                fingerprint: r.u64()?,
            },
            3 => {
                let len = r.count("frontier bytes")?;
                ClientMessage::PushFrontier {
                    frontier: r.take(len)?.to_vec(),
                }
            }
            t => return Err(corrupt(format!("unknown client message tag {t}"))),
        };
        if !r.done() {
            return Err(corrupt("trailing bytes after client message"));
        }
        Ok(msg)
    }
}

/// Server → client envelope.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerMessage {
    /// The protocol-level answer to the connection's submit.
    Admission {
        /// The server-side ticket id (diagnostics; lets an operator
        /// correlate a connection with `MoqoServer` state).
        ticket: u64,
        /// Admitted / degraded / queued / rejected, exactly as the
        /// in-process front answers.
        response: AdmissionResponse,
    },
    /// One delta-streamed session update (boxed: events dwarf the other
    /// variants, and every message already crosses a heap-allocated
    /// frame).
    Event(Box<SessionEvent>),
    /// A request or command could not be honored; the session (if any)
    /// stays live unless the connection is closed alongside.
    Error(ProtocolError),
    /// The answer to both control messages. For
    /// [`ClientMessage::PullFrontier`]: the parked frontier's
    /// `export_frontier` bytes, or an empty `frontier` when nothing is
    /// parked under that fingerprint (a *miss*, not an error). For
    /// [`ClientMessage::PushFrontier`]: an acknowledgement carrying the
    /// admitted fingerprint (recomputed server-side from the decoded
    /// spec) and empty bytes; `fingerprint == 0` signals the push was
    /// refused by validation.
    FrontierBlob {
        /// The fingerprint the blob belongs to (pull), the admitted
        /// fingerprint (push ack), or `0` for a refused push.
        fingerprint: u64,
        /// Self-validating `export_frontier` bytes; empty on a pull
        /// miss and on every push acknowledgement.
        frontier: Vec<u8>,
    },
}

impl ServerMessage {
    /// Serializes the envelope into one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            ServerMessage::Admission { ticket, response } => {
                w.u8(0);
                w.u64(*ticket);
                response.encode(&mut w);
            }
            ServerMessage::Event(event) => {
                w.u8(1);
                event.encode(&mut w);
            }
            ServerMessage::Error(error) => {
                w.u8(2);
                error.encode(&mut w);
            }
            ServerMessage::FrontierBlob {
                fingerprint,
                frontier,
            } => {
                w.u8(3);
                w.u64(*fingerprint);
                w.u32(frontier.len() as u32);
                w.bytes(frontier);
            }
        }
        w.into_vec()
    }

    /// Deserializes one frame payload (trailing bytes rejected).
    pub fn decode(bytes: &[u8]) -> WireResult<ServerMessage> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            0 => ServerMessage::Admission {
                ticket: r.u64()?,
                response: AdmissionResponse::decode(&mut r)?,
            },
            1 => ServerMessage::Event(Box::new(SessionEvent::decode(&mut r)?)),
            2 => ServerMessage::Error(ProtocolError::decode(&mut r)?),
            3 => {
                let fingerprint = r.u64()?;
                let len = r.count("frontier bytes")?;
                ServerMessage::FrontierBlob {
                    fingerprint,
                    frontier: r.take(len)?.to_vec(),
                }
            }
            t => return Err(corrupt(format!("unknown server message tag {t}"))),
        };
        if !r.done() {
            return Err(corrupt("trailing bytes after server message"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::{FrontierDelta, RejectReason};
    use moqo_cost::{Bounds, ResolutionSchedule};
    use moqo_costmodel::{SharedCostModel, StandardCostModel};
    use moqo_query::testkit;
    use std::sync::Arc;

    #[test]
    fn client_messages_round_trip() {
        let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        let submit = ClientMessage::Submit(
            SessionRequest::new(Arc::new(testkit::chain_query(3, 10_000)))
                .with_cost_model(model.clone())
                .with_auto_ticks(2),
        );
        let bytes = submit.encode();
        match ClientMessage::decode(&bytes, &model).unwrap() {
            ClientMessage::Submit(req) => {
                assert_eq!(req.spec.name, "chain-3");
                assert_eq!(req.auto_ticks, Some(2));
                assert_eq!(
                    req.cost_model.as_ref().map(|m| m.identity()),
                    Some(model.identity())
                );
            }
            other => panic!("wrong envelope: {other:?}"),
        }
        let command = ClientMessage::Command(SessionCommand::SetBounds(Bounds::unbounded(3)));
        let bytes = command.encode();
        match ClientMessage::decode(&bytes, &model).unwrap() {
            ClientMessage::Command(SessionCommand::SetBounds(b)) => assert_eq!(b.dim(), 3),
            other => panic!("wrong envelope: {other:?}"),
        }
        let pull = ClientMessage::PullFrontier {
            fingerprint: 0xdead_beef_cafe_f00d,
        };
        match ClientMessage::decode(&pull.encode(), &model).unwrap() {
            ClientMessage::PullFrontier { fingerprint } => {
                assert_eq!(fingerprint, 0xdead_beef_cafe_f00d);
            }
            other => panic!("wrong envelope: {other:?}"),
        }
        for blob in [vec![], vec![0xab; 257]] {
            let push = ClientMessage::PushFrontier {
                frontier: blob.clone(),
            };
            match ClientMessage::decode(&push.encode(), &model).unwrap() {
                ClientMessage::PushFrontier { frontier } => assert_eq!(frontier, blob),
                other => panic!("wrong envelope: {other:?}"),
            }
        }
    }

    #[test]
    fn server_messages_round_trip() {
        let messages = [
            ServerMessage::Admission {
                ticket: 41,
                response: AdmissionResponse::Degraded {
                    schedule: ResolutionSchedule::linear(1, 1.3, 0.2),
                },
            },
            ServerMessage::Admission {
                ticket: 42,
                response: AdmissionResponse::Rejected(RejectReason::Overloaded { live: 9 }),
            },
            ServerMessage::Event(Box::new(SessionEvent {
                epoch: 1,
                delta: FrontierDelta::default(),
                resolution: 0,
                bounds: Bounds::unbounded(2),
                invocations: 1,
                report: None,
                first_report: None,
                outcome: None,
                coalesced: 0,
            })),
            ServerMessage::Error(ProtocolError::UnknownCostModel { identity: 7 }),
            ServerMessage::FrontierBlob {
                fingerprint: 0x1234_5678_9abc_def0,
                frontier: vec![1, 2, 3, 4, 5],
            },
            ServerMessage::FrontierBlob {
                fingerprint: 0,
                frontier: Vec::new(),
            },
        ];
        for msg in &messages {
            let bytes = msg.encode();
            assert_eq!(&ServerMessage::decode(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        let mut bytes = ClientMessage::Command(SessionCommand::Refine).encode();
        bytes.push(0);
        assert!(ClientMessage::decode(&bytes, &model).is_err());
        let mut bytes = ServerMessage::Error(ProtocolError::SessionFinished).encode();
        bytes.push(0);
        assert!(ServerMessage::decode(&bytes).is_err());
        let mut bytes = ClientMessage::PullFrontier { fingerprint: 1 }.encode();
        bytes.push(0);
        assert!(ClientMessage::decode(&bytes, &model).is_err());
        let mut bytes = ServerMessage::FrontierBlob {
            fingerprint: 1,
            frontier: vec![9],
        }
        .encode();
        bytes.push(0);
        assert!(ServerMessage::decode(&bytes).is_err());
    }

    #[test]
    fn frontier_blob_length_is_validated_against_remaining() {
        // A declared blob length past the end of the payload must fail
        // cleanly (no huge allocation, no panic): `count` checks the
        // declared count against the remaining bytes before `take`.
        let mut bytes = ClientMessage::PushFrontier {
            frontier: vec![7; 16],
        }
        .encode();
        // Tag byte, then the u32 length: inflate it.
        bytes[1] = 0xff;
        bytes[2] = 0xff;
        let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        assert!(ClientMessage::decode(&bytes, &model).is_err());
        for len in [0usize, 3, 15] {
            let truncated = &bytes[..len.min(bytes.len())];
            assert!(ClientMessage::decode(truncated, &model).is_err());
        }
    }
}
