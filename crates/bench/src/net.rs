//! Network-front experiment: submit→first-frontier latency over real
//! loopback TCP, cold versus warm (`repro net`).
//!
//! The serving experiment (`repro serve`) measures the in-process
//! interactive SLO; this one measures the same figure as a **remote**
//! client sees it — handshake, framed submit, admission frame, and
//! delta-streamed events over a socket — so the table shows what the
//! wire adds on top of the engine, and that warm-frontier economy (first
//! invocation of a repeated query generates zero plans) survives the
//! network boundary intact.

use moqo_core::protocol::{SessionCommand, SessionRequest};
use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::{EngineConfig, ModelRegistry};
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{
    AdmissionConfig, MoqoServer, NetClient, NetConfig, NetServer, ServeConfig, ShardConfig,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::harness::{Experiment, ExperimentReport, Trial};
use crate::stats::{Samples, Summary};

const IDLE: Duration = Duration::from_secs(600);

/// A small mixed workload of **distinct** fingerprints: the cold pass
/// sees every template for the first time, the warm pass repeats the
/// exact list (so zero-plan starts cleanly separate the two passes).
pub fn net_workload(fast: bool) -> Vec<Arc<QuerySpec>> {
    let mut specs: Vec<Arc<QuerySpec>> = Vec::new();
    let top = if fast { 3 } else { 5 };
    for n in 2..=top {
        specs.push(Arc::new(testkit::chain_query(n, 60_000)));
        specs.push(Arc::new(testkit::star_query(n, 90_000)));
    }
    specs
}

/// Server, listener, and workload shared by the cold and warm passes.
struct NetState {
    net: NetServer,
    specs: Vec<Arc<QuerySpec>>,
}

/// Drives every spec through its own connection, recording
/// submit→first-frontier latency; each session is cancelled afterwards so
/// its frontier parks for the warm pass.
fn run_phase(state: &mut NetState, trial: &mut Trial) {
    let addr = state.net.local_addr();
    let mut us = Samples::with_capacity(state.specs.len());
    let mut zero_plan_starts = 0u64;
    for spec in &state.specs {
        let mut client = NetClient::connect(addr).expect("connect over loopback");
        let t0 = Instant::now();
        client
            .submit(SessionRequest::new(spec.clone()), IDLE)
            .expect("admitted");
        while client.view().frontier.is_empty() {
            client.recv(IDLE).expect("healthy stream");
        }
        us.push(t0.elapsed().as_secs_f64() * 1e6);
        // The first report may trail the first frontier by one event.
        while client.view().first_report.is_none() {
            client.recv(IDLE).expect("healthy stream");
        }
        if client
            .view()
            .first_report
            .as_ref()
            .is_some_and(|r| r.plans_generated == 0)
        {
            zero_plan_starts += 1;
        }
        client.command(SessionCommand::Cancel).expect("send");
        client.wait_finished(IDLE).expect("terminal event");
    }
    trial.int("sessions", state.specs.len() as u64);
    trial.summary_us("", Summary::of_or_zero(&us));
    trial.int("zero_plan_starts", zero_plan_starts);
}

/// Starts a loopback [`NetServer`] and runs the cold and warm passes.
pub fn net_serving_experiment(fast: bool) -> ExperimentReport {
    Experiment::new("net", fast, move || {
        let model: moqo_costmodel::SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        let server = Arc::new(MoqoServer::new(
            model.clone(),
            ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.02, 0.4),
            ServeConfig {
                shard: ShardConfig {
                    shards: 2,
                    engine: EngineConfig {
                        workers: 2,
                        ..EngineConfig::default()
                    },
                    rebalance_headroom: 8,
                },
                admission: AdmissionConfig::default(),
                retired_tickets: 4096,
            },
        ));
        let registry = Arc::new(ModelRegistry::with_default(model));
        let net =
            NetServer::bind(server, registry, NetConfig::default()).expect("bind 127.0.0.1:0");
        let specs = net_workload(fast);
        NetState { net, specs }
    })
    .title("network serving: submit -> first frontier over loopback TCP")
    // Cold pass: every fingerprint is new; cancelled sessions park.
    // Warm pass: repeats resume parked frontiers across the wire.
    .variant("wire latency", "cold", run_phase)
    .variant("wire latency", "warm", run_phase)
    .conclusion(
        "warm repeats resume parked frontiers across the wire: every warm \
         session starts at zero generated plans.",
    )
    .teardown(|state| state.net.shutdown())
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_pass_survives_the_wire() {
        let report = net_serving_experiment(true);
        let sessions = |label: &str| report.metric(label, "sessions").unwrap().as_u64().unwrap();
        let zero = |label: &str| {
            report
                .metric(label, "zero_plan_starts")
                .unwrap()
                .as_u64()
                .unwrap()
        };
        assert_eq!(sessions("cold"), sessions("warm"));
        assert_eq!(zero("cold"), 0, "first sight cannot be warm");
        // Sequential sessions: every warm repeat resumes its own parked
        // frontier, so the whole warm pass starts at zero plans.
        assert_eq!(zero("warm"), sessions("warm"));
        let mean = |label: &str| report.metric(label, "mean_us").unwrap().as_f64().unwrap();
        assert!(mean("cold") > 0.0 && mean("warm") > 0.0);
    }
}
