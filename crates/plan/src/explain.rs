//! Textual plan rendering (an `EXPLAIN`-style tree).

use crate::arena::{PlanArena, PlanId};
use crate::operator::{JoinAlgo, Operator, ScanMethod};
use std::fmt::Write as _;

/// Renders the plan tree rooted at `id` as an indented multi-line string.
///
/// ```text
/// HashJoin(dop=2) tables={0,1,2} cost=(12.0, 2.0, 0.0)
///   HashJoin(dop=1) tables={0,1} cost=(8.0, 1.0, 0.0)
///     FullScan(t0) ...
///     FullScan(t1) ...
///   SampledScan(t2, 25.0%) ...
/// ```
pub fn explain(arena: &PlanArena, id: PlanId) -> String {
    let mut out = String::new();
    render(arena, id, 0, &mut out);
    out
}

fn render(arena: &PlanArena, id: PlanId, depth: usize, out: &mut String) {
    let node = arena.node(id);
    for _ in 0..depth {
        out.push_str("  ");
    }
    match node.op {
        Operator::Scan { position, method } => match method {
            ScanMethod::Full => {
                let _ = write!(out, "FullScan(t{position})");
            }
            ScanMethod::Sampled { rate_pm } => {
                let _ = write!(
                    out,
                    "SampledScan(t{position}, {:.1}%)",
                    rate_pm as f64 / 10.0
                );
            }
        },
        Operator::Join { algo, dop } => {
            let name = match algo {
                JoinAlgo::Hash => "HashJoin",
                JoinAlgo::SortMerge => "SortMergeJoin",
                JoinAlgo::NestedLoop => "NestedLoopJoin",
            };
            let _ = write!(out, "{name}(dop={dop})");
        }
    }
    let _ = write!(out, " tables={:?} cost={}", node.tables, node.cost);
    out.push('\n');
    if let Some((l, r)) = node.children {
        render(arena, l, depth + 1, out);
        render(arena, r, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::props::PhysicalProps;
    use moqo_cost::CostVector;

    #[test]
    fn explain_renders_tree_shape() {
        let mut arena = PlanArena::new();
        let c = CostVector::new(&[1.0]);
        let s0 = arena.push_scan(Operator::full_scan(0), 0, c, PhysicalProps::NONE);
        let s1 = arena.push_scan(Operator::sampled_scan(1, 250), 1, c, PhysicalProps::NONE);
        let j = arena.push_join(
            Operator::join(JoinAlgo::SortMerge, 4),
            s0,
            s1,
            c,
            PhysicalProps::NONE,
        );
        let text = explain(&arena, j);
        assert!(text.starts_with("SortMergeJoin(dop=4)"));
        assert!(text.contains("\n  FullScan(t0)"));
        assert!(text.contains("\n  SampledScan(t1, 25.0%)"));
        assert_eq!(text.lines().count(), 3);
    }
}
