//! Lane-parallel kernels over struct-of-arrays cost storage.
//!
//! The pruning hot path (Algorithm 3 line 7) evaluates the same three
//! predicates — bounds respect, approximate dominance, and the minimal
//! domination factor — against every stored plan of a cell. When the
//! costs are laid out as one contiguous `f64` lane per metric (as
//! `moqo-index`'s cell grid stores them), those predicates become
//! branch-light loops over `[f64; LANES]` chunks that the compiler
//! auto-vectorizes on stable Rust; no intrinsics, no nightly.
//!
//! All kernels operate on *blocks* of at most [`BLOCK`] rows so that the
//! predicate results fit a single `u64` hit mask (bit `j` = row
//! `start + j`), and all are **bit-exact** with their scalar
//! counterparts: the same comparisons on the same values in the same
//! per-row order, so a batched caller makes byte-identical decisions —
//! the kernels change time, never bytes.
//!
//! `lanes[m]` is the full column of metric `m`; every kernel reads the
//! rows `start .. start + n` of each column.

/// Width of the explicit vectorization chunks (`[f64; LANES]`), chosen
/// to fill one AVX2 register / two NEON registers per chunk.
pub const LANES: usize = 4;

/// Maximum rows per kernel call: one `u64` hit mask worth.
pub const BLOCK: usize = 64;

/// The mask selecting all of the first `n` rows of a block.
#[inline]
pub fn full_mask(n: usize) -> u64 {
    debug_assert!(n <= BLOCK);
    if n == BLOCK {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Per-metric mask accumulation: AND into `mask` the rows whose value in
/// `col` satisfies `v <= limit`.
#[inline]
fn and_le_mask(mask: u64, col: &[f64], limit: f64) -> u64 {
    let mut bits = 0u64;
    let mut base = 0usize;
    let mut chunks = col.chunks_exact(LANES);
    for c in &mut chunks {
        let mut lane_bits = 0u64;
        for (j, v) in c.iter().enumerate() {
            lane_bits |= ((*v <= limit) as u64) << j;
        }
        bits |= lane_bits << base;
        base += LANES;
    }
    for (j, v) in chunks.remainder().iter().enumerate() {
        bits |= ((*v <= limit) as u64) << (base + j);
    }
    mask & bits
}

/// Lane variant of [`crate::Bounds::respects`]: the hit mask of rows
/// `start .. start + n` whose cost respects `limits` on every metric
/// (`lanes[m][row] <= limits[m]` for all `m`).
///
/// Metrics with an infinite limit are skipped — every stored cost
/// satisfies them (costs are never NaN by [`crate::CostVector::new`]'s
/// contract), so the result is identical, just cheaper.
pub fn respects_lanes(lanes: &[&[f64]], limits: &[f64], start: usize, n: usize) -> u64 {
    debug_assert!(n <= BLOCK);
    debug_assert_eq!(lanes.len(), limits.len());
    let mut mask = full_mask(n);
    for (col, &limit) in lanes.iter().zip(limits) {
        if limit == f64::INFINITY {
            continue;
        }
        mask = and_le_mask(mask, &col[start..start + n], limit);
        if mask == 0 {
            return 0;
        }
    }
    mask
}

/// Lane variant of [`crate::CostVector::dominates_scaled`]: the hit mask
/// of rows whose cost approximately dominates `target` with precision
/// `factor` (`lanes[m][row] <= factor * target[m]` for all `m`).
///
/// The per-metric threshold `factor * target[m]` is the exact product
/// the scalar test computes per comparison, so hits are bit-identical.
pub fn dominates_scaled_lanes(
    lanes: &[&[f64]],
    target: &[f64],
    factor: f64,
    start: usize,
    n: usize,
) -> u64 {
    debug_assert!(n <= BLOCK);
    debug_assert_eq!(lanes.len(), target.len());
    let mut mask = full_mask(n);
    for (col, &t) in lanes.iter().zip(target) {
        mask = and_le_mask(mask, &col[start..start + n], factor * t);
        if mask == 0 {
            return 0;
        }
    }
    mask
}

/// Lane variant of [`crate::CostVector::domination_factor`]: writes into
/// `out[j]` the smallest `alpha` such that row `start + j` dominates
/// `target` when `target` is scaled by `alpha`.
///
/// Per row this is `max` over metrics of `a / target[m]` (skipping
/// `a <= 0`, which any factor covers); a zero target component under a
/// positive `a` yields `a / 0 = +inf`, reproducing the scalar early
/// return bit for bit. IEEE max over the same operands is
/// order-independent here (no NaNs: costs are non-negative and `0/0`
/// cannot occur because `a > 0` guards the division).
pub fn domination_factor_lanes(
    lanes: &[&[f64]],
    target: &[f64],
    start: usize,
    n: usize,
    out: &mut [f64; BLOCK],
) {
    debug_assert!(n <= BLOCK);
    debug_assert_eq!(lanes.len(), target.len());
    out[..n].fill(0.0);
    for (col, &t) in lanes.iter().zip(target) {
        let col = &col[start..start + n];
        let mut chunks = col.chunks_exact(LANES);
        let mut acc = out[..n].chunks_exact_mut(LANES);
        for (c, o) in (&mut chunks).zip(&mut acc) {
            for j in 0..LANES {
                let a = c[j];
                let f = if a > 0.0 { a / t } else { 0.0 };
                o[j] = o[j].max(f);
            }
        }
        for (a, o) in chunks.remainder().iter().zip(acc.into_remainder()) {
            let f = if *a > 0.0 { *a / t } else { 0.0 };
            *o = o.max(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bounds, CostVector};

    fn columns(rows: &[CostVector]) -> Vec<Vec<f64>> {
        let dim = rows.first().map_or(0, |c| c.dim());
        (0..dim)
            .map(|m| rows.iter().map(|c| c[m]).collect())
            .collect()
    }

    fn refs(cols: &[Vec<f64>]) -> Vec<&[f64]> {
        cols.iter().map(|c| c.as_slice()).collect()
    }

    #[test]
    fn full_mask_shapes() {
        assert_eq!(full_mask(0), 0);
        assert_eq!(full_mask(1), 1);
        assert_eq!(full_mask(5), 0b11111);
        assert_eq!(full_mask(BLOCK), u64::MAX);
    }

    #[test]
    fn respects_matches_scalar() {
        let rows: Vec<CostVector> = (0..11)
            .map(|i| CostVector::new(&[i as f64, (10 - i) as f64]))
            .collect();
        let cols = columns(&rows);
        let bounds = Bounds::from_slice(&[6.0, 8.0]);
        let mask = respects_lanes(&refs(&cols), bounds.limits().as_slice(), 0, rows.len());
        for (i, c) in rows.iter().enumerate() {
            assert_eq!(mask >> i & 1 == 1, bounds.respects(c), "row {i}");
        }
    }

    #[test]
    fn respects_skips_unbounded_metrics() {
        let rows: Vec<CostVector> = vec![
            CostVector::new(&[1.0, f64::INFINITY]),
            CostVector::new(&[9.0, 2.0]),
        ];
        let cols = columns(&rows);
        let bounds = Bounds::unbounded(2).with_limit(0, 5.0);
        let mask = respects_lanes(&refs(&cols), bounds.limits().as_slice(), 0, 2);
        assert_eq!(mask, 0b01);
    }

    #[test]
    fn dominates_scaled_matches_scalar() {
        let rows: Vec<CostVector> = (0..9)
            .map(|i| CostVector::new(&[1.0 + i as f64 * 0.3, 4.0 - i as f64 * 0.2]))
            .collect();
        let cols = columns(&rows);
        let target = CostVector::new(&[1.7, 2.1]);
        for factor in [0.5, 1.0, 1.3, 2.0] {
            let mask = dominates_scaled_lanes(&refs(&cols), target.as_slice(), factor, 0, 9);
            for (i, c) in rows.iter().enumerate() {
                assert_eq!(
                    mask >> i & 1 == 1,
                    c.dominates_scaled(&target, factor),
                    "row {i} factor {factor}"
                );
            }
        }
    }

    #[test]
    fn domination_factor_matches_scalar_bits() {
        let rows: Vec<CostVector> = vec![
            CostVector::new(&[2.0, 6.0]),
            CostVector::new(&[0.0, 0.0]),
            CostVector::new(&[1.0, 0.0]),
            CostVector::new(&[0.3, 7.7]),
        ];
        let cols = columns(&rows);
        // A zero target component forces the infinite-factor path.
        for target in [CostVector::new(&[1.0, 2.0]), CostVector::new(&[0.0, 1.0])] {
            let mut out = [0.0; BLOCK];
            domination_factor_lanes(&refs(&cols), target.as_slice(), 0, rows.len(), &mut out);
            for (i, c) in rows.iter().enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    c.domination_factor(&target).to_bits(),
                    "row {i} target {target:?}"
                );
            }
        }
    }

    #[test]
    fn kernels_respect_the_start_offset() {
        let rows: Vec<CostVector> = (0..7).map(|i| CostVector::new(&[i as f64])).collect();
        let cols = columns(&rows);
        let mask = respects_lanes(&refs(&cols), &[4.0], 3, 4);
        // Rows 3, 4 pass; rows 5, 6 exceed the limit.
        assert_eq!(mask, 0b0011);
        let mut out = [0.0; BLOCK];
        domination_factor_lanes(&refs(&cols), &[2.0], 5, 2, &mut out);
        assert_eq!(out[0], 2.5);
        assert_eq!(out[1], 3.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::{Bounds, CostVector};
    use proptest::prelude::*;

    fn lane_vecs(rows: &[Vec<f64>], dim: usize) -> Vec<Vec<f64>> {
        (0..dim)
            .map(|m| rows.iter().map(|r| r[m]).collect())
            .collect()
    }

    proptest! {
        /// Every kernel agrees bit for bit with its scalar counterpart
        /// on arbitrary non-negative costs (including zeros).
        #[test]
        fn lanes_agree_with_scalar(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0f64..1e6, 3), 0..BLOCK + 1),
            target in proptest::collection::vec(0.0f64..1e6, 3),
            limits in proptest::collection::vec(0.0f64..1e6, 3),
            factor in 0.5f64..3.0,
        ) {
            let dim = 3;
            let cols = lane_vecs(&rows, dim);
            let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
            let t = CostVector::new(&target);
            let b = Bounds::from_slice(&limits);
            let n = rows.len();
            let respects = respects_lanes(&refs, b.limits().as_slice(), 0, n);
            let scaled = dominates_scaled_lanes(&refs, t.as_slice(), factor, 0, n);
            let mut factors = [0.0; BLOCK];
            domination_factor_lanes(&refs, t.as_slice(), 0, n, &mut factors);
            for (i, r) in rows.iter().enumerate() {
                let c = CostVector::new(r);
                prop_assert_eq!(respects >> i & 1 == 1, b.respects(&c));
                prop_assert_eq!(scaled >> i & 1 == 1, c.dominates_scaled(&t, factor));
                prop_assert_eq!(factors[i].to_bits(), c.domination_factor(&t).to_bits());
            }
        }
    }
}
