//! ASCII scatter plots of cost vectors.

use moqo_cost::{Bounds, CostVector};

/// Options for [`render_scatter`].
#[derive(Clone, Debug)]
pub struct ScatterOptions {
    /// Plot width in characters (at least 16).
    pub width: usize,
    /// Plot height in characters (at least 8).
    pub height: usize,
    /// Index of the metric on the x axis.
    pub x_metric: usize,
    /// Index of the metric on the y axis.
    pub y_metric: usize,
    /// Label of the x axis.
    pub x_label: String,
    /// Label of the y axis.
    pub y_label: String,
    /// Optional cost bounds drawn as `|`/`-` lines.
    pub bounds: Option<Bounds>,
}

impl Default for ScatterOptions {
    fn default() -> Self {
        Self {
            width: 60,
            height: 20,
            x_metric: 0,
            y_metric: 1,
            x_label: "metric 0".into(),
            y_label: "metric 1".into(),
            bounds: None,
        }
    }
}

/// Renders cost vectors as an ASCII scatter plot (`*` marks a tradeoff,
/// `#` marks several in one character cell, `|`/`-` mark bounds).
///
/// Returns a multi-line string; empty input produces an empty plot frame.
pub fn render_scatter(points: &[CostVector], opts: &ScatterOptions) -> String {
    let w = opts.width.max(16);
    let h = opts.height.max(8);
    let xs: Vec<f64> = points.iter().map(|c| c[opts.x_metric]).collect();
    let ys: Vec<f64> = points.iter().map(|c| c[opts.y_metric]).collect();
    let bound_x = opts
        .bounds
        .map(|b| b.limits()[opts.x_metric])
        .filter(|v| v.is_finite());
    let bound_y = opts
        .bounds
        .map(|b| b.limits()[opts.y_metric])
        .filter(|v| v.is_finite());

    let max_or = |vals: &[f64], extra: Option<f64>, default: f64| {
        vals.iter().copied().chain(extra).fold(default, f64::max)
    };
    let x_max = max_or(&xs, bound_x, 1e-9) * 1.05;
    let y_max = max_or(&ys, bound_y, 1e-9) * 1.05;

    let mut grid = vec![vec![' '; w]; h];
    // Bounds lines first so points overwrite them.
    if let Some(bx) = bound_x {
        let col = ((bx / x_max) * (w - 1) as f64).round() as usize;
        for row in grid.iter_mut() {
            row[col.min(w - 1)] = '|';
        }
    }
    if let Some(by) = bound_y {
        let r = h - 1 - (((by / y_max) * (h - 1) as f64).round() as usize).min(h - 1);
        for c in grid[r].iter_mut() {
            if *c == ' ' {
                *c = '-';
            }
        }
    }
    for (x, y) in xs.iter().zip(&ys) {
        let col = (((x / x_max) * (w - 1) as f64).round() as usize).min(w - 1);
        let row = h - 1 - ((((y / y_max) * (h - 1) as f64).round() as usize).min(h - 1));
        grid[row][col] = match grid[row][col] {
            '*' | '#' => '#',
            _ => '*',
        };
    }

    let mut out = String::new();
    out.push_str(&format!("{} ^\n", opts.y_label));
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(w));
    out.push_str("> ");
    out.push_str(&opts.x_label);
    out.push('\n');
    out.push_str(&format!(
        "  x: 0..{x_max:.3}  y: 0..{y_max:.3}  ({} plans)\n",
        points.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_frame() {
        let points = vec![
            CostVector::new(&[1.0, 9.0]),
            CostVector::new(&[5.0, 5.0]),
            CostVector::new(&[9.0, 1.0]),
        ];
        let s = render_scatter(&points, &ScatterOptions::default());
        assert!(s.contains('*'));
        assert!(s.contains("(3 plans)"));
        assert!(s.lines().count() > 20);
    }

    #[test]
    fn overlapping_points_become_hash() {
        let points = vec![CostVector::new(&[1.0, 1.0]); 5];
        let s = render_scatter(&points, &ScatterOptions::default());
        assert!(s.contains('#'));
    }

    #[test]
    fn bounds_are_drawn() {
        let points = vec![CostVector::new(&[2.0, 2.0])];
        let opts = ScatterOptions {
            bounds: Some(Bounds::from_slice(&[4.0, 4.0])),
            ..ScatterOptions::default()
        };
        let s = render_scatter(&points, &opts);
        // Frame rows contribute one '|' each; the vertical bound line
        // contributes roughly one more per row.
        assert!(s.matches('|').count() > opts.height);
        assert!(s.contains('-'));
    }

    #[test]
    fn empty_input_still_renders_a_frame() {
        let s = render_scatter(&[], &ScatterOptions::default());
        assert!(s.contains("(0 plans)"));
    }

    #[test]
    fn infinite_bounds_are_ignored() {
        let points = vec![CostVector::new(&[2.0, 2.0])];
        let opts = ScatterOptions {
            bounds: Some(Bounds::unbounded(2)),
            ..ScatterOptions::default()
        };
        let s = render_scatter(&points, &opts);
        // Only the frame's left border contributes '|' characters (one
        // per plot row); no extra bound column is drawn.
        let bars = s.matches('|').count();
        assert_eq!(bars, opts.height);
    }
}
