//! The TCP serving front: the session protocol over real sockets.
//!
//! [`NetServer`] wraps a [`MoqoServer`] behind a loopback-or-LAN TCP
//! listener speaking the [`moqo_wire`] format: one framed duplex stream
//! per ticket, multiplexed over a small pool of I/O worker threads. A
//! connection's lifecycle is exactly the in-process ticket lifecycle:
//!
//! 1. handshake (`MOQOWIRE` + version, both directions);
//! 2. client sends [`ClientMessage::Submit`] — the same
//!    [`SessionRequest`] type that drives every in-process layer, with
//!    per-session cost models resolved **by identity** against the
//!    server's [`ModelRegistry`];
//! 3. server answers [`ServerMessage::Admission`] (admitted / degraded /
//!    queued / rejected — the protocol's [`AdmissionResponse`], typed,
//!    end to end) and then streams [`ServerMessage::Event`]s;
//! 4. client steers with [`ClientMessage::Command`]s; command faults come
//!    back as typed [`ServerMessage::Error`]s, never a dropped socket;
//! 5. the stream ends with the session's terminal event (selection,
//!    cancellation, or preference auto-select). A client that simply
//!    disconnects retires its session, parking the frontier for future
//!    warm starts — a vanished user never leaks a session slot.
//!
//! [`NetClient`] is the matching blocking client: it folds the event
//! stream into a [`SessionView`] with the same `fold` the in-process
//! reassemblers use, so the client-side view is **bit-identical** to what
//! `MoqoServer::poll` reports on the server (asserted end to end by
//! `examples/network_serving.rs` and the cross-layer conformance test).
//!
//! The server owns its tickets' event channels: polling the same ticket
//! concurrently through the in-process API while a connection is live
//! would steal events from the stream. Diagnostics should use
//! [`NetServer::moqo`] only after the connection finished (the admission
//! frame carries the ticket id for exactly this correlation).

use crate::api::{MoqoServer, Ticket, TicketStatus};
use crate::persist::SnapshotStore;
use moqo_core::protocol::{
    AdmissionResponse, FrontierDelta, ProtocolError, SessionCommand, SessionEvent, SessionRequest,
    SessionView,
};
use moqo_core::IamaOptimizer;
use moqo_engine::{ModelRegistry, QueryFingerprint};
use moqo_wire::{
    check_hello, client_hello, ClientMessage, FrameBuffer, NetError, ServerMessage, WireError,
    HELLO_LEN,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Network front configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// I/O worker threads; each multiplexes a share of the open
    /// connections. The optimizer work itself runs on the engine's shard
    /// workers, so a handful of I/O threads serves many connections.
    pub io_threads: usize,
    /// Per-connection socket read timeout — the pacing of one worker
    /// loop visit when a connection is idle.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout. A client that stops reading
    /// while the server streams events fills the TCP send buffer; the
    /// write timeout bounds how long that client can hold a worker
    /// thread before its connection is faulted and retired.
    pub write_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            io_threads: 2,
            read_timeout: Duration::from_millis(1),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// Aggregate network-front counters.
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    /// Connections accepted since bind.
    pub accepted: u64,
    /// Frames received from clients.
    pub frames_in: u64,
    /// Frames sent to clients.
    pub frames_out: u64,
    /// Connections dropped on a wire/socket fault (malformed frames,
    /// version skew, mid-stream disconnects).
    pub faulted: u64,
    /// Sessions the engine routed to an exact parked frontier (summed
    /// over shards; includes in-process traffic on the shared server).
    pub warm_routed: u64,
    /// Sessions the engine routed to a rebase donor — a parked frontier
    /// of the same shape under drifted catalog cardinalities.
    pub rebase_routed: u64,
    /// Sub-frontier transplant cache hits: table subsets of admitted
    /// queries seeded from state harvested off *similar* queries.
    pub subfrontier_hits: u64,
    /// Sub-frontier transplant cache misses.
    pub subfrontier_misses: u64,
    /// Sessions the engine started cold — no parked frontier, no rebase
    /// donor (summed over shards; with `warm_routed` and
    /// `rebase_routed` this is the per-node route breakdown a fleet
    /// router balances on).
    pub cold_routed: u64,
    /// Sessions a non-home shard absorbed under rebalance headroom.
    pub rebalanced_in: u64,
    /// Admitted, not-yet-finished sessions right now (load figure).
    pub live: u64,
    /// Sessions parked because their connection disconnected or faulted
    /// before the terminal event — warm state captured off vanished
    /// clients.
    pub disconnect_parked: u64,
    /// `PullFrontier` control requests served (hits and misses both).
    pub frontier_pulls: u64,
    /// `PullFrontier` requests that found nothing parked and nothing in
    /// the snapshot store.
    pub frontier_misses: u64,
    /// `PushFrontier` control requests accepted and parked.
    pub frontier_pushes: u64,
    /// `PushFrontier` requests refused by snapshot validation.
    pub frontier_refused: u64,
}

#[derive(Default)]
struct NetCounters {
    accepted: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    faulted: AtomicU64,
    disconnect_parked: AtomicU64,
    frontier_pulls: AtomicU64,
    frontier_misses: AtomicU64,
    frontier_pushes: AtomicU64,
    frontier_refused: AtomicU64,
}

/// What one pump of a connection concluded.
enum Pump {
    /// Keep the connection; true if any byte or frame moved.
    Keep(bool),
    /// Drop the connection (stream ended or faulted).
    Close,
}

/// One client connection: handshake, then at most one ticket.
struct Conn {
    stream: TcpStream,
    frames: FrameBuffer,
    hello_done: bool,
    ticket: Option<Ticket>,
    /// True once the client's view was primed (the full-state event sent
    /// after activation); channel events forward only after this.
    primed: bool,
    /// True once the terminal event was forwarded (the session needs no
    /// clean-up on disconnect).
    finished: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            frames: FrameBuffer::new(),
            hello_done: false,
            ticket: None,
            primed: false,
            finished: false,
        }
    }

    fn send(&mut self, msg: &ServerMessage, counters: &NetCounters) -> Result<(), NetError> {
        moqo_wire::write_frame(&mut self.stream, &msg.encode())?;
        counters.frames_out.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// A full-state event reconstructed from the server-side view at
    /// attach time: folding it into a fresh client view reproduces the
    /// server's view exactly, and subsequent live deltas continue from
    /// its epoch. This is how a stream "joins" a session whose priming
    /// event the server consumed at activation (including sessions that
    /// sat queued first).
    fn prime_event(server: &MoqoServer, view: &SessionView) -> SessionEvent {
        SessionEvent {
            epoch: view.epoch,
            delta: FrontierDelta::full(&view.frontier),
            resolution: view.resolution,
            bounds: view.bounds.unwrap_or_else(|| server.engine().unbounded()),
            invocations: view.invocations,
            report: view.last_report.clone(),
            first_report: view.first_report.clone(),
            outcome: view.outcome,
        }
    }

    /// Advances the connection: read, handshake, dispatch frames, prime,
    /// forward events. Any fault retires the connection (and parks its
    /// session).
    fn pump(
        &mut self,
        server: &Arc<MoqoServer>,
        registry: &Arc<ModelRegistry>,
        store: Option<&Arc<SnapshotStore>>,
        counters: &NetCounters,
    ) -> Pump {
        match self.try_pump(server, registry, store, counters) {
            Ok(keep) => keep,
            Err(_) => {
                counters.faulted.fetch_add(1, Ordering::Relaxed);
                self.retire(server, counters);
                Pump::Close
            }
        }
    }

    fn try_pump(
        &mut self,
        server: &Arc<MoqoServer>,
        registry: &Arc<ModelRegistry>,
        store: Option<&Arc<SnapshotStore>>,
        counters: &NetCounters,
    ) -> Result<Pump, NetError> {
        let mut progressed = false;

        // --- Drain the socket (reads block at most the configured
        // read timeout, which paces the whole loop when idle). ---
        let mut scratch = [0u8; 8192];
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    // Orderly client close: retire the session (parking
                    // its warm frontier) unless it already finished.
                    self.retire(server, counters);
                    return Ok(Pump::Close);
                }
                Ok(n) => {
                    self.frames.extend(&scratch[..n]);
                    progressed = true;
                    if self.frames.buffered() > 1 << 20 {
                        break; // keep one conn from starving its worker
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    break;
                }
                Err(e) => return Err(e.into()),
            }
        }

        // --- Handshake: raw hello in, raw hello out. ---
        if !self.hello_done {
            let Some(hello) = self.frames.take_raw(HELLO_LEN) else {
                return Ok(Pump::Keep(progressed));
            };
            check_hello(&hello.try_into().expect("take_raw returned HELLO_LEN"))?;
            self.stream.write_all(&client_hello())?;
            self.hello_done = true;
            progressed = true;
        }

        // --- Dispatch complete frames. ---
        while let Some(payload) = self.frames.next_frame()? {
            counters.frames_in.fetch_add(1, Ordering::Relaxed);
            progressed = true;
            let msg = match ClientMessage::decode(&payload, registry.as_ref()) {
                Ok(msg) => msg,
                Err(WireError::UnknownModel { identity }) => {
                    // The one wire fault with a protocol-level answer:
                    // tell the client which identity was unknown, then
                    // drop the connection.
                    let _ = self.send(
                        &ServerMessage::Error(ProtocolError::UnknownCostModel { identity }),
                        counters,
                    );
                    return Err(WireError::UnknownModel { identity }.into());
                }
                Err(e) => return Err(e.into()),
            };
            match (msg, self.ticket) {
                (ClientMessage::Submit(request), None) => match server.submit(request) {
                    Ok((ticket, response)) => {
                        self.ticket = Some(ticket);
                        let admitted = response.is_admitted();
                        let rejected = matches!(response, AdmissionResponse::Rejected(_));
                        self.send(
                            &ServerMessage::Admission {
                                ticket: ticket.as_u64(),
                                response,
                            },
                            counters,
                        )?;
                        if rejected {
                            self.finished = true;
                            return Ok(Pump::Close);
                        }
                        if admitted {
                            self.prime(server, counters)?;
                        }
                    }
                    Err(protocol_error) => {
                        // Malformed request: typed answer, then close —
                        // exactly what the in-process submit returns.
                        self.send(&ServerMessage::Error(protocol_error.clone()), counters)?;
                        return Err(protocol_error.into());
                    }
                },
                (ClientMessage::Command(command), Some(ticket)) => {
                    if let Err(protocol_error) = server.command(ticket, command) {
                        self.send(&ServerMessage::Error(protocol_error), counters)?;
                    }
                }
                (ClientMessage::Command(_), None) => {
                    return Err(NetError::UnexpectedFrame("command before submit"));
                }
                (ClientMessage::Submit(_), Some(_)) => {
                    return Err(NetError::UnexpectedFrame("second submit on one stream"));
                }
                (ClientMessage::PullFrontier { fingerprint }, None) => {
                    // Control request: ship the parked frontier for this
                    // fingerprint, falling back to the shared snapshot
                    // store — the adopt-after-death path re-parks the
                    // dead home's last persisted state on first demand.
                    counters.frontier_pulls.fetch_add(1, Ordering::Relaxed);
                    let fp = QueryFingerprint::from_u64(fingerprint);
                    let engine = server.engine();
                    let blob = engine
                        .export_parked(fp)
                        .or_else(|| store.and_then(|s| s.restore_one(engine, fp)));
                    if blob.is_none() {
                        counters.frontier_misses.fetch_add(1, Ordering::Relaxed);
                    }
                    self.send(
                        &ServerMessage::FrontierBlob {
                            fingerprint,
                            frontier: blob.unwrap_or_default(),
                        },
                        counters,
                    )?;
                }
                (ClientMessage::PushFrontier { frontier }, None) => {
                    // Control request: admit a shipped frontier exactly
                    // like a snapshot restore — full validation, and the
                    // fingerprint recomputed from the decoded spec, never
                    // taken from the sender. Refusals ack with the
                    // documented fingerprint-0 sentinel.
                    let engine = server.engine();
                    let ack = match IamaOptimizer::import_frontier(engine.model(), &frontier) {
                        Ok(opt) => {
                            let model = opt.model();
                            let fp = QueryFingerprint::of(opt.spec(), &model);
                            engine.park(fp, opt);
                            counters.frontier_pushes.fetch_add(1, Ordering::Relaxed);
                            fp.as_u64()
                        }
                        Err(_) => {
                            counters.frontier_refused.fetch_add(1, Ordering::Relaxed);
                            0
                        }
                    };
                    self.send(
                        &ServerMessage::FrontierBlob {
                            fingerprint: ack,
                            frontier: Vec::new(),
                        },
                        counters,
                    )?;
                }
                (
                    ClientMessage::PullFrontier { .. } | ClientMessage::PushFrontier { .. },
                    Some(_),
                ) => {
                    return Err(NetError::UnexpectedFrame(
                        "control message on a session stream",
                    ));
                }
            }
        }

        // --- A queued submission activates asynchronously; prime the
        // stream the moment the ticket goes live. ---
        if self.ticket.is_some() && !self.primed {
            self.prime(server, counters)?;
        }

        // --- Forward buffered session events. ---
        if let Some(ticket) = self.ticket {
            if self.primed && !self.finished {
                while let Some(event) = server.recv(ticket, Duration::ZERO) {
                    let is_final = event.is_final();
                    self.send(&ServerMessage::Event(Box::new(event)), counters)?;
                    progressed = true;
                    if is_final {
                        self.finished = true;
                        return Ok(Pump::Close);
                    }
                }
            }
        }
        Ok(Pump::Keep(progressed))
    }

    /// Sends the prime event if the ticket is active (no-op while it
    /// still sits in the admission queue).
    fn prime(&mut self, server: &Arc<MoqoServer>, counters: &NetCounters) -> Result<(), NetError> {
        let ticket = self.ticket.expect("prime called without a ticket");
        // poll() drains any pending channel events into the server-side
        // view first, so the prime carries them and later recv()s only
        // see strictly newer epochs.
        match server.poll(ticket) {
            Some(TicketStatus::Active { view, .. }) => {
                let event = Self::prime_event(server, &view);
                let is_final = event.is_final();
                self.send(&ServerMessage::Event(Box::new(event)), counters)?;
                self.primed = true;
                if is_final {
                    self.finished = true;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Parks the connection's session if it never finished (disconnects
    /// and faults must not leak admission slots).
    fn retire(&mut self, server: &Arc<MoqoServer>, counters: &NetCounters) {
        if let Some(ticket) = self.ticket.take() {
            if !self.finished {
                counters.disconnect_parked.fetch_add(1, Ordering::Relaxed);
                let _ = server.finish(ticket);
            }
        }
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// The TCP front; see the module docs for the connection lifecycle.
pub struct NetServer {
    server: Arc<MoqoServer>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<NetCounters>,
    threads: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds the listener and starts the acceptor plus I/O workers.
    ///
    /// `registry` must contain every cost model remote requests may
    /// reference (the deployment default is a sensible seed:
    /// [`ModelRegistry::with_default`]).
    pub fn bind(
        server: Arc<MoqoServer>,
        registry: Arc<ModelRegistry>,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        Self::bind_inner(server, registry, config, None)
    }

    /// Like [`NetServer::bind`], with a [`SnapshotStore`] backing the
    /// `PullFrontier` endpoint: a pull for a fingerprint not parked in
    /// memory falls back to the store directory and re-parks what it
    /// finds — the lazy restore path a node uses when placement makes it
    /// the new home of a dead node's shard.
    pub fn bind_with_store(
        server: Arc<MoqoServer>,
        registry: Arc<ModelRegistry>,
        config: NetConfig,
        store: Arc<SnapshotStore>,
    ) -> std::io::Result<NetServer> {
        Self::bind_inner(server, registry, config, Some(store))
    }

    fn bind_inner(
        server: Arc<MoqoServer>,
        registry: Arc<ModelRegistry>,
        config: NetConfig,
        store: Option<Arc<SnapshotStore>>,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(NetCounters::default());
        let injector: Arc<Mutex<VecDeque<TcpStream>>> = Arc::new(Mutex::new(VecDeque::new()));
        let mut threads = Vec::new();

        // Acceptor: configures sockets and hands them to the pool.
        {
            let stop = stop.clone();
            let counters = counters.clone();
            let injector = injector.clone();
            let read_timeout = config.read_timeout;
            let write_timeout = config.write_timeout;
            threads.push(
                thread::Builder::new()
                    .name("moqo-net-accept".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    // Accepted sockets must NOT inherit the
                                    // listener's nonblocking mode (platforms
                                    // differ): the worker loop paces itself
                                    // on the blocking read timeout.
                                    let _ = stream.set_nonblocking(false);
                                    let _ = stream.set_nodelay(true);
                                    let _ = stream.set_read_timeout(Some(read_timeout));
                                    let _ = stream.set_write_timeout(Some(write_timeout));
                                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                                    injector
                                        .lock()
                                        .expect("net injector poisoned")
                                        .push_back(stream);
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    thread::sleep(Duration::from_millis(2));
                                }
                                Err(_) => thread::sleep(Duration::from_millis(2)),
                            }
                        }
                    })?,
            );
        }

        // I/O workers: each multiplexes its share of the connections.
        for i in 0..config.io_threads.max(1) {
            let stop = stop.clone();
            let counters = counters.clone();
            let injector = injector.clone();
            let server = server.clone();
            let registry = registry.clone();
            let store = store.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("moqo-net-io-{i}"))
                    .spawn(move || {
                        let mut conns: Vec<Conn> = Vec::new();
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                // Graceful drain: park every unfinished
                                // session, then close the sockets.
                                for conn in &mut conns {
                                    conn.retire(&server, &counters);
                                }
                                return;
                            }
                            if let Some(stream) =
                                injector.lock().expect("net injector poisoned").pop_front()
                            {
                                conns.push(Conn::new(stream));
                            }
                            let mut progressed = false;
                            conns.retain_mut(|conn| {
                                match conn.pump(&server, &registry, store.as_ref(), &counters) {
                                    Pump::Keep(p) => {
                                        progressed |= p;
                                        true
                                    }
                                    Pump::Close => {
                                        progressed = true;
                                        let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                                        false
                                    }
                                }
                            });
                            if conns.is_empty() && !progressed {
                                thread::sleep(Duration::from_millis(1));
                            }
                        }
                    })?,
            );
        }

        Ok(NetServer {
            server,
            addr,
            stop,
            counters,
            threads,
        })
    }

    /// The bound address (the actual port when `addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The in-process server behind the front — for diagnostics and
    /// persistence. While a connection is live its ticket's events belong
    /// to the network stream; correlate via the admission frame's ticket
    /// id and poll only after the stream finished.
    pub fn moqo(&self) -> &Arc<MoqoServer> {
        &self.server
    }

    /// Network-front counters.
    pub fn stats(&self) -> NetStats {
        let shards = self.server.engine().shard_stats();
        let sub = self.server.engine().subfrontier_stats();
        NetStats {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            frames_in: self.counters.frames_in.load(Ordering::Relaxed),
            frames_out: self.counters.frames_out.load(Ordering::Relaxed),
            faulted: self.counters.faulted.load(Ordering::Relaxed),
            warm_routed: shards.iter().map(|s| s.warm_routed).sum(),
            rebase_routed: shards.iter().map(|s| s.rebase_routed).sum(),
            subfrontier_hits: sub.hits,
            subfrontier_misses: sub.misses,
            cold_routed: shards.iter().map(|s| s.cold_routed).sum(),
            rebalanced_in: shards.iter().map(|s| s.rebalanced_in).sum(),
            live: shards.iter().map(|s| s.live as u64).sum(),
            disconnect_parked: self.counters.disconnect_parked.load(Ordering::Relaxed),
            frontier_pulls: self.counters.frontier_pulls.load(Ordering::Relaxed),
            frontier_misses: self.counters.frontier_misses.load(Ordering::Relaxed),
            frontier_pushes: self.counters.frontier_pushes.load(Ordering::Relaxed),
            frontier_refused: self.counters.frontier_refused.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, parks every unfinished session, closes all
    /// connections, and joins the I/O threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

/// Blocking client for one session over one connection.
///
/// Events fold into the same [`SessionView`] the in-process reassemblers
/// use, so [`NetClient::view`] is bit-identical to the server-side view
/// (`FrontierSnapshot::bits_eq`) at every point of the stream.
pub struct NetClient {
    stream: TcpStream,
    frames: FrameBuffer,
    view: SessionView,
    ticket: Option<u64>,
    admission: Option<AdmissionResponse>,
    errors: Vec<ProtocolError>,
    eof: bool,
}

impl NetClient {
    /// Connects and completes the handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, NetError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&client_hello())?;
        let mut hello = [0u8; HELLO_LEN];
        stream.read_exact(&mut hello)?;
        check_hello(&hello)?;
        Ok(NetClient {
            stream,
            frames: FrameBuffer::new(),
            view: SessionView::default(),
            ticket: None,
            admission: None,
            errors: Vec::new(),
            eof: false,
        })
    }

    /// Submits the connection's one [`SessionRequest`] and blocks for the
    /// admission decision (at most `timeout`). Typed request faults
    /// ([`ProtocolError`], including
    /// [`ProtocolError::UnknownCostModel`]) come back as
    /// [`NetError::Protocol`].
    pub fn submit(
        &mut self,
        request: SessionRequest,
        timeout: Duration,
    ) -> Result<AdmissionResponse, NetError> {
        if self.ticket.is_some() {
            return Err(NetError::UnexpectedFrame("second submit on one stream"));
        }
        moqo_wire::write_frame(&mut self.stream, &ClientMessage::Submit(request).encode())?;
        let deadline = Instant::now() + timeout;
        match self.read_message(deadline)? {
            Some(ServerMessage::Admission { ticket, response }) => {
                self.ticket = Some(ticket);
                self.admission = Some(response.clone());
                Ok(response)
            }
            Some(ServerMessage::Error(e)) => Err(e.into()),
            Some(ServerMessage::Event(_)) => {
                Err(NetError::UnexpectedFrame("event before admission"))
            }
            Some(ServerMessage::FrontierBlob { .. }) => {
                Err(NetError::UnexpectedFrame("frontier blob before admission"))
            }
            // Distinguish a genuinely closed socket from a server that is
            // merely slow to decide admission within `timeout`.
            None if self.eof => Err(NetError::Disconnected),
            None => Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no admission response within the submit timeout",
            ))),
        }
    }

    /// Sends a [`SessionCommand`]. Commands are pipelined; a command the
    /// server cannot honor surfaces as a typed error on the event stream
    /// (see [`NetClient::take_errors`]).
    pub fn command(&mut self, command: SessionCommand) -> Result<(), NetError> {
        moqo_wire::write_frame(&mut self.stream, &ClientMessage::Command(command).encode())?;
        Ok(())
    }

    /// Blocks for the next [`SessionEvent`] (at most `timeout`), folding
    /// it into the view. `Ok(None)` on timeout, and once the stream ended
    /// after the terminal event.
    pub fn recv(&mut self, timeout: Duration) -> Result<Option<SessionEvent>, NetError> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.eof {
                return if self.view.is_finished() {
                    Ok(None)
                } else {
                    Err(NetError::Disconnected)
                };
            }
            match self.read_message(deadline)? {
                Some(ServerMessage::Event(event)) => {
                    self.view.fold(&event)?;
                    return Ok(Some(*event));
                }
                Some(ServerMessage::Error(e)) => {
                    // Command faults interleave with events; they are
                    // collected, not stream-fatal.
                    self.errors.push(e);
                }
                Some(ServerMessage::Admission { .. }) => {
                    return Err(NetError::UnexpectedFrame("second admission"));
                }
                Some(ServerMessage::FrontierBlob { .. }) => {
                    return Err(NetError::UnexpectedFrame(
                        "frontier blob on a session stream",
                    ));
                }
                None => return Ok(None),
            }
        }
    }

    /// Pulls the parked frontier for a raw fingerprint off the server
    /// (control request; only valid before [`NetClient::submit`]).
    /// `Ok(None)` is a miss — nothing parked, nothing in the server's
    /// snapshot store. The bytes are self-validating
    /// `export_frontier` state, importable on any node whose cost model
    /// matches.
    pub fn pull_frontier(
        &mut self,
        fingerprint: u64,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, NetError> {
        if self.ticket.is_some() {
            return Err(NetError::UnexpectedFrame("control message after submit"));
        }
        moqo_wire::write_frame(
            &mut self.stream,
            &ClientMessage::PullFrontier { fingerprint }.encode(),
        )?;
        match self.read_message(Instant::now() + timeout)? {
            Some(ServerMessage::FrontierBlob { frontier, .. }) => {
                Ok((!frontier.is_empty()).then_some(frontier))
            }
            Some(ServerMessage::Error(e)) => Err(e.into()),
            Some(_) => Err(NetError::UnexpectedFrame("expected frontier blob")),
            None if self.eof => Err(NetError::Disconnected),
            None => Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no frontier blob within the pull timeout",
            ))),
        }
    }

    /// Pushes self-validating `export_frontier` bytes onto the server to
    /// be parked at their home shard (control request; only valid before
    /// [`NetClient::submit`]). Returns the admitted fingerprint the
    /// server recomputed from the decoded spec, or `Ok(None)` when the
    /// push was refused by validation.
    pub fn push_frontier(
        &mut self,
        frontier: Vec<u8>,
        timeout: Duration,
    ) -> Result<Option<u64>, NetError> {
        if self.ticket.is_some() {
            return Err(NetError::UnexpectedFrame("control message after submit"));
        }
        moqo_wire::write_frame(
            &mut self.stream,
            &ClientMessage::PushFrontier { frontier }.encode(),
        )?;
        match self.read_message(Instant::now() + timeout)? {
            Some(ServerMessage::FrontierBlob { fingerprint, .. }) => {
                Ok((fingerprint != 0).then_some(fingerprint))
            }
            Some(ServerMessage::Error(e)) => Err(e.into()),
            Some(_) => Err(NetError::UnexpectedFrame("expected frontier blob")),
            None if self.eof => Err(NetError::Disconnected),
            None => Err(NetError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "no push acknowledgement within the timeout",
            ))),
        }
    }

    /// Drains the stream until the session's terminal event (at most
    /// `timeout`), returning the final view.
    pub fn wait_finished(&mut self, timeout: Duration) -> Result<&SessionView, NetError> {
        let deadline = Instant::now() + timeout;
        while !self.view.is_finished() {
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "session did not finish in time",
                )));
            }
            self.recv(deadline - now)?;
        }
        Ok(&self.view)
    }

    /// The client-side reassembled session state.
    pub fn view(&self) -> &SessionView {
        &self.view
    }

    /// The admission decision, once [`NetClient::submit`] returned.
    pub fn admission(&self) -> Option<&AdmissionResponse> {
        self.admission.as_ref()
    }

    /// The server-side ticket id from the admission frame (correlate with
    /// [`Ticket::from_u64`] for post-session diagnostics).
    pub fn server_ticket(&self) -> Option<u64> {
        self.ticket
    }

    /// Typed command faults received so far (cleared on return).
    pub fn take_errors(&mut self) -> Vec<ProtocolError> {
        std::mem::take(&mut self.errors)
    }

    /// One complete server message, or `None` on deadline/EOF.
    fn read_message(&mut self, deadline: Instant) -> Result<Option<ServerMessage>, NetError> {
        loop {
            if let Some(payload) = self.frames.next_frame()? {
                return Ok(Some(ServerMessage::decode(&payload)?));
            }
            if self.eof {
                return Ok(None);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            let mut scratch = [0u8; 8192];
            match self.stream.read(&mut scratch) {
                Ok(0) => self.eof = true,
                Ok(n) => self.frames.extend(&scratch[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{AdmissionConfig, AdmissionPolicy};
    use crate::shard::ShardConfig;
    use crate::ServeConfig;
    use moqo_cost::ResolutionSchedule;
    use moqo_costmodel::{SharedCostModel, StandardCostModel};
    use moqo_engine::EngineConfig;
    use moqo_query::testkit;

    const IDLE: Duration = Duration::from_secs(60);

    fn start(admission: AdmissionConfig) -> (NetServer, SocketAddr, SharedCostModel) {
        let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        let server = Arc::new(MoqoServer::new(
            model.clone(),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ServeConfig {
                shard: ShardConfig {
                    shards: 2,
                    engine: EngineConfig {
                        workers: 2,
                        ..EngineConfig::default()
                    },
                    rebalance_headroom: 8,
                },
                admission,
                retired_tickets: 1024,
            },
        ));
        let registry = Arc::new(ModelRegistry::with_default(model.clone()));
        let net = NetServer::bind(server, registry, NetConfig::default()).expect("bind loopback");
        let addr = net.local_addr();
        (net, addr, model)
    }

    #[test]
    fn tcp_session_reassembles_bit_exactly_and_parks_on_cancel() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let mut client = NetClient::connect(addr).expect("connect");
        let response = client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(3, 40_000))),
                IDLE,
            )
            .expect("admitted");
        assert_eq!(response, AdmissionResponse::Admitted);
        // Drain the auto-refined ladder (3 levels).
        while client.view().invocations < 3 {
            client.recv(IDLE).expect("stream healthy");
        }
        assert!(!client.view().frontier.is_empty());
        client.command(SessionCommand::Cancel).expect("send");
        let view = client.wait_finished(IDLE).expect("terminal event");
        assert!(view.selected().is_none());
        // The client view is bit-identical to the server-side one.
        let ticket = Ticket::from_u64(client.server_ticket().unwrap());
        match net.moqo().poll(ticket).expect("closed but queryable") {
            TicketStatus::Active {
                view: server_view, ..
            } => {
                assert!(client.view().frontier.bits_eq(&server_view.frontier));
                assert_eq!(client.view().epoch, server_view.epoch);
                assert_eq!(client.view().invocations, server_view.invocations);
            }
            other => panic!("expected active ticket, got {other:?}"),
        }
        // The cancelled session parked its frontier for warm repeats.
        let fp = net
            .moqo()
            .engine()
            .fingerprint(&testkit::chain_query(3, 40_000));
        assert!(net.moqo().engine().has_parked(fp));
        net.shutdown();
    }

    #[test]
    fn unknown_model_identity_answers_typed_error() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let foreign: SharedCostModel = Arc::new(StandardCostModel::new(
            moqo_costmodel::MetricSet::paper(),
            moqo_costmodel::StandardCostModelConfig {
                dops: vec![1, 2],
                ..moqo_costmodel::StandardCostModelConfig::default()
            },
        ));
        let mut client = NetClient::connect(addr).expect("connect");
        let err = client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000)))
                    .with_cost_model(foreign.clone()),
                IDLE,
            )
            .expect_err("unregistered model must be refused");
        match err {
            NetError::Protocol(ProtocolError::UnknownCostModel { identity }) => {
                assert_eq!(identity, moqo_costmodel::CostModel::identity(&foreign));
            }
            other => panic!("expected UnknownCostModel, got {other:?}"),
        }
        assert_eq!(net.moqo().stats().live, 0);
        net.shutdown();
    }

    #[test]
    fn command_faults_come_back_typed_without_killing_the_stream() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let mut client = NetClient::connect(addr).expect("connect");
        client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000))),
                IDLE,
            )
            .expect("admitted");
        while client.view().invocations < 3 {
            client.recv(IDLE).expect("stream healthy");
        }
        // A select for a plan the session never generated: typed error,
        // live stream.
        client
            .command(SessionCommand::SelectPlan(moqo_plan::PlanId(u32::MAX)))
            .expect("send");
        let deadline = Instant::now() + IDLE;
        while client.take_errors().is_empty() {
            assert!(Instant::now() < deadline, "no typed error arrived");
            let _ = client.recv(Duration::from_millis(20)).expect("healthy");
        }
        // The session is still commandable: select a real plan.
        let plan = client.view().frontier.min_by_metric(0).unwrap().plan;
        client
            .command(SessionCommand::SelectPlan(plan))
            .expect("send");
        let view = client.wait_finished(IDLE).expect("terminal event");
        assert_eq!(view.selected(), Some(plan));
        net.shutdown();
    }

    #[test]
    fn rejection_round_trips_and_closes_the_stream() {
        let (net, addr, _model) = start(AdmissionConfig {
            max_live: 1,
            policy: AdmissionPolicy::Reject,
        });
        let mut first = NetClient::connect(addr).expect("connect");
        first
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000))),
                IDLE,
            )
            .expect("admitted");
        let mut second = NetClient::connect(addr).expect("connect");
        let response = second
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(3, 10_000))),
                IDLE,
            )
            .expect("typed rejection, not an error");
        assert!(matches!(
            response,
            AdmissionResponse::Rejected(moqo_core::RejectReason::Overloaded { .. })
        ));
        net.shutdown();
    }

    /// Runs one session to completion on `addr` (submit, drain the
    /// ladder, cancel) so the server parks its frontier.
    fn park_one(addr: SocketAddr, spec: Arc<moqo_query::QuerySpec>) {
        let mut client = NetClient::connect(addr).expect("connect");
        client
            .submit(SessionRequest::new(spec), IDLE)
            .expect("admitted");
        while client.view().invocations < 3 {
            client.recv(IDLE).expect("stream healthy");
        }
        client.command(SessionCommand::Cancel).expect("send");
        client.wait_finished(IDLE).expect("terminal event");
    }

    #[test]
    fn frontiers_travel_between_nodes_over_the_wire() {
        // Node A refines and parks; a control connection pulls the
        // frontier off A and pushes it onto node B; a repeat of the
        // query on B starts warm and generates zero plans.
        let (a, addr_a, _model) = start(AdmissionConfig::default());
        let (b, addr_b, _model) = start(AdmissionConfig::default());
        let spec = Arc::new(testkit::chain_query(3, 40_000));
        park_one(addr_a, spec.clone());
        let fp = a.moqo().engine().fingerprint(&spec);

        let mut control = NetClient::connect(addr_a).expect("connect");
        // A fingerprint nobody ever parked is a clean miss.
        assert_eq!(control.pull_frontier(1, IDLE).expect("answered"), None);
        let blob = control
            .pull_frontier(fp.as_u64(), IDLE)
            .expect("answered")
            .expect("parked frontier must be pullable");

        let mut control_b = NetClient::connect(addr_b).expect("connect");
        // Garbage is refused by validation, not parked.
        assert_eq!(
            control_b
                .push_frontier(vec![0xa5; 64], IDLE)
                .expect("answered"),
            None
        );
        let admitted = control_b
            .push_frontier(blob, IDLE)
            .expect("answered")
            .expect("validated frontier must be admitted");
        assert_eq!(admitted, fp.as_u64());
        assert!(b.moqo().engine().has_parked(fp));

        // The shipped state serves a warm repeat on B: zero plans.
        let mut repeat = NetClient::connect(addr_b).expect("connect");
        repeat
            .submit(SessionRequest::new(spec), IDLE)
            .expect("admitted");
        while repeat.view().first_report.is_none() {
            repeat.recv(IDLE).expect("stream healthy");
        }
        assert_eq!(
            repeat.view().first_report.as_ref().unwrap().plans_generated,
            0,
            "warm repeat after hand-off must not regenerate plans"
        );

        let sa = a.stats();
        assert_eq!(sa.frontier_pulls, 2);
        assert_eq!(sa.frontier_misses, 1);
        let sb = b.stats();
        assert_eq!(sb.frontier_pushes, 1);
        assert_eq!(sb.frontier_refused, 1);
        assert!(sb.warm_routed >= 1);
        a.shutdown();
        b.shutdown();
    }

    #[test]
    fn pull_falls_back_to_the_snapshot_store() {
        // A node that never served the query itself adopts it from the
        // shared snapshot directory on first demand — the re-park path a
        // new home runs after its predecessor died.
        let dir = std::env::temp_dir().join(format!("moqo-net-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = Arc::new(testkit::chain_query(4, 52_000));
        let (a, addr_a, _model) = start(AdmissionConfig::default());
        park_one(addr_a, spec.clone());
        let fp = a.moqo().engine().fingerprint(&spec);
        SnapshotStore::new(&dir).save(a.moqo().engine()).unwrap();
        a.shutdown();

        let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
        let server = Arc::new(MoqoServer::new(
            model.clone(),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ServeConfig::default(),
        ));
        let registry = Arc::new(ModelRegistry::with_default(model));
        let fresh = NetServer::bind_with_store(
            server,
            registry,
            NetConfig::default(),
            Arc::new(SnapshotStore::new(&dir)),
        )
        .expect("bind loopback");
        assert!(!fresh.moqo().engine().has_parked(fp));
        let mut control = NetClient::connect(fresh.local_addr()).expect("connect");
        let blob = control
            .pull_frontier(fp.as_u64(), IDLE)
            .expect("answered")
            .expect("store-backed pull must hit");
        assert!(!blob.is_empty());
        assert!(fresh.moqo().engine().has_parked(fp), "pull must re-park");
        assert_eq!(fresh.stats().frontier_pulls, 1);
        assert_eq!(fresh.stats().frontier_misses, 0);
        fresh.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disconnects_park_and_are_counted() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        let spec = Arc::new(testkit::chain_query(3, 30_000));
        {
            let mut client = NetClient::connect(addr).expect("connect");
            client
                .submit(SessionRequest::new(spec.clone()), IDLE)
                .expect("admitted");
            while client.view().invocations < 3 {
                client.recv(IDLE).expect("stream healthy");
            }
        } // drop without cancel: the vanished-user path
        let deadline = Instant::now() + IDLE;
        while net.stats().disconnect_parked == 0 {
            assert!(Instant::now() < deadline, "disconnect never counted");
            thread::sleep(Duration::from_millis(5));
        }
        let stats = net.stats();
        assert_eq!(stats.disconnect_parked, 1);
        assert_eq!(stats.live, 0, "disconnect must not leak a session slot");
        let fp = net.moqo().engine().fingerprint(&spec);
        assert!(net.moqo().engine().has_parked(fp));
        net.shutdown();
    }

    #[test]
    fn garbage_bytes_fault_the_connection_not_the_server() {
        let (net, addr, _model) = start(AdmissionConfig::default());
        // Raw socket, no handshake: shove noise at the server.
        let mut raw = TcpStream::connect(addr).expect("connect");
        raw.write_all(&[0xa5; 256]).expect("write");
        // The server drops the connection; a well-behaved client still
        // gets service.
        let mut client = NetClient::connect(addr).expect("connect");
        client
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(2, 10_000))),
                IDLE,
            )
            .expect("admitted");
        client.command(SessionCommand::Cancel).expect("send");
        client.wait_finished(IDLE).expect("terminal event");
        let deadline = Instant::now() + IDLE;
        while net.stats().faulted == 0 {
            assert!(Instant::now() < deadline, "fault never counted");
            thread::sleep(Duration::from_millis(5));
        }
        net.shutdown();
    }
}
