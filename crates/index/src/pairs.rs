//! The `IsFresh` pair set.
//!
//! Lemma 6 of the paper requires that each sub-plan pair is generated at
//! most once across all optimizer invocations. Function `Fresh` enforces
//! this with the `IsFresh` predicate, implemented here as a hash set over
//! `(u32, u32)` pair keys ("we can use a hash table to perform this check
//! efficiently", Section 4.2).

use crate::fxhash::FxHashSet;

/// A set of already-combined (ordered) sub-plan pairs.
#[derive(Clone, Debug, Default)]
pub struct PairSet {
    seen: FxHashSet<u64>,
}

impl PairSet {
    /// Creates an empty pair set.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn key(a: u32, b: u32) -> u64 {
        ((a as u64) << 32) | b as u64
    }

    /// True if the ordered pair `(a, b)` has not been recorded yet.
    #[inline]
    pub fn is_fresh(&self, a: u32, b: u32) -> bool {
        !self.seen.contains(&Self::key(a, b))
    }

    /// Records the ordered pair `(a, b)`; returns true if it was fresh.
    #[inline]
    pub fn mark(&mut self, a: u32, b: u32) -> bool {
        self.seen.insert(Self::key(a, b))
    }

    /// Number of recorded pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// True if no pair was recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Iterates over the raw pair keys in unspecified order (snapshot
    /// export; feed them back through [`PairSet::insert_key`]).
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.seen.iter().copied()
    }

    /// Re-inserts a raw key previously obtained from [`PairSet::keys`]
    /// (snapshot import).
    #[inline]
    pub fn insert_key(&mut self, key: u64) {
        self.seen.insert(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freshness_tracking() {
        let mut p = PairSet::new();
        assert!(p.is_fresh(1, 2));
        assert!(p.mark(1, 2));
        assert!(!p.is_fresh(1, 2));
        assert!(!p.mark(1, 2));
        // Pairs are ordered: (2, 1) is distinct from (1, 2).
        assert!(p.is_fresh(2, 1));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn keys_round_trip() {
        let mut p = PairSet::new();
        p.mark(3, 4);
        p.mark(9, 1);
        let mut q = PairSet::new();
        for k in p.keys() {
            q.insert_key(k);
        }
        assert_eq!(q.len(), 2);
        assert!(!q.is_fresh(3, 4));
        assert!(!q.is_fresh(9, 1));
        assert!(q.is_fresh(4, 3));
    }

    #[test]
    fn large_ids_do_not_collide() {
        let mut p = PairSet::new();
        assert!(p.mark(u32::MAX, 0));
        assert!(p.mark(0, u32::MAX));
        assert!(p.mark(u32::MAX, u32::MAX));
        assert_eq!(p.len(), 3);
    }
}
