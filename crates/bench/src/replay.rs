//! The `repro replay` experiment: open-loop Zipf-skewed traffic replay
//! against each admission policy.
//!
//! The serving experiments (`repro serve`, `repro net`) measure the
//! interactive SLO session by session; this one measures how the
//! admission door behaves when arrivals do not wait for service. A
//! deterministic open-loop schedule (fixed inter-arrival gap, arrival
//! times fixed up front — late service makes the next submits burst
//! instead of silently stretching the schedule, so there is no
//! coordinated omission) draws query templates from a Zipf-skewed
//! distribution and replays the same trace against a fresh
//! [`MoqoServer`] per variant, once per [`AdmissionPolicy`]:
//!
//! * `reject` — pure backpressure beyond `max_live`;
//! * `queue` — a bounded FIFO that admits as sessions finish;
//! * `degrade` — admit under a coarser resolution ladder up to a hard
//!   cap.
//!
//! A small in-line service loop completes the oldest sessions (first
//! report observed, then cancel + finish) so capacity actually frees —
//! without it the queue policy would never drain and every policy would
//! converge to "reject everything".

use moqo_core::protocol::SessionRequest;
use moqo_core::{AdmissionResponse, SessionCommand};
use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::EngineConfig;
use moqo_query::{testkit, QuerySpec};
use moqo_serve::{
    AdmissionConfig, AdmissionPolicy, MoqoServer, ServeConfig, ShardConfig, Ticket, TicketStatus,
};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::harness::{Experiment, ExperimentReport, Trial};
use crate::stats::{Samples, Summary};
use crate::workload::XorShift;

/// Live sessions admitted at full resolution before the overload policy
/// kicks in — deliberately small so the replay actually overloads.
const MAX_LIVE: usize = 8;

/// How long any single wait (first report, queue drain) may take before
/// the experiment declares the server wedged.
const WEDGED: Duration = Duration::from_secs(120);

/// The template set the replay cycles over, most popular first; the
/// Zipf head repeats enough that the warm-frontier cache carries most
/// of its plan work.
pub fn replay_templates() -> Vec<Arc<QuerySpec>> {
    vec![
        Arc::new(testkit::chain_query(3, 50_000)),
        Arc::new(testkit::chain_query(2, 40_000)),
        Arc::new(testkit::star_query(3, 60_000)),
        Arc::new(testkit::chain_query(4, 45_000)),
        Arc::new(testkit::star_query(4, 30_000)),
        Arc::new(testkit::chain_query(2, 55_000)),
    ]
}

/// Draws a template rank from a Zipf(s = 1.1) distribution over
/// `count` ranks using the inverse-CDF over precomputed weights.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(count: usize) -> Self {
        let mut cumulative = Vec::with_capacity(count);
        let mut total = 0.0;
        for rank in 0..count {
            total += 1.0 / ((rank + 1) as f64).powf(1.1);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut XorShift) -> usize {
        let u = rng.next_f64() * self.cumulative.last().copied().unwrap_or(1.0);
        self.cumulative.iter().position(|&c| u < c).unwrap_or(0)
    }
}

/// Tallies of one policy's replay, accumulated by [`run_policy`].
#[derive(Default)]
struct Tally {
    admitted: u64,
    degraded: u64,
    queued: u64,
    rejected: u64,
    completed: u64,
    zero_plan_starts: u64,
}

/// Waits for the session behind `ticket` to publish its first
/// invocation report, then cancels and finishes it, folding the outcome
/// into the tally.
fn complete(server: &MoqoServer, ticket: Ticket, tally: &mut Tally) {
    let deadline = Instant::now() + WEDGED;
    loop {
        match server.poll(ticket) {
            Some(TicketStatus::Active { ref view, .. }) if view.first_report.is_some() => break,
            Some(TicketStatus::Active { .. }) | Some(TicketStatus::Queued { .. }) => {
                server.recv(ticket, Duration::from_millis(20));
            }
            other => panic!("session to complete is not live: {other:?}"),
        }
        assert!(Instant::now() < deadline, "session never reported");
    }
    server
        .command(ticket, SessionCommand::Cancel)
        .expect("live session accepts cancel");
    let view = server.finish(ticket).expect("finished view");
    tally.completed += 1;
    if view
        .first_report
        .as_ref()
        .is_some_and(|r| r.plans_generated == 0)
    {
        tally.zero_plan_starts += 1;
    }
}

/// Replays the trace against a fresh server under `policy` and records
/// the admission outcome mix, submit latency, and drain time.
fn run_policy(fast: bool, policy: AdmissionPolicy, policy_label: &str, trial: &mut Trial) {
    let templates = replay_templates();
    let server = MoqoServer::new(
        Arc::new(StandardCostModel::paper_metrics()),
        ResolutionSchedule::linear(1, 1.1, 0.5),
        ServeConfig {
            shard: ShardConfig {
                shards: 2,
                engine: EngineConfig {
                    workers: 2,
                    ..EngineConfig::default()
                },
                rebalance_headroom: 8,
            },
            admission: AdmissionConfig {
                max_live: MAX_LIVE,
                policy,
            },
            retired_tickets: 8192,
        },
    );

    let arrivals: usize = if fast { 160 } else { 600 };
    let gap = Duration::from_micros(if fast { 250 } else { 400 });
    let zipf = Zipf::new(templates.len());
    let mut rng = XorShift::new(0x5eed_41aa);
    let mut tally = Tally::default();
    let mut submit_us = Samples::with_capacity(arrivals);
    // Admitted (full or degraded) sessions awaiting service, oldest
    // first, plus tickets parked in the bounded admission queue.
    let mut live: VecDeque<Ticket> = VecDeque::new();
    let mut parked: Vec<Ticket> = Vec::new();
    let mut head_hits = 0u64;

    let start = Instant::now();
    for i in 0..arrivals {
        // Open loop: each arrival has a fixed due time; a slow service
        // step below makes the following submits burst, it never
        // stretches the schedule.
        let due = start + gap * i as u32;
        loop {
            let now = Instant::now();
            if now >= due {
                break;
            }
            std::thread::sleep(due - now);
        }
        let rank = zipf.sample(&mut rng);
        if rank == 0 {
            head_hits += 1;
        }
        let spec = templates[rank].clone();
        let t0 = Instant::now();
        let (ticket, response) = server
            .submit(SessionRequest::new(spec))
            .expect("a bare request has nothing to validate");
        submit_us.push(t0.elapsed().as_secs_f64() * 1e6);
        match response {
            AdmissionResponse::Admitted => {
                tally.admitted += 1;
                live.push_back(ticket);
            }
            AdmissionResponse::Degraded { .. } => {
                tally.degraded += 1;
                live.push_back(ticket);
            }
            AdmissionResponse::Queued { .. } => {
                tally.queued += 1;
                parked.push(ticket);
            }
            AdmissionResponse::Rejected(_) => tally.rejected += 1,
        }
        // Service: complete the oldest sessions beyond half capacity so
        // slots keep freeing under the arrival stream.
        while live.len() > MAX_LIVE / 2 {
            let ticket = live.pop_front().expect("nonempty by the loop guard");
            complete(&server, ticket, &mut tally);
        }
        // Queued tickets admit as capacity frees; promote any that did.
        parked.retain(|&t| match server.poll(t) {
            Some(TicketStatus::Active { .. }) => {
                live.push_back(t);
                false
            }
            _ => true,
        });
    }
    let replay_ms = start.elapsed().as_secs_f64() * 1e3;

    // Drain: complete everything still live, promoting parked tickets
    // as their slots free, until nothing is left.
    let t_drain = Instant::now();
    let deadline = t_drain + WEDGED;
    while !live.is_empty() || !parked.is_empty() {
        assert!(Instant::now() < deadline, "replay did not drain");
        while let Some(ticket) = live.pop_front() {
            complete(&server, ticket, &mut tally);
        }
        parked.retain(|&t| match server.poll(t) {
            Some(TicketStatus::Active { .. }) => {
                live.push_back(t);
                false
            }
            _ => true,
        });
    }
    let drain_ms = t_drain.elapsed().as_secs_f64() * 1e3;

    trial.text("policy", policy_label);
    trial.int("arrivals", arrivals as u64);
    trial.int("max_live", MAX_LIVE as u64);
    trial.int("admitted", tally.admitted);
    trial.int("degraded", tally.degraded);
    trial.int("queued", tally.queued);
    trial.int("rejected", tally.rejected);
    trial.int("completed", tally.completed);
    trial.int("zero_plan_starts", tally.zero_plan_starts);
    trial.num("head_share", head_hits as f64 / arrivals as f64);
    trial.summary_us("submit_", Summary::of_or_zero(&submit_us));
    trial.num("replay_ms", replay_ms);
    trial.num_lower("drain_ms", drain_ms);
}

/// The degraded ladder the `degrade` variant admits overload under:
/// one coarse level instead of the full schedule.
fn degraded_ladder() -> ResolutionSchedule {
    ResolutionSchedule::linear(0, 1.5, 0.5)
}

/// Runs the open-loop Zipf replay once per admission policy (fresh
/// server each) and reports the outcome mix, submit latencies, and
/// drain time per policy.
pub fn replay_experiment(fast: bool) -> ExperimentReport {
    Experiment::new("replay", fast, || ())
        .title("traffic replay: open-loop Zipf arrivals vs admission policies")
        .variant("admission policy", "reject", move |_, t| {
            run_policy(fast, AdmissionPolicy::Reject, "reject", t)
        })
        .variant("admission policy", "queue", move |_, t| {
            run_policy(fast, AdmissionPolicy::Queue { depth: 16 }, "queue", t)
        })
        .variant("admission policy", "degrade", move |_, t| {
            run_policy(
                fast,
                AdmissionPolicy::Degrade {
                    schedule: degraded_ladder(),
                    hard_cap: MAX_LIVE * 4,
                },
                "degrade",
                t,
            )
        })
        .conclusion(
            "Same trace, three doors: reject sheds overload outright, the \
             bounded queue absorbs bursts and drains as sessions finish, \
             and degrade keeps admitting under a coarser ladder until the \
             hard cap.",
        )
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_policy_conserves_arrivals_and_completes_what_it_admits() {
        let report = replay_experiment(true);
        for label in ["reject", "queue", "degrade"] {
            let counter = |key: &str| report.metric(label, key).unwrap().as_u64().unwrap();
            let (admitted, degraded) = (counter("admitted"), counter("degraded"));
            let (queued, rejected) = (counter("queued"), counter("rejected"));
            assert_eq!(
                admitted + degraded + queued + rejected,
                counter("arrivals"),
                "{label}: every arrival gets exactly one outcome"
            );
            // Whatever was not rejected at the door eventually ran to
            // completion (queued tickets admit as capacity frees).
            assert_eq!(
                counter("completed"),
                counter("arrivals") - rejected,
                "{label}"
            );
        }
        // Policy-specific shapes: only the queue variant parks, only the
        // degrade variant downgrades ladders.
        assert_eq!(
            report.metric("reject", "degraded").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(report.metric("reject", "queued").unwrap().as_u64(), Some(0));
        assert_eq!(
            report.metric("queue", "degraded").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            report.metric("degrade", "queued").unwrap().as_u64(),
            Some(0)
        );
        // The Zipf head dominates the trace, so warm repeats exist.
        let head = report
            .metric("reject", "head_share")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(head > 0.25, "head template drew only {head}");
    }
}
