//! The fleet-aware client library: placement-routed sessions with
//! automatic failover.

use crate::placement::Placement;
use moqo_core::protocol::{AdmissionResponse, SessionRequest};
use moqo_costmodel::SharedCostModel;
use moqo_engine::QueryFingerprint;
use moqo_serve::NetClient;
use moqo_wire::NetError;
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// The placement table as the fleet shares it: the router mutates it on
/// health probes and rebalances; every client routes off the same copy.
pub type SharedPlacement = Arc<RwLock<Placement>>;

/// Creates a [`SharedPlacement`] from a table.
pub fn share(placement: Placement) -> SharedPlacement {
    Arc::new(RwLock::new(placement))
}

/// One placement-routed session: the connection plus where it landed.
pub struct FleetSession {
    /// The live session stream (drive it exactly like any [`NetClient`]).
    pub client: NetClient,
    /// The id of the node serving this session.
    pub node: String,
    /// The admission decision the node answered.
    pub admission: AdmissionResponse,
}

/// A thin client library over a [`SharedPlacement`]: fingerprints each
/// request under the fleet's cost model, routes it to the key's home
/// node, and fails over — marking dead nodes dead in the shared table —
/// when the home does not answer.
pub struct FleetClient {
    placement: SharedPlacement,
    model: SharedCostModel,
    /// How long to wait for each node's admission answer.
    pub submit_timeout: Duration,
}

impl FleetClient {
    /// A client routing over `placement`, fingerprinting under `model`
    /// (the fleet-wide default cost model; per-session overrides embed
    /// their own identity into the fingerprint).
    pub fn new(placement: SharedPlacement, model: SharedCostModel) -> Self {
        Self {
            placement,
            model,
            submit_timeout: Duration::from_secs(60),
        }
    }

    /// The routing key of a request: the same
    /// [`QueryFingerprint`] the nodes' shard routers and snapshot files
    /// use, computed under the request's effective cost model.
    pub fn fingerprint(&self, request: &SessionRequest) -> QueryFingerprint {
        QueryFingerprint::of(&request.spec, &request.effective_model(&self.model))
    }

    /// The shared placement table (read it for diagnostics; the router
    /// owns mutations).
    pub fn placement(&self) -> &SharedPlacement {
        &self.placement
    }

    /// Submits `request` to its home node, failing over on connection
    /// errors: an unreachable home is marked dead in the shared
    /// placement (rerouting all its keys) and the submit retries on the
    /// key's next home. Protocol-level answers — including typed
    /// rejections — are returned, never retried: only a node that cannot
    /// be reached at all is treated as dead.
    pub fn submit(&self, request: SessionRequest) -> Result<FleetSession, NetError> {
        let fp = self.fingerprint(&request);
        loop {
            let (node, addr) = {
                let placement = self.placement.read().expect("placement poisoned");
                match placement.home_of(fp) {
                    Some(n) => (n.id.clone(), n.addr.clone()),
                    None => return Err(NetError::Disconnected),
                }
            };
            let mut client = match NetClient::connect(&addr) {
                Ok(c) => c,
                Err(_) => {
                    // Node down: reroute its keys and try the new home.
                    self.placement
                        .write()
                        .expect("placement poisoned")
                        .mark_dead(&node);
                    continue;
                }
            };
            let admission = client.submit(request.clone(), self.submit_timeout)?;
            // Per-node route counters feed the router's rebalance
            // decisions; recording does not bump the placement version.
            self.placement
                .write()
                .expect("placement poisoned")
                .record_route(&node);
            return Ok(FleetSession {
                client,
                node,
                admission,
            });
        }
    }

    /// Pulls the warm frontier for `fp` from its **current home** (a
    /// control connection; `Ok(None)` is a miss). After a rebalance this
    /// is how a client-side cache or a new home primes itself.
    pub fn pull_frontier(&self, fp: QueryFingerprint) -> Result<Option<Vec<u8>>, NetError> {
        let addr = {
            let placement = self.placement.read().expect("placement poisoned");
            match placement.home_of(fp) {
                Some(n) => n.addr.clone(),
                None => return Err(NetError::Disconnected),
            }
        };
        let mut control = NetClient::connect(&addr)?;
        control.pull_frontier(fp.as_u64(), self.submit_timeout)
    }

    /// The fleet-wide default cost model the client fingerprints under.
    pub fn model(&self) -> &SharedCostModel {
        &self.model
    }
}
