//! Fleet serving: kill a node, keep the warmth.
//!
//! ```text
//! cargo run --release --example fleet_serving
//! ```
//!
//! Three serving nodes share a snapshot directory; a placement table
//! (rendezvous hash + override pins) decides which node owns which
//! query fingerprint, and a router probes health and ships warm state.
//! This example asserts the fleet story end to end over real loopback
//! sockets:
//!
//! (a) **placement routing**: sessions land on their fingerprint's home
//!     node, and repeats start warm there (zero plans generated);
//! (b) **kill and adopt**: after the home node is killed, the router
//!     detects the death, placement reroutes only the dead node's keys,
//!     the new home re-parks the frontier from the shared snapshot
//!     directory, and the warm repeat **still generates zero plans**;
//! (c) **bit-exact across the hand-off**: the client-side view of the
//!     post-kill repeat stays `bits_eq` with the serving node's view.

use moqo::fleet::{share, FleetClient, FleetNode, FleetNodeConfig, FleetRouter, Placement};
use moqo::prelude::*;
use moqo::serve::TicketStatus;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const IDLE: Duration = Duration::from_secs(120);

fn spec() -> Arc<QuerySpec> {
    Arc::new(moqo::query::testkit::chain_query(4, 90_000))
}

/// Drives one session to its terminal event; returns the serving node id.
fn run_session(client: &FleetClient, spec: Arc<QuerySpec>) -> String {
    let mut session = client.submit(SessionRequest::new(spec)).expect("routed");
    assert!(session.admission.is_admitted());
    let deadline = Instant::now() + IDLE;
    while session.client.view().invocations < 3 || session.client.view().first_report.is_none() {
        assert!(Instant::now() < deadline, "ladder never saturated");
        session.client.recv(IDLE).expect("healthy stream");
    }
    session
        .client
        .command(SessionCommand::Cancel)
        .expect("send");
    session.client.wait_finished(IDLE).expect("terminal event");
    session.node
}

fn main() {
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let dir = std::env::temp_dir().join(format!("moqo-fleet-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // --- Three nodes, one shared snapshot directory, one placement. ---
    let mut nodes: HashMap<String, FleetNode> = HashMap::new();
    let mut placement = Placement::new();
    for i in 0..3 {
        let id = format!("node-{i}");
        let node = FleetNode::start(
            model.clone(),
            FleetNodeConfig::loopback(&id)
                .with_store(&dir)
                .with_sweep(Duration::from_millis(25)),
        )
        .expect("bind loopback");
        println!("{id} listening on {}", node.addr());
        placement.add_node(&id, node.addr());
        nodes.insert(id, node);
    }
    let placement = share(placement);
    let client = FleetClient::new(placement.clone(), model.clone());
    let router = FleetRouter::new(placement.clone());

    // --- (a) Cold pass lands on the placement home and parks there. ---
    let fp = client.fingerprint(&SessionRequest::new(spec()));
    let home = run_session(&client, spec());
    assert_eq!(
        home,
        placement.read().unwrap().home_of(fp).unwrap().id,
        "session must land on the placement home"
    );
    assert!(nodes[&home].net().moqo().engine().has_parked(fp));
    println!("ok: cold session served and parked by its home {home}");

    // Wait for the home's persistence sweeper to reach the shared store.
    let file = dir.join(format!("{:016x}.frontier", fp.as_u64()));
    let deadline = Instant::now() + IDLE;
    while !file.exists() {
        assert!(Instant::now() < deadline, "sweep never persisted");
        std::thread::sleep(Duration::from_millis(10));
    }

    // --- (b) Kill the home; the fleet keeps the warmth. ---
    nodes.remove(&home).expect("home is running").kill();
    let health = router.probe();
    assert!(
        health.iter().any(|h| h.id == home && !h.alive),
        "probe must find the body: {health:?}"
    );
    let new_home = placement.read().unwrap().home_of(fp).unwrap().id.clone();
    assert_ne!(new_home, home, "a dead node must not own keys");
    let adopted = router.adopt(fp).expect("pull answered");
    assert!(
        adopted.is_some(),
        "the new home must adopt the frontier from the shared store"
    );
    assert!(nodes[&new_home].net().moqo().engine().has_parked(fp));
    println!("ok: {home} killed; {new_home} adopted its warm state from the store");

    // The warm repeat after the kill: zero plans generated.
    let mut repeat = client.submit(SessionRequest::new(spec())).expect("routed");
    assert_eq!(repeat.node, new_home);
    let deadline = Instant::now() + IDLE;
    while repeat.client.view().invocations < 3 || repeat.client.view().first_report.is_none() {
        assert!(Instant::now() < deadline, "repeat never saturated");
        repeat.client.recv(IDLE).expect("healthy stream");
    }
    let first = repeat.client.view().first_report.clone().unwrap();
    assert_eq!(
        first.plans_generated, 0,
        "warm repeat after the kill must not regenerate plans"
    );
    println!("ok: warm repeat after node death generated 0 plans");

    // --- (c) Client view bits_eq the serving node's view. ---
    repeat.client.command(SessionCommand::Cancel).expect("send");
    repeat.client.wait_finished(IDLE).expect("terminal event");
    let ticket = Ticket::from_u64(repeat.client.server_ticket().unwrap());
    match nodes[&new_home].net().moqo().poll(ticket) {
        Some(TicketStatus::Active { view, .. }) => {
            assert!(
                repeat.client.view().frontier.bits_eq(&view.frontier),
                "client view diverged across the hand-off"
            );
            assert_eq!(repeat.client.view().epoch, view.epoch);
            println!(
                "ok: client view bits_eq the adopting node's view ({} frontier points)",
                view.frontier.len()
            );
        }
        other => panic!("expected a queryable ticket, got {other:?}"),
    }

    let stats = nodes[&new_home].net().stats();
    println!(
        "{} stats: pulls={} pushes={} warm_routed={} disconnect_parked={}",
        new_home,
        stats.frontier_pulls,
        stats.frontier_pushes,
        stats.warm_routed,
        stats.disconnect_parked
    );
    for (_, node) in nodes {
        node.stop();
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("ok: fleet serving verified end to end");
}
