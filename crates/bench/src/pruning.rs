//! The `repro pruning` experiment: throughput of the dominance-scan
//! pruning kernels, scalar visitor versus batched struct-of-arrays
//! lanes, plus the prune-path share of end-to-end invocation time.
//!
//! Two measurements:
//!
//! 1. **Kernel microbench** — synthetic cell grids with *controlled*
//!    cell sizes (costs pinned into known `floor(log2(1+v))` buckets,
//!    one bucket vector per cell) are scanned with
//!    [`PlanIndex::dominance_scan`] (batched lane kernels) and
//!    [`dominance_scan_scalar`] (the per-entry `dyn` visitor the
//!    optimizer used before the refactor). `threshold =
//!    f64::NEG_INFINITY` forces full scans so both paths do identical
//!    logical work; the reported medians isolate the storage-layout and
//!    call-protocol difference. The same builder feeds the criterion
//!    group in `benches/enumeration.rs`.
//! 2. **Prune share** — full refinement ladders with
//!    [`IamaConfig::time_pruning`] on, batched kernels on versus off,
//!    reporting how much of the invocation wall-clock the witness
//!    search consumes and its comparison throughput.
//!
//! Both paths are decision-equivalent by construction (see
//! `moqo_index::DominanceScan`); the experiment double-checks that the
//! measured runs returned bit-identical frontier bytes.

use moqo_core::{IamaConfig, IamaOptimizer};
use moqo_cost::{Bounds, CostVector, ResolutionSchedule};
use moqo_costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo_index::{dominance_scan_scalar, CellGrid, Entry, PlanIndex};
use moqo_query::{testkit, QuerySpec};
use std::sync::Arc;
use std::time::Instant;

/// Cost-metric dimensionalities the kernel microbench sweeps.
pub const KERNEL_DIMS: &[usize] = &[2, 3, 6];

/// Grid-cell populations the kernel microbench sweeps.
pub const KERNEL_CELL_SIZES: &[usize] = &[8, 64, 512];

/// A tiny deterministic xorshift generator so the benchmark inputs are
/// reproducible without external crates in library code.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Builds a cell grid with exactly `cells` populated cells of
/// `cell_size` entries each: cell `c` gets the per-metric log-bucket
/// `2 + 3 * digit_m(c)` (base-16 digits), and every entry's metric `m`
/// is drawn uniformly from that bucket's value range
/// `[2^e - 1, 2^{e+1} - 1)`, so `floor(log2(1 + v)) = e` exactly and no
/// two cells collide. All entries carry level 0.
///
/// Returns the grid and a mid-range scan target. `cells` must be at
/// most `16^min(dim, 2)` (256 for `dim >= 2`) to keep bucket vectors
/// distinct.
pub fn build_pruning_grid(
    dim: usize,
    cells: usize,
    cell_size: usize,
    seed: u64,
) -> (CellGrid<u32>, CostVector) {
    assert!(cells <= 16usize.pow(dim.min(2) as u32));
    let mut rng = XorShift::new(seed);
    let mut grid = CellGrid::new(dim);
    let mut item = 0u32;
    for c in 0..cells {
        let exps: Vec<u32> = (0..dim)
            .map(|m| 2 + 3 * ((c >> (4 * m.min(1))) as u32 & 0xf))
            .collect();
        for _ in 0..cell_size {
            let vals: Vec<f64> = exps
                .iter()
                .map(|&e| {
                    let lo = (1u64 << e) as f64;
                    lo * (1.0 + rng.next_f64()) - 1.0
                })
                .collect();
            grid.insert(Entry::new(item, CostVector::new(&vals), 0, 0));
            item += 1;
        }
    }
    let target = CostVector::new(&vec![64.0; dim]);
    (grid, target)
}

/// One (dim, cell size) point of the kernel microbench.
#[derive(Clone, Debug)]
pub struct KernelMeasurement {
    /// Cost dimensionality.
    pub dim: usize,
    /// Entries per grid cell.
    pub cell_size: usize,
    /// Populated cells in the grid.
    pub cells: usize,
    /// Total entries scanned per pass (`cells * cell_size`).
    pub entries: usize,
    /// Median nanoseconds per full scalar-visitor scan.
    pub scalar_ns: f64,
    /// Median nanoseconds per full batched-lane scan.
    pub batch_ns: f64,
    /// Scalar cost-vector comparisons per second (entries / scan time).
    pub scalar_comparisons_per_sec: f64,
    /// Batched cost-vector comparisons per second.
    pub batch_comparisons_per_sec: f64,
    /// `scalar_ns / batch_ns`.
    pub speedup: f64,
}

/// Median of a small sample (consumes and sorts it).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Times `scan` (which performs one full pass over `entries` entries)
/// and returns its median ns/pass over `samples` samples of `reps`
/// passes each.
fn time_scans(mut scan: impl FnMut() -> f64, reps: usize, samples: usize) -> f64 {
    let mut per_pass = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        let mut sink = 0.0;
        for _ in 0..reps {
            sink += scan();
        }
        let ns = t.elapsed().as_nanos() as f64 / reps as f64;
        assert!(sink.is_finite());
        per_pass.push(ns);
    }
    median(per_pass)
}

/// Runs the kernel microbench sweep ([`KERNEL_DIMS`] ×
/// [`KERNEL_CELL_SIZES`]).
pub fn kernel_measurements(fast: bool) -> Vec<KernelMeasurement> {
    let (samples, target_total) = if fast { (3, 1024) } else { (5, 4096) };
    let mut out = Vec::new();
    for &dim in KERNEL_DIMS {
        for &cell_size in KERNEL_CELL_SIZES {
            let cells = (target_total / cell_size).clamp(1, 256);
            let entries = cells * cell_size;
            let (grid, target) = build_pruning_grid(dim, cells, cell_size, 0x5eed + dim as u64);
            let bounds = Bounds::unbounded(dim);
            let reps = (2_000_000 / entries).max(8);
            // Full scans: a negative-infinity threshold never triggers
            // the early exit, so both paths walk every entry.
            let scalar_ns = time_scans(
                || {
                    dominance_scan_scalar(
                        &grid,
                        &bounds,
                        0,
                        &target,
                        f64::NEG_INFINITY,
                        &mut |_| true,
                    )
                    .best_factor
                },
                reps,
                samples,
            );
            let batch_ns = time_scans(
                || {
                    grid.dominance_scan(&bounds, 0, &target, f64::NEG_INFINITY, &mut |_| true)
                        .best_factor
                },
                reps,
                samples,
            );
            let per_sec = |ns: f64| entries as f64 / (ns * 1e-9);
            out.push(KernelMeasurement {
                dim,
                cell_size,
                cells,
                entries,
                scalar_ns,
                batch_ns,
                scalar_comparisons_per_sec: per_sec(scalar_ns),
                batch_comparisons_per_sec: per_sec(batch_ns),
                speedup: scalar_ns / batch_ns,
            });
        }
    }
    out
}

/// End-to-end prune-path profile of one refinement ladder.
#[derive(Clone, Debug)]
pub struct PruneShareRow {
    /// Query name.
    pub query: String,
    /// Whether the batched kernels were enabled.
    pub batch_kernels: bool,
    /// Total seconds across the ladder.
    pub total_seconds: f64,
    /// Seconds spent inside the pruning witness search.
    pub prune_seconds: f64,
    /// `prune_seconds / total_seconds`.
    pub prune_share: f64,
    /// Cost-vector comparisons charged to pruning (block-granular for
    /// the batched path).
    pub prune_comparisons: u64,
    /// `prune_comparisons / prune_seconds`.
    pub comparisons_per_sec: f64,
}

/// The lean cost model used for enumeration-plane and pruning profiles:
/// small option sets and no evaluation spin keep ladders fast while the
/// pruning structure stays realistic.
fn lean_model() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    )
}

/// Runs full refinement ladders with pruning timed, batched kernels on
/// and off, over a mixed topology workload. Panics if the two modes
/// disagree on a single frontier byte — the kernels must change time,
/// never bytes.
pub fn prune_share_rows(fast: bool) -> Vec<PruneShareRow> {
    let model = Arc::new(lean_model());
    let schedule = ResolutionSchedule::linear(if fast { 2 } else { 4 }, 1.05, 0.5);
    let n = if fast { 7 } else { 9 };
    let specs: Vec<QuerySpec> = vec![
        testkit::chain_query(n, 100_000),
        testkit::star_query(if fast { 5 } else { 7 }, 100_000),
        testkit::clique_query(if fast { 4 } else { 6 }, 1000),
    ];
    let bounds = Bounds::unbounded(model.dim());
    let mut out = Vec::new();
    for spec in &specs {
        let mut frontiers = Vec::new();
        for batch in [true, false] {
            let config = IamaConfig {
                use_batch_kernels: batch,
                time_pruning: true,
                ..IamaConfig::default()
            };
            let mut opt = IamaOptimizer::with_config(
                Arc::new(spec.clone()),
                model.clone(),
                schedule.clone(),
                config,
            );
            let mut total_seconds = 0.0;
            for r in 0..=schedule.r_max() {
                total_seconds += opt.optimize(&bounds, r).seconds();
            }
            let stats = opt.stats();
            let prune_seconds = stats.prune_nanos as f64 * 1e-9;
            out.push(PruneShareRow {
                query: spec.name.clone(),
                batch_kernels: batch,
                total_seconds,
                prune_seconds,
                prune_share: prune_seconds / total_seconds.max(1e-12),
                prune_comparisons: stats.prune_comparisons,
                comparisons_per_sec: stats.prune_comparisons as f64 / prune_seconds.max(1e-12),
            });
            frontiers.push(opt.frontier(&bounds, schedule.r_max()));
        }
        assert!(
            frontiers[0].bits_eq(&frontiers[1]),
            "{}: batched and scalar pruning disagree on frontier bytes",
            spec.name
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_builder_hits_the_requested_cell_sizes() {
        let (grid, _) = build_pruning_grid(3, 7, 16, 99);
        assert_eq!(grid.len(), 7 * 16);
        // Every entry is visible to a full scan at level 0...
        let mut seen = 0usize;
        grid.scan(&Bounds::unbounded(3), 0, &mut |_| {
            seen += 1;
            false
        });
        assert_eq!(seen, 7 * 16);
        // ...and both scan paths report the same witness minimum.
        let target = CostVector::new(&[64.0; 3]);
        let batched = grid.dominance_scan(
            &Bounds::unbounded(3),
            0,
            &target,
            f64::NEG_INFINITY,
            &mut |_| true,
        );
        let scalar = dominance_scan_scalar(
            &grid,
            &Bounds::unbounded(3),
            0,
            &target,
            f64::NEG_INFINITY,
            &mut |_| true,
        );
        assert_eq!(batched.best_factor.to_bits(), scalar.best_factor.to_bits());
    }

    #[test]
    fn builder_rejects_colliding_cell_counts() {
        let result = std::panic::catch_unwind(|| build_pruning_grid(2, 257, 1, 1));
        assert!(result.is_err());
    }
}
