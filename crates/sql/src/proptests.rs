//! Property tests: random ASTs round-trip through print → parse.

use crate::ast::{ColumnRef, Comparison, Condition, Literal, SelectStatement, TableRef};
use crate::parser::parse_select;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    // Identifiers that cannot collide with keywords.
    "[a-z][a-z0-9_]{0,6}"
        .prop_filter("not a keyword", |s| {
            !["select", "from", "where", "and", "in", "exists", "as"].contains(&s.as_str())
        })
        .prop_map(|s| s.to_string())
}

fn column_ref(aliases: Vec<String>) -> impl Strategy<Value = ColumnRef> {
    (0..aliases.len(), ident()).prop_map(move |(i, column)| ColumnRef {
        table: aliases[i].clone(),
        column,
    })
}

fn comparison() -> impl Strategy<Value = Comparison> {
    prop_oneof![
        Just(Comparison::Eq),
        Just(Comparison::Neq),
        Just(Comparison::Lt),
        Just(Comparison::Le),
        Just(Comparison::Gt),
        Just(Comparison::Ge),
    ]
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Positive numbers with short decimal expansions survive the
        // f64 -> Display -> parse round trip exactly.
        (0u32..100_000).prop_map(|n| Literal::Number(n as f64)),
        "[a-zA-Z0-9 _]{0,10}".prop_map(Literal::String),
    ]
}

fn statement(depth: u32) -> BoxedStrategy<SelectStatement> {
    (proptest::collection::vec(ident(), 1..4), any::<bool>())
        .prop_flat_map(move |(tables, star)| {
            // Aliases a0, a1, ... keep alias resolution unambiguous even
            // when table names repeat (self-joins).
            let aliases: Vec<String> = (0..tables.len()).map(|i| format!("a{i}")).collect();
            let from: Vec<TableRef> = tables
                .iter()
                .zip(&aliases)
                .map(|(t, a)| TableRef {
                    table: t.clone(),
                    alias: a.clone(),
                })
                .collect();
            let projections = if star {
                Just(Vec::new()).boxed()
            } else {
                proptest::collection::vec(column_ref(aliases.clone()), 1..3).boxed()
            };
            let join = (column_ref(aliases.clone()), column_ref(aliases.clone()))
                .prop_map(|(l, r)| Condition::Join(l, r));
            let filter = (column_ref(aliases.clone()), comparison(), literal())
                .prop_map(|(c, op, l)| Condition::Filter(c, op, l));
            let condition = if depth == 0 {
                prop_oneof![join, filter].boxed()
            } else {
                let sub_in = (column_ref(aliases.clone()), statement(depth - 1))
                    .prop_map(|(c, s)| Condition::InSubquery(c, Box::new(s)));
                let sub_exists = statement(depth - 1).prop_map(|s| Condition::Exists(Box::new(s)));
                prop_oneof![4 => join, 4 => filter, 1 => sub_in, 1 => sub_exists].boxed()
            };
            let conditions = proptest::collection::vec(condition, 0..4);
            (projections, Just(from), conditions).prop_map(|(projections, from, conditions)| {
                SelectStatement {
                    projections,
                    from,
                    conditions,
                }
            })
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse is the identity on the AST.
    #[test]
    fn print_parse_roundtrip(stmt in statement(2)) {
        let sql = stmt.to_string();
        let reparsed = parse_select(&sql)
            .unwrap_or_else(|e| panic!("reparse failed for {sql:?}: {e}"));
        prop_assert_eq!(reparsed, stmt);
    }

    /// Parsing never panics on arbitrary input.
    #[test]
    fn parser_is_panic_free(input in "[ -~]{0,80}") {
        let _ = parse_select(&input);
    }
}
