//! Fleet experiment: the kill-and-repeat story over **real processes**
//! (`repro fleet`).
//!
//! The fleet integration tests and `examples/fleet_serving.rs` run their
//! nodes in-process (deterministic, CI-cheap); this experiment spawns N
//! actual `repro fleet-node` child processes over loopback TCP and
//! SIGKILLs one of them mid-experiment, so process isolation is real:
//! the dead node's in-memory warm state is genuinely gone, and the only
//! path back to zero-plan repeats is the fleet machinery — placement
//! rebalance, router adoption, and the shared `SnapshotStore` directory.
//!
//! Phases reported (submit→first-frontier, socket to socket):
//!
//! 1. **cold** — every fingerprint is new; sessions park on their
//!    placement homes and the sweepers persist them to the shared store.
//! 2. **warm** — exact repeats; every session resumes its parked
//!    frontier (zero plans generated).
//! 3. **post-kill warm** — the home node of the first workload key is
//!    SIGKILLed, the router probes and marks it dead, orphaned keys are
//!    adopted from the shared store by their new homes, and the repeats
//!    **still** all start at zero plans. The driver also re-runs the
//!    orphaned key to ladder saturation and checks the client-side
//!    [`SessionView`](moqo_core::protocol::SessionView) `bits_eq`
//!    against the frontier the serving node parked.

use moqo_core::protocol::{SessionCommand, SessionRequest};
use moqo_core::IamaOptimizer;
use moqo_costmodel::{SharedCostModel, StandardCostModel};
use moqo_engine::QueryFingerprint;
use moqo_fleet::{share, FleetClient, FleetNode, FleetNodeConfig, FleetRouter, Placement};
use moqo_query::{testkit, QuerySpec};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::harness::{Experiment, ExperimentReport, Trial};
use crate::stats::{Samples, Summary};

const IDLE: Duration = Duration::from_secs(600);

/// Sweep cadence of spawned nodes: short, so the cold pass reaches the
/// shared store quickly and the kill loses at most a beat of state.
const SWEEP: Duration = Duration::from_millis(25);

/// Distinct chain and star fingerprints, repeated verbatim by the warm
/// passes (mirrors `net_workload`, smaller: each session crosses a
/// process boundary).
pub fn fleet_workload(fast: bool) -> Vec<Arc<QuerySpec>> {
    let mut specs: Vec<Arc<QuerySpec>> = Vec::new();
    let top = if fast { 3 } else { 4 };
    for n in 2..=top {
        specs.push(Arc::new(testkit::chain_query(n, 55_000)));
        specs.push(Arc::new(testkit::star_query(n, 85_000)));
    }
    specs
}

/// The child half of `repro fleet`: serves one fleet node until stdin
/// reaches EOF (which the parent's exit guarantees), then stops
/// gracefully. Announces `LISTENING <addr>` on stdout so the parent can
/// build the placement. Never returns.
pub fn fleet_node_serve(id: &str, store: &Path) -> ! {
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let node = FleetNode::start(
        model,
        FleetNodeConfig::loopback(id)
            .with_store(store)
            .with_sweep(SWEEP),
    )
    .expect("bind loopback");
    println!("LISTENING {}", node.addr());
    let _ = std::io::stdout().flush();
    // Park until the parent closes our stdin; a SIGKILL from the parent
    // (the experiment's whole point) never reaches this line.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    node.stop();
    std::process::exit(0)
}

/// Spawns one `repro fleet-node` child and reads its announced address.
fn spawn_node(exe: &Path, id: &str, store: &Path) -> (Child, String) {
    let mut child = Command::new(exe)
        .arg("fleet-node")
        .arg("--id")
        .arg(id)
        .arg("--store")
        .arg(store)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn fleet node process");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("node announces itself");
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("bad node announcement {line:?}"))
        .to_string();
    (child, addr)
}

/// Figures from one pass over the workload.
struct PhaseFigures {
    sessions: usize,
    us: Samples,
    zero_plan_starts: u64,
}

impl PhaseFigures {
    fn record(&self, trial: &mut Trial) {
        trial.int("sessions", self.sessions as u64);
        trial.summary_us("", Summary::of_or_zero(&self.us));
        trial.int("zero_plan_starts", self.zero_plan_starts);
    }
}

/// Drives every spec through its own placement-routed session, recording
/// submit→first-frontier latency; sessions are cancelled afterwards so
/// their frontiers park (and sweep to the store) for the next pass.
fn run_phase(client: &FleetClient, specs: &[Arc<QuerySpec>]) -> PhaseFigures {
    let mut us = Samples::with_capacity(specs.len());
    let mut zero_plan_starts = 0u64;
    for spec in specs {
        let t0 = Instant::now();
        let mut session = client
            .submit(SessionRequest::new(spec.clone()))
            .expect("routed to a live node");
        assert!(session.admission.is_admitted());
        while session.client.view().frontier.is_empty() {
            session.client.recv(IDLE).expect("healthy stream");
        }
        us.push(t0.elapsed().as_secs_f64() * 1e6);
        while session.client.view().first_report.is_none() {
            session.client.recv(IDLE).expect("healthy stream");
        }
        if session
            .client
            .view()
            .first_report
            .as_ref()
            .is_some_and(|r| r.plans_generated == 0)
        {
            zero_plan_starts += 1;
        }
        session
            .client
            .command(SessionCommand::Cancel)
            .expect("send");
        session.client.wait_finished(IDLE).expect("terminal event");
    }
    PhaseFigures {
        sessions: specs.len(),
        us,
        zero_plan_starts,
    }
}

/// Runs one key to ladder saturation on its (post-kill) home and checks
/// the client-side view `bits_eq` the frontier the node parked: the pull
/// endpoint hands back the parked `export_frontier` bytes, and the
/// re-imported optimizer's target-resolution frontier must be
/// bit-identical to what the deltas reassembled client-side.
fn view_matches_served_frontier(
    client: &FleetClient,
    model: &SharedCostModel,
    spec: Arc<QuerySpec>,
    fp: QueryFingerprint,
) -> bool {
    let mut session = client
        .submit(SessionRequest::new(spec))
        .expect("routed to a live node");
    assert!(session.admission.is_admitted());
    // Saturate the ladder: once the *next* resolution equals the one the
    // last invocation ran at, that invocation ran at the target r_max —
    // so the last event's frontier is the r_max frontier.
    loop {
        let view = session.client.view();
        if view
            .last_report
            .as_ref()
            .is_some_and(|r| r.resolution == view.resolution)
        {
            break;
        }
        session.client.recv(IDLE).expect("healthy stream");
    }
    session
        .client
        .command(SessionCommand::Cancel)
        .expect("send");
    session.client.wait_finished(IDLE).expect("terminal event");
    let bounds = session.client.view().bounds.expect("bounds seen");
    let blob = client
        .pull_frontier(fp)
        .expect("control pull answered")
        .expect("the serving node parked the session");
    let opt = IamaOptimizer::import_frontier(model.clone(), &blob).expect("self-validating bytes");
    let served = opt.frontier(&bounds, opt.schedule().r_max());
    served.bits_eq(&session.client.view().frontier)
}

/// Everything the kill-and-repeat variants share: the live fleet and
/// the workload routing metadata.
struct FleetState {
    model: SharedCostModel,
    dir: PathBuf,
    children: HashMap<String, Child>,
    placement: moqo_fleet::SharedPlacement,
    client: FleetClient,
    router: FleetRouter,
    specs: Vec<Arc<QuerySpec>>,
    fps: Vec<QueryFingerprint>,
    homes: Vec<String>,
}

fn fleet_state(exe: &Path, fast: bool, tag: &str) -> FleetState {
    let model: SharedCostModel = Arc::new(StandardCostModel::paper_metrics());
    let dir = std::env::temp_dir().join(format!("moqo-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let n = 3;
    let mut children: HashMap<String, Child> = HashMap::new();
    let mut placement = Placement::new();
    for i in 0..n {
        let id = format!("node-{i}");
        let (child, addr) = spawn_node(exe, &id, &dir);
        placement.add_node(&id, addr);
        children.insert(id, child);
    }
    let placement = share(placement);
    let client = FleetClient::new(placement.clone(), model.clone());
    let router = FleetRouter::new(placement.clone());

    let specs = fleet_workload(fast);
    let fps: Vec<QueryFingerprint> = specs
        .iter()
        .map(|s| client.fingerprint(&SessionRequest::new(s.clone())))
        .collect();
    let homes: Vec<String> = fps
        .iter()
        .map(|fp| {
            placement
                .read()
                .unwrap()
                .home_of(*fp)
                .expect("live fleet")
                .id
                .clone()
        })
        .collect();
    FleetState {
        model,
        dir,
        children,
        placement,
        client,
        router,
        specs,
        fps,
        homes,
    }
}

/// Graceful teardown: closing stdin is the children's stop signal.
fn fleet_teardown(mut state: FleetState) {
    for (_, child) in state.children.iter_mut() {
        drop(child.stdin.take());
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&state.dir);
}

/// Blocks until every fingerprint's sweep reached the shared store —
/// the state a kill must not be able to destroy.
fn wait_for_sweep(dir: &Path, fps: &[QueryFingerprint]) {
    let deadline = Instant::now() + IDLE;
    for fp in fps {
        let file = dir.join(format!("{:016x}.frontier", fp.as_u64()));
        while !file.exists() {
            assert!(Instant::now() < deadline, "sweep never persisted {file:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// Spawns 3 real `repro fleet-node` processes over one shared snapshot
/// directory, runs the cold and warm passes, SIGKILLs the home of the
/// first workload key, and proves the post-kill repeats still all start
/// at zero plans — asserting every step. `exe` is the `repro` binary
/// itself (`std::env::current_exe()` in the CLI,
/// `env!("CARGO_BIN_EXE_repro")` in tests).
pub fn fleet_experiment(exe: &Path, fast: bool) -> ExperimentReport {
    let exe = exe.to_path_buf();
    Experiment::new("fleet", fast, move || fleet_state(&exe, fast, "bench"))
        .title("fleet kill-and-repeat over real processes")
        .variant("kill-and-repeat", "cold", |s, t| {
            let cold = run_phase(&s.client, &s.specs);
            assert_eq!(cold.zero_plan_starts, 0, "first sight cannot be warm");
            cold.record(t);
        })
        .variant("kill-and-repeat", "warm", |s, t| {
            let warm = run_phase(&s.client, &s.specs);
            assert_eq!(
                warm.zero_plan_starts, warm.sessions as u64,
                "every warm repeat must resume its parked frontier"
            );
            warm.record(t);
            wait_for_sweep(&s.dir, &s.fps);
        })
        .variant("kill-and-repeat", "post-kill warm", |s, t| {
            // SIGKILL the home of the first key: its in-memory frontiers
            // are gone for real; only the shared store survives.
            let victim = s.homes[0].clone();
            let mut corpse = s.children.remove(&victim).expect("victim is running");
            corpse.kill().expect("SIGKILL");
            corpse.wait().expect("reap");

            let health = s.router.probe();
            assert!(
                health.iter().any(|h| h.id == victim && !h.alive),
                "the probe must find the body: {health:?}"
            );
            let orphans: Vec<QueryFingerprint> = s
                .fps
                .iter()
                .zip(&s.homes)
                .filter(|(_, home)| **home == victim)
                .map(|(fp, _)| *fp)
                .collect();
            let mut adopted_warm = 0u64;
            for fp in &orphans {
                let new_home = s
                    .placement
                    .read()
                    .unwrap()
                    .home_of(*fp)
                    .expect("survivors left")
                    .id
                    .clone();
                assert_ne!(new_home, victim, "a dead node must not own keys");
                if s.router.adopt(*fp).expect("pull answered").is_some() {
                    adopted_warm += 1;
                }
            }
            assert_eq!(
                adopted_warm,
                orphans.len() as u64,
                "every orphaned key must adopt from the shared store"
            );

            // The acceptance assertion: repeats after the kill are still
            // all zero-plan starts — survivors kept their keys warm,
            // orphans were re-parked from the store by their new homes.
            let post = run_phase(&s.client, &s.specs);
            assert_eq!(
                post.zero_plan_starts, post.sessions as u64,
                "a warm repeat must survive its home node's death"
            );
            let view_bits_eq =
                view_matches_served_frontier(&s.client, &s.model, s.specs[0].clone(), s.fps[0]);
            assert!(
                view_bits_eq,
                "client view diverged from the serving node across the hand-off"
            );
            post.record(t);
            t.text("killed", victim);
            t.int("orphaned", orphans.len() as u64);
            t.int("adopted_warm", adopted_warm);
            t.flag("view_bits_eq", view_bits_eq);
        })
        .variant("routing", "routes", |s, t| {
            t.int("nodes", s.children.len() as u64 + 1);
            let routes: Vec<(String, u64)> = s
                .placement
                .read()
                .unwrap()
                .route_counts()
                .iter()
                .map(|(id, n)| (id.clone(), *n))
                .collect();
            for (id, n) in routes {
                t.int(&format!("routed_{id}"), n);
            }
        })
        .teardown(fleet_teardown)
        .run()
}

/// What a bounded `repro fleet-router --watch` run observed in total.
#[derive(Clone, Debug, Default)]
pub struct WatchReport {
    /// Liveness-loop beats executed.
    pub ticks: u64,
    /// Nodes found dead across the run.
    pub deaths: usize,
    /// Keys orphaned by those deaths.
    pub orphaned: usize,
    /// Orphaned keys re-parked warm from the shared store.
    pub adopted_warm: usize,
    /// Keys shipped warm between nodes by load leveling.
    pub rebalanced: usize,
}

/// The daemonizable liveness loop behind `repro fleet-router --watch
/// <ms>`: spawns 3 real `repro fleet-node` processes over a shared
/// snapshot directory, parks the workload on them, then runs
/// [`FleetRouter::watch_tick`] every `every` — probe, adopt orphans
/// after a death, level skewed ownership — printing one line per beat.
///
/// With `ticks: None` the loop runs until the process dies (SIGTERM is
/// the intended stop; the node children notice the closed stdin pipes
/// and drain gracefully). A bounded run (`ticks: Some(n)`, the `--ticks`
/// flag) additionally SIGKILLs one node after the second beat so the
/// death-detection and store-adoption paths demonstrably fire, then
/// tears the fleet down and reports totals.
pub fn fleet_router_watch(
    exe: &Path,
    every: Duration,
    ticks: Option<u64>,
    fast: bool,
) -> WatchReport {
    let state = fleet_state(exe, fast, "watch");
    run_phase(&state.client, &state.specs);
    wait_for_sweep(&state.dir, &state.fps);
    println!(
        "watching {} keys on 3 nodes every {:?} ({})",
        state.fps.len(),
        every,
        match ticks {
            Some(t) => format!("{t} ticks, one induced kill"),
            None => "until SIGTERM".to_string(),
        }
    );

    let mut state = state;
    let mut report = WatchReport::default();
    loop {
        std::thread::sleep(every);
        if ticks.is_some() && report.ticks == 2 {
            // Bounded demo runs induce the failure they exist to repair:
            // SIGKILL the current home of the first workload key.
            let victim = state
                .placement
                .read()
                .unwrap()
                .home_of(state.fps[0])
                .expect("live fleet")
                .id
                .clone();
            if let Some(mut corpse) = state.children.remove(&victim) {
                corpse.kill().expect("SIGKILL");
                corpse.wait().expect("reap");
                println!("tick {}: SIGKILLed {victim}", report.ticks);
            }
        }
        let tick = state.router.watch_tick(&state.fps, 2);
        report.ticks += 1;
        report.deaths += tick.died.len();
        report.orphaned += tick.orphaned;
        report.adopted_warm += tick.adopted_warm;
        report.rebalanced += tick.rebalanced;
        println!(
            "tick {}: {} alive, died {:?}, orphaned {}, adopted warm {}, \
             adopted cold {}, rebalanced {}",
            report.ticks,
            tick.health.iter().filter(|h| h.alive).count(),
            tick.died,
            tick.orphaned,
            tick.adopted_warm,
            tick.adopted_cold,
            tick.rebalanced,
        );
        if ticks.is_some_and(|t| report.ticks >= t) {
            break;
        }
    }
    fleet_teardown(state);
    report
}

/// Harness wrapper for a **bounded** router-watch run: executes
/// [`fleet_router_watch`] with `Some(ticks)` and records its totals, so
/// `repro fleet-router --ticks N` emits the shared envelope like every
/// other experiment. (The unbounded daemon mode bypasses the harness —
/// it never returns.)
pub fn fleet_router_experiment(
    exe: &Path,
    every: Duration,
    ticks: u64,
    fast: bool,
) -> ExperimentReport {
    let exe = exe.to_path_buf();
    Experiment::new("fleet-router", fast, || ())
        .title("fleet-router watch loop: probe, adopt, level")
        .variant("watch", "bounded run", move |_, t| {
            let report = fleet_router_watch(&exe, every, Some(ticks), fast);
            t.int("ticks", report.ticks);
            t.int("deaths", report.deaths as u64);
            t.int("orphaned", report.orphaned as u64);
            t.int("adopted_warm", report.adopted_warm as u64);
            t.int("rebalanced", report.rebalanced as u64);
        })
        .conclusion(
            "the watch loop finds the induced death and adopts every \
             orphaned key warm from the shared store.",
        )
        .run()
}
