//! Cost-aggregation functions and the Principle of Near-Optimality (PONO).
//!
//! The paper's formal guarantees hold for cost metrics whose recursive
//! aggregation function — the function computing a plan's cost from the
//! costs of its two sub-plans plus the join operator's own contribution —
//! can be expressed with the operators *sum*, *maximum*, *minimum*, and
//! *multiplication by a constant* (Section 5.1). All such functions satisfy
//! PONO (Definition 1): replacing sub-plans by `alpha`-near-optimal
//! sub-plans yields an `alpha`-near-optimal plan. They are also *monotone*:
//! a plan costs at least as much as each sub-plan.
//!
//! This module defines the small combinator language and verifies the PONO
//! and monotonicity properties in tests; `moqo-costmodel` builds the
//! concrete per-metric aggregators on top of it.

/// How a metric combines the two child values before the operator's own
/// contribution is applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChildCombine {
    /// `left + right` — e.g. energy consumption, monetary fees, or
    /// execution time of sequential execution.
    Sum,
    /// `max(left, right)` — e.g. execution time of parallel execution, or
    /// peak resource reservations such as the number of reserved cores.
    Max,
    /// `min(left, right)` — e.g. lower-is-better guarantees that propagate
    /// by the weaker of the two operands.
    Min,
}

impl ChildCombine {
    /// Combines the two child metric values.
    #[inline]
    pub fn combine(self, left: f64, right: f64) -> f64 {
        match self {
            ChildCombine::Sum => left + right,
            ChildCombine::Max => left.max(right),
            ChildCombine::Min => left.min(right),
        }
    }
}

/// A per-metric aggregation function: `combine(children) ⊕ op_term`, where
/// `⊕` is either `+` (additive operator contribution) or `max`.
///
/// The operator term itself may be scaled by a constant; all compositions
/// stay within the paper's PONO-compliant class because the operator term
/// is a constant with respect to the sub-plan costs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggFn {
    /// How the two child values are combined.
    pub children: ChildCombine,
    /// Whether the operator term is added (`true`) or max-ed (`false`).
    pub additive_op: bool,
    /// Constant scale applied to the combined child value (must be in
    /// `(0, 1]` for monotonicity to hold; `1.0` for standard metrics).
    pub child_scale: f64,
}

impl AggFn {
    /// Sum of children plus operator cost — the most common shape
    /// (execution time, energy, fees, IO).
    pub const SUM: AggFn = AggFn {
        children: ChildCombine::Sum,
        additive_op: true,
        child_scale: 1.0,
    };

    /// Max of children and operator cost — peak-resource metrics such as
    /// the number of reserved cores or buffer space.
    pub const MAX: AggFn = AggFn {
        children: ChildCombine::Max,
        additive_op: false,
        child_scale: 1.0,
    };

    /// Max of children plus additive operator cost — e.g. execution time
    /// where children run in parallel but the join runs after both.
    pub const MAX_PLUS: AggFn = AggFn {
        children: ChildCombine::Max,
        additive_op: true,
        child_scale: 1.0,
    };

    /// Evaluates the aggregation for child values and the operator term.
    ///
    /// All inputs must be non-negative; the result is then non-negative and
    /// at least as large as `child_scale * combine(children)`.
    #[inline]
    pub fn apply(&self, left: f64, right: f64, op_term: f64) -> f64 {
        debug_assert!(left >= 0.0 && right >= 0.0 && op_term >= 0.0);
        let combined = self.children.combine(left, right) * self.child_scale;
        if self.additive_op {
            combined + op_term
        } else {
            combined.max(op_term)
        }
    }

    /// True if the aggregation is monotone: the plan value is at least each
    /// (scaled) child value. Holds whenever `child_scale == 1` for Sum/Max;
    /// Min and down-scaling are *not* monotone in the paper's sense and are
    /// rejected by the optimizer configuration for bound-based pruning.
    #[inline]
    pub fn is_monotone(&self) -> bool {
        self.child_scale >= 1.0 && !matches!(self.children, ChildCombine::Min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_combiners() {
        assert_eq!(ChildCombine::Sum.combine(2.0, 3.0), 5.0);
        assert_eq!(ChildCombine::Max.combine(2.0, 3.0), 3.0);
        assert_eq!(ChildCombine::Min.combine(2.0, 3.0), 2.0);
    }

    #[test]
    fn canned_aggregators() {
        assert_eq!(AggFn::SUM.apply(1.0, 2.0, 4.0), 7.0);
        assert_eq!(AggFn::MAX.apply(1.0, 2.0, 4.0), 4.0);
        assert_eq!(AggFn::MAX.apply(1.0, 9.0, 4.0), 9.0);
        assert_eq!(AggFn::MAX_PLUS.apply(1.0, 9.0, 4.0), 13.0);
    }

    #[test]
    fn monotonicity_classification() {
        assert!(AggFn::SUM.is_monotone());
        assert!(AggFn::MAX.is_monotone());
        assert!(AggFn::MAX_PLUS.is_monotone());
        let min_agg = AggFn {
            children: ChildCombine::Min,
            additive_op: true,
            child_scale: 1.0,
        };
        assert!(!min_agg.is_monotone());
        let scaled_down = AggFn {
            children: ChildCombine::Sum,
            additive_op: true,
            child_scale: 0.5,
        };
        assert!(!scaled_down.is_monotone());
    }

    #[test]
    fn monotone_aggregators_dominate_children() {
        for agg in [AggFn::SUM, AggFn::MAX, AggFn::MAX_PLUS] {
            for &(l, r, op) in &[(0.0, 0.0, 0.0), (1.0, 2.0, 3.0), (5.0, 0.5, 0.0)] {
                let v = agg.apply(l, r, op);
                assert!(v >= l && v >= r, "{agg:?} not monotone at ({l},{r},{op})");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn agg_fn() -> impl Strategy<Value = AggFn> {
        (
            prop_oneof![
                Just(ChildCombine::Sum),
                Just(ChildCombine::Max),
                Just(ChildCombine::Min)
            ],
            any::<bool>(),
        )
            .prop_map(|(children, additive_op)| AggFn {
                children,
                additive_op,
                child_scale: 1.0,
            })
    }

    proptest! {
        /// PONO (Definition 1): if each child value is inflated by at most
        /// `alpha >= 1`, the aggregated value is inflated by at most `alpha`.
        /// This holds for every combination of sum/max/min children and
        /// additive/max operator terms.
        #[test]
        fn pono_holds(
            agg in agg_fn(),
            l in 0.0f64..1e6,
            r in 0.0f64..1e6,
            op in 0.0f64..1e6,
            alpha in 1.0f64..4.0,
            // Per-child inflation within [1, alpha].
            fl in 0.0f64..1.0,
            fr in 0.0f64..1.0,
        ) {
            let al = 1.0 + fl * (alpha - 1.0);
            let ar = 1.0 + fr * (alpha - 1.0);
            let base = agg.apply(l, r, op);
            let inflated = agg.apply(al * l, ar * r, op);
            // Allow tiny FP slack.
            prop_assert!(inflated <= alpha * base * (1.0 + 1e-12) + 1e-12,
                "PONO violated: {inflated} > {alpha} * {base}");
        }

        /// Aggregated values never decrease when a child value increases.
        #[test]
        fn monotone_in_children(
            agg in agg_fn(),
            l in 0.0f64..1e6,
            r in 0.0f64..1e6,
            op in 0.0f64..1e6,
            dl in 0.0f64..1e5,
        ) {
            prop_assert!(agg.apply(l + dl, r, op) >= agg.apply(l, r, op));
            prop_assert!(agg.apply(l, r + dl, op) >= agg.apply(l, r, op));
        }

        /// Monotone cost aggregation (Section 5.1 assumption): the plan
        /// value is at least each child value for monotone aggregators.
        #[test]
        fn monotone_aggregators_bound_children(
            agg in agg_fn().prop_filter("monotone", |a| a.is_monotone()),
            l in 0.0f64..1e6,
            r in 0.0f64..1e6,
            op in 0.0f64..1e6,
        ) {
            let v = agg.apply(l, r, op);
            prop_assert!(v >= l);
            prop_assert!(v >= r);
        }
    }
}
