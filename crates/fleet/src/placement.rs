//! The placement table: which node owns which key.
//!
//! [`Placement`] maps 64-bit routing keys ([`QueryFingerprint`],
//! [`RebaseKey`], or raw values) to named nodes with **rendezvous
//! (highest-random-weight) hashing**: every `(key, node)` pair gets a
//! deterministic pseudo-random weight, and the live node with the highest
//! weight owns the key. The scheme needs no token ring and has the
//! property that matters for warm state: when a node dies, *only the keys
//! it owned* move (each to its runner-up node) — every other key keeps
//! its home, so its parked frontier stays hot.
//!
//! Planned hand-offs use the explicit **override map**: the fleet router
//! ships a frontier to a chosen node first, then pins the key there. An
//! override targeting a dead node is ignored (the hash takes back over),
//! so a stale pin degrades to the deterministic default instead of
//! routing into a black hole.
//!
//! Every mutation bumps a [version](Placement::version), letting cheap
//! polling detect placement changes without diffing tables.

use moqo_cost::Fnv64;
use moqo_engine::{QueryFingerprint, RebaseKey};
use std::collections::BTreeMap;

/// A routing key: anything reducible to the canonical 64-bit value the
/// placement hash runs on.
pub trait PlacementKey {
    /// The canonical 64-bit routing value.
    fn placement_key(&self) -> u64;
}

impl PlacementKey for u64 {
    fn placement_key(&self) -> u64 {
        *self
    }
}

impl PlacementKey for QueryFingerprint {
    fn placement_key(&self) -> u64 {
        self.as_u64()
    }
}

impl PlacementKey for RebaseKey {
    fn placement_key(&self) -> u64 {
        self.as_u64()
    }
}

/// One serving node the placement knows about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeEntry {
    /// Stable node name (placement hashes this, not the address, so a
    /// node keeps its keys across address changes).
    pub id: String,
    /// The node's `NetServer` address, `host:port`.
    pub addr: String,
    /// Dead nodes stay listed (their id keeps its hash weight history
    /// readable in diagnostics) but own nothing.
    pub dead: bool,
}

/// Deterministic key → node table; see the module docs for the scheme.
#[derive(Clone, Debug, Default)]
pub struct Placement {
    /// Sorted by id, so iteration (and thus tie-breaking) is canonical
    /// regardless of registration order.
    nodes: BTreeMap<String, NodeEntry>,
    overrides: BTreeMap<u64, String>,
    routes: BTreeMap<String, u64>,
    version: u64,
}

impl Placement {
    /// An empty table (no nodes, version 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-addresses) a node and marks it alive.
    pub fn add_node(&mut self, id: impl Into<String>, addr: impl Into<String>) {
        let id = id.into();
        self.nodes.insert(
            id.clone(),
            NodeEntry {
                id,
                addr: addr.into(),
                dead: false,
            },
        );
        self.version += 1;
    }

    /// Marks a node dead: it immediately stops owning any key. Unknown
    /// ids are ignored.
    pub fn mark_dead(&mut self, id: &str) {
        if let Some(node) = self.nodes.get_mut(id) {
            if !node.dead {
                node.dead = true;
                self.version += 1;
            }
        }
    }

    /// Marks a node alive again (it reclaims exactly the keys it owned
    /// before dying — rendezvous weights are a pure function of ids).
    pub fn revive(&mut self, id: &str) {
        if let Some(node) = self.nodes.get_mut(id) {
            if node.dead {
                node.dead = false;
                self.version += 1;
            }
        }
    }

    /// Pins `key` to a node, winning over the hash while that node is
    /// alive. The fleet router sets this after shipping warm state in a
    /// planned rebalance.
    pub fn set_override(&mut self, key: impl PlacementKey, node_id: impl Into<String>) {
        self.overrides.insert(key.placement_key(), node_id.into());
        self.version += 1;
    }

    /// Removes a pin; the key falls back to its hash home.
    pub fn clear_override(&mut self, key: impl PlacementKey) {
        if self.overrides.remove(&key.placement_key()).is_some() {
            self.version += 1;
        }
    }

    /// The rendezvous weight of `(key, node)` — deterministic, uniform
    /// enough for load spread, and a pure function of the two ids.
    fn weight(key: u64, node_id: &str) -> u64 {
        let mut h = Fnv64::new();
        h.str(node_id);
        h.u64(key);
        h.finish()
    }

    /// The node that owns `key`: the override target if pinned and
    /// alive, else the live node with the highest rendezvous weight.
    /// `None` when every node is dead (or none registered).
    pub fn home_of(&self, key: impl PlacementKey) -> Option<&NodeEntry> {
        let key = key.placement_key();
        if let Some(id) = self.overrides.get(&key) {
            if let Some(node) = self.nodes.get(id) {
                if !node.dead {
                    return Some(node);
                }
            }
        }
        self.nodes.values().filter(|n| !n.dead).max_by(|a, b| {
            // Weight decides; the id breaks (astronomically rare)
            // weight collisions canonically.
            (Self::weight(key, &a.id), &a.id).cmp(&(Self::weight(key, &b.id), &b.id))
        })
    }

    /// Looks up a node by id.
    pub fn node(&self, id: &str) -> Option<&NodeEntry> {
        self.nodes.get(id)
    }

    /// All registered nodes, dead ones included, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = &NodeEntry> {
        self.nodes.values()
    }

    /// Live nodes, in id order.
    pub fn live_nodes(&self) -> impl Iterator<Item = &NodeEntry> {
        self.nodes.values().filter(|n| !n.dead)
    }

    /// Monotonic mutation counter — bumped by every add/kill/revive and
    /// every override change, so pollers detect rebalances cheaply.
    /// Route recording is deliberately **not** a mutation: counters move
    /// on every session, versions only on topology changes.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Records that one session was routed to `node_id`. The
    /// [`FleetClient`](crate::FleetClient) calls this on every
    /// successful submit, giving the fleet router the per-node load
    /// signal its rebalance decisions need.
    pub fn record_route(&mut self, node_id: &str) {
        *self.routes.entry(node_id.to_string()).or_default() += 1;
    }

    /// Per-node route counters (sessions successfully submitted to each
    /// node since the table was built), in id order. Dead nodes keep
    /// their history — the imbalance a rebalance should correct is
    /// exactly the load the survivors inherited.
    pub fn route_counts(&self) -> &BTreeMap<String, u64> {
        &self.routes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_nodes() -> Placement {
        let mut p = Placement::new();
        p.add_node("a", "127.0.0.1:9001");
        p.add_node("b", "127.0.0.1:9002");
        p.add_node("c", "127.0.0.1:9003");
        p
    }

    #[test]
    fn placement_is_deterministic_and_spreads_keys() {
        let p = three_nodes();
        let q = three_nodes();
        let mut owned = std::collections::HashMap::<String, usize>::new();
        for key in 0u64..3000 {
            let home = p.home_of(key).unwrap().id.clone();
            // Independent instances with the same nodes agree on every key.
            assert_eq!(home, q.home_of(key).unwrap().id);
            *owned.entry(home).or_default() += 1;
        }
        // All three nodes own a non-trivial share (rendezvous over FNV
        // is not perfectly uniform, but nowhere near degenerate).
        assert_eq!(owned.len(), 3, "{owned:?}");
        assert!(owned.values().all(|&n| n > 300), "{owned:?}");
    }

    #[test]
    fn node_death_moves_only_the_dead_nodes_keys() {
        let mut p = three_nodes();
        let before: Vec<(u64, String)> = (0u64..2000)
            .map(|k| (k, p.home_of(k).unwrap().id.clone()))
            .collect();
        let v = p.version();
        p.mark_dead("b");
        assert!(p.version() > v);
        for (key, old_home) in &before {
            let new_home = &p.home_of(*key).unwrap().id;
            if old_home == "b" {
                assert_ne!(new_home, "b");
            } else {
                // The minimal-disruption property: survivors keep their
                // keys, so their parked frontiers stay hot.
                assert_eq!(new_home, old_home, "key {key} moved needlessly");
            }
        }
        // Revival restores the exact original assignment.
        p.revive("b");
        for (key, old_home) in &before {
            assert_eq!(&p.home_of(*key).unwrap().id, old_home);
        }
    }

    #[test]
    fn overrides_win_while_alive_and_degrade_when_dead() {
        let mut p = three_nodes();
        let key = 42u64;
        let hash_home = p.home_of(key).unwrap().id.clone();
        let other = ["a", "b", "c"]
            .into_iter()
            .find(|id| *id != hash_home)
            .unwrap();
        p.set_override(key, other);
        assert_eq!(p.home_of(key).unwrap().id, other);
        // A pin to a dead node is ignored, not fatal.
        p.mark_dead(other);
        assert_eq!(p.home_of(key).unwrap().id, hash_home);
        p.revive(other);
        assert_eq!(p.home_of(key).unwrap().id, other);
        p.clear_override(key);
        assert_eq!(p.home_of(key).unwrap().id, hash_home);
    }

    #[test]
    fn route_counters_accumulate_without_bumping_the_version() {
        let mut p = three_nodes();
        let v = p.version();
        p.record_route("a");
        p.record_route("a");
        p.record_route("b");
        assert_eq!(p.route_counts().get("a"), Some(&2));
        assert_eq!(p.route_counts().get("b"), Some(&1));
        assert_eq!(p.route_counts().get("c"), None);
        assert_eq!(p.version(), v, "stats are not topology");
        // Death keeps the history: the inherited load is the imbalance
        // signal a rebalance decision reads.
        p.mark_dead("a");
        assert_eq!(p.route_counts().get("a"), Some(&2));
    }

    #[test]
    fn empty_or_all_dead_placement_has_no_home() {
        let mut p = Placement::new();
        assert!(p.home_of(7u64).is_none());
        p.add_node("a", "127.0.0.1:9001");
        assert!(p.home_of(7u64).is_some());
        p.mark_dead("a");
        assert!(p.home_of(7u64).is_none());
    }
}
