//! The precomputed enumeration plane: connected subsets and their valid
//! splits, materialized once per join-graph *shape*.
//!
//! # Why precompute
//!
//! Algorithm 2 iterates "over table sets of increasing cardinality" and,
//! for each set, over all ordered two-way splits. Enumerating that space
//! from scratch on every invocation — as a literal reading of the
//! pseudo-code does — wastes the hot loop on three kinds of dead work:
//!
//! 1. **Disconnected subsets.** Without cross products, a table set whose
//!    induced join graph is disconnected can never receive a plan: its
//!    result set stays empty forever, yet every invocation re-visits all
//!    `2^k` of its splits.
//! 2. **Invalid splits.** A split with a disconnected half (or, for
//!    connected graphs, no join edge between the halves) has an empty
//!    operand cross product. The connected-subgraph/complement
//!    construction of Moerkotte & Neumann's DPccp shows these can be
//!    excluded *structurally*, before the DP runs.
//! 3. **Hash traffic.** Looking up per-subset plan sets through a
//!    `TableSet → index` hash map costs a probe per subset per
//!    invocation; a dense `SubsetId` rank turns that into an array index.
//!
//! [`EnumerationPlan`] fixes all three: it stores, ordered by cardinality,
//! every *relevant* subset (connected subsets under the default policy;
//! all subsets when cross products are allowed) together with a flat list
//! of its valid ordered splits, each split carrying the precomputed
//! [`SubsetId`]s of both operands. The optimizer then walks plain arrays.
//!
//! # Sharing across queries
//!
//! The plan depends only on the join graph's **shape** — table count and
//! which table pairs are joined — and on the cross-product policy. It is
//! independent of selectivities, cardinalities, filters, and names, so
//! structurally similar queries (same dashboard query against refreshed
//! statistics, the same TPC-H template at a different scale factor) share
//! one `Arc<EnumerationPlan>`. [`ShapeKey`] is the cache key for exactly
//! that sharing; `moqo-engine` keeps a plan cache keyed by it.
//!
//! # Relation to the paper
//!
//! Section 4.2 of the paper assumes "auxiliary data structures" make the
//! Δ-set evaluation in `Fresh` cheap. The enumeration plane is the
//! structural half of that assumption: the optimizer's per-split freshness
//! watermarks (see `moqo-core`) are addressed by the dense split ids
//! assigned here, which is what lets Lemma 6's "no pair combined twice"
//! be enforced by watermark position instead of a hash probe per pair.

use crate::graph::JoinGraph;
use crate::tableset::{k_subsets, TableSet};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of a subset within one [`EnumerationPlan`].
///
/// Ids are assigned in enumeration order: subsets of smaller cardinality
/// first, ties broken by ascending bit pattern. They index directly into
/// per-subset state arrays (`Vec<SubsetState>` in the optimizer), which is
/// the point: no hashing on the hot path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubsetId(u32);

impl SubsetId {
    /// The id as a dense array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The id for position `index` in a plan's subset order. Only
    /// meaningful for indexes below [`EnumerationPlan::len`] of the plan
    /// the id is used with.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        SubsetId(index as u32)
    }
}

impl fmt::Debug for SubsetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SubsetId({})", self.0)
    }
}

/// One ordered split `q = left ⋈ right` with both operands resolved to
/// their dense ids. Ordered means `(q1, q2)` and `(q2, q1)` are distinct
/// entries, mirroring the paper's enumeration of ordered splits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Split {
    /// Dense id of the left operand subset.
    pub left: SubsetId,
    /// Dense id of the right operand subset.
    pub right: SubsetId,
}

/// Per-subset record: the table set plus the `(offset, len)` window of its
/// valid splits in the plan's flat split array.
#[derive(Clone, Copy, Debug)]
pub struct SubsetInfo {
    /// The tables of this subset.
    pub tables: TableSet,
    /// Offset of the subset's first split in [`EnumerationPlan::splits`].
    pub split_offset: u32,
    /// Number of valid ordered splits of this subset.
    pub split_len: u32,
}

/// Canonical fingerprint of a join graph's *shape* under a cross-product
/// policy: table count, the set of joined table pairs (selectivities and
/// statistics excluded), and whether cross products are enumerated.
///
/// Two queries with equal `ShapeKey`s have identical enumeration planes,
/// so a plan cache keyed by `ShapeKey` shares one [`EnumerationPlan`]
/// across structurally similar queries. This is the shape component of
/// the engine's `QueryFingerprint` (which additionally hashes statistics,
/// selectivities, and metrics for *frontier* reuse — frontiers depend on
/// costs, enumeration planes do not).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeKey(u64);

/// The canonical structure a [`ShapeKey`] digests: the sorted,
/// deduplicated `(left, right)` endpoint pairs of a graph's edges.
/// Parallel edges and selectivities are irrelevant to connectivity,
/// hence excluded.
fn canonical_edge_pairs(graph: &JoinGraph) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = graph.edges.iter().map(|e| (e.left, e.right)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

impl ShapeKey {
    /// Computes the shape key of a join graph under a cross-product policy.
    pub fn of(graph: &JoinGraph, allow_cross_products: bool) -> Self {
        // FNV-1a over a canonical encoding: n, the flag, then the
        // canonical edge-pair list.
        let pairs = canonical_edge_pairs(graph);
        let mut h = moqo_cost::Fnv64::new();
        h.u64(graph.n_tables() as u64);
        h.u64(allow_cross_products as u64);
        for (l, r) in pairs {
            h.u64(l as u64);
            h.u64(r as u64);
        }
        ShapeKey(h.finish())
    }

    /// The raw 64-bit value (diagnostics, logging, cache sharding).
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Computes the shape key of the subgraph induced by `set`, relabeled
    /// to local positions `0..set.len()` in ascending order of the
    /// original positions.
    ///
    /// The relabeling makes the key *position independent*: a subset of a
    /// larger query hashes equal to a standalone query of the same shape,
    /// which is what lets warm per-subset frontier state be keyed by the
    /// sub-shape and transplanted across enclosing queries. Restricting to
    /// the full set recovers [`ShapeKey::of`]:
    ///
    /// ```
    /// use moqo_query::{testkit, ShapeKey};
    ///
    /// let spec = testkit::chain_query(5, 10_000);
    /// let full = spec.all_tables();
    /// assert_eq!(
    ///     ShapeKey::of_subset(&spec.graph, full, false),
    ///     ShapeKey::of(&spec.graph, false),
    /// );
    /// ```
    pub fn of_subset(graph: &JoinGraph, set: TableSet, allow_cross_products: bool) -> Self {
        // Map original position -> local index (ascending order).
        let mut local = vec![usize::MAX; graph.n_tables()];
        let mut k = 0usize;
        for pos in set.iter() {
            local[pos] = k;
            k += 1;
        }
        let mut pairs: Vec<(usize, usize)> = graph
            .edges
            .iter()
            .filter(|e| set.contains(e.left) && set.contains(e.right))
            .map(|e| (local[e.left], local[e.right]))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        let mut h = moqo_cost::Fnv64::new();
        h.u64(k as u64);
        h.u64(allow_cross_products as u64);
        for (l, r) in pairs {
            h.u64(l as u64);
            h.u64(r as u64);
        }
        ShapeKey(h.finish())
    }
}

/// The precomputed enumeration plane of one join-graph shape: all relevant
/// subsets ordered by cardinality, each with its valid ordered splits
/// stored flat, plus a `TableSet → SubsetId` rank map.
///
/// See the [module docs](self) for motivation and sharing semantics.
///
/// ```
/// use moqo_query::{testkit, EnumerationPlan};
///
/// let spec = testkit::chain_query(4, 10_000);
/// let plan = EnumerationPlan::build(&spec.graph, false);
/// // A 4-chain has 4 + 3 + 2 + 1 = 10 connected subsets…
/// assert_eq!(plan.len(), 10);
/// // …and its full set splits into (prefix, suffix) pairs only: 3
/// // unordered cuts, 6 ordered splits.
/// let full = plan.subset_id(spec.all_tables()).unwrap();
/// assert_eq!(plan.splits_of(full).len(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct EnumerationPlan {
    n_tables: usize,
    allow_cross_products: bool,
    shape: ShapeKey,
    /// Canonical edge pairs the plan was built from — the structural
    /// backstop behind [`EnumerationPlan::matches`], so a `ShapeKey`
    /// hash collision can never silently serve a wrong plan.
    edge_pairs: Vec<(usize, usize)>,
    subsets: Vec<SubsetInfo>,
    splits: Vec<Split>,
    /// `(bits, id)` sorted by bits — the rank map behind
    /// [`EnumerationPlan::subset_id`]. Binary search keeps the plan
    /// compact and cache-friendly; the optimizer only consults it off the
    /// hot path (split operands are pre-resolved ids).
    rank: Vec<(u64, SubsetId)>,
    /// Id of the full table set, when it is enumerable (it is not when
    /// the graph is disconnected and cross products are off — then no
    /// complete plan exists and the frontier is empty by construction).
    full: Option<SubsetId>,
}

impl EnumerationPlan {
    /// Builds the enumeration plane for a join graph under a cross-product
    /// policy. Cost is one-time `O(3^n)` in the worst case (clique or
    /// cross products allowed) and far lower on sparse graphs; the result
    /// is immutable and meant to be shared behind an `Arc`.
    pub fn build(graph: &JoinGraph, allow_cross_products: bool) -> Self {
        let n = graph.n_tables();
        let shape = ShapeKey::of(graph, allow_cross_products);
        let mut subsets: Vec<SubsetInfo> = Vec::new();
        let mut splits: Vec<Split> = Vec::new();
        // Build-time rank; frozen into the sorted `rank` vec below.
        let mut ids: HashMap<u64, SubsetId> = HashMap::new();

        let relevant = |s: TableSet| allow_cross_products || graph.is_connected_set(s);
        for k in 1..=n {
            for q in k_subsets(n, k) {
                if !relevant(q) {
                    continue;
                }
                let split_offset = splits.len() as u32;
                if k >= 2 {
                    for (q1, q2) in q.splits() {
                        // The paper enumerates ordered splits; emit both
                        // directions of each unordered cut, in the same
                        // order the exhaustive loop visits them.
                        for (a, b) in [(q1, q2), (q2, q1)] {
                            let (Some(&la), Some(&ra)) = (ids.get(&a.bits()), ids.get(&b.bits()))
                            else {
                                // An operand is irrelevant (disconnected
                                // half): the split's cross product is
                                // provably empty forever.
                                continue;
                            };
                            if !allow_cross_products && !graph.connected(a, b) {
                                continue;
                            }
                            splits.push(Split {
                                left: la,
                                right: ra,
                            });
                        }
                    }
                }
                let id = SubsetId(subsets.len() as u32);
                ids.insert(q.bits(), id);
                subsets.push(SubsetInfo {
                    tables: q,
                    split_offset,
                    split_len: splits.len() as u32 - split_offset,
                });
            }
        }
        let mut rank: Vec<(u64, SubsetId)> = ids.iter().map(|(&bits, &id)| (bits, id)).collect();
        rank.sort_unstable_by_key(|&(bits, _)| bits);
        let full = ids.get(&TableSet::full(n).bits()).copied();
        Self {
            n_tables: n,
            allow_cross_products,
            shape,
            edge_pairs: canonical_edge_pairs(graph),
            subsets,
            splits,
            rank,
            full,
        }
    }

    /// True if this plan was built for exactly `graph`'s shape under the
    /// given policy — a full structural comparison, not a hash test.
    /// Callers sharing plans across sessions use this as the backstop
    /// behind [`ShapeKey`] equality: a 64-bit hash collision must surface
    /// as a rebuild or a panic, never as a silently wrong enumeration.
    pub fn matches(&self, graph: &JoinGraph, allow_cross_products: bool) -> bool {
        self.n_tables == graph.n_tables()
            && self.allow_cross_products == allow_cross_products
            && self.edge_pairs == canonical_edge_pairs(graph)
    }

    /// Number of tables of the underlying shape.
    #[inline]
    pub fn n_tables(&self) -> usize {
        self.n_tables
    }

    /// Whether cross-product splits are enumerated.
    #[inline]
    pub fn allow_cross_products(&self) -> bool {
        self.allow_cross_products
    }

    /// The shape fingerprint this plan was built for.
    #[inline]
    pub fn shape(&self) -> ShapeKey {
        self.shape
    }

    /// Number of relevant subsets.
    #[inline]
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// True if the plan contains no subsets (never for `n >= 1`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }

    /// Total number of valid ordered splits across all subsets — the
    /// per-invocation split-visit count of the exhaustive path, and the
    /// length of any per-split state array (freshness watermarks).
    #[inline]
    pub fn total_splits(&self) -> usize {
        self.splits.len()
    }

    /// All subsets, ordered by cardinality then ascending bit pattern.
    #[inline]
    pub fn subsets(&self) -> &[SubsetInfo] {
        &self.subsets
    }

    /// The subset record for `id`.
    #[inline]
    pub fn subset(&self, id: SubsetId) -> &SubsetInfo {
        &self.subsets[id.index()]
    }

    /// The tables of subset `id`.
    #[inline]
    pub fn tables(&self, id: SubsetId) -> TableSet {
        self.subsets[id.index()].tables
    }

    /// The valid ordered splits of subset `id` (empty for singletons).
    #[inline]
    pub fn splits_of(&self, id: SubsetId) -> &[Split] {
        let info = &self.subsets[id.index()];
        let start = info.split_offset as usize;
        &self.splits[start..start + info.split_len as usize]
    }

    /// The flat split array (aligned with per-split state such as the
    /// optimizer's freshness watermarks).
    #[inline]
    pub fn splits(&self) -> &[Split] {
        &self.splits
    }

    /// Rank lookup: the dense id of `set`, or `None` when the set is not
    /// relevant under this plan's policy (e.g. a disconnected subset with
    /// cross products disallowed).
    #[inline]
    pub fn subset_id(&self, set: TableSet) -> Option<SubsetId> {
        self.rank
            .binary_search_by_key(&set.bits(), |&(bits, _)| bits)
            .ok()
            .map(|i| self.rank[i].1)
    }

    /// The id of the full table set, when enumerable.
    #[inline]
    pub fn full_set(&self) -> Option<SubsetId> {
        self.full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;

    #[test]
    fn chain_plan_counts() {
        let spec = testkit::chain_query(5, 1000);
        let plan = EnumerationPlan::build(&spec.graph, false);
        // Connected subsets of a 5-chain: contiguous ranges = 15.
        assert_eq!(plan.len(), 15);
        // Each range [i, j] splits only at its j - i internal cut points,
        // both directions: sum over lengths 2..=5 of 2 * (len - 1) cuts.
        let expected: usize = (2..=5usize).map(|len| (5 - len + 1) * 2 * (len - 1)).sum();
        assert_eq!(plan.total_splits(), expected);
        assert!(plan.full_set().is_some());
    }

    #[test]
    fn subsets_are_ordered_by_cardinality() {
        let spec = testkit::random_query(6, 3);
        let plan = EnumerationPlan::build(&spec.graph, false);
        let lens: Vec<usize> = plan.subsets().iter().map(|s| s.tables.len()).collect();
        assert!(
            lens.windows(2).all(|w| w[0] <= w[1]),
            "not sorted: {lens:?}"
        );
        // Split operands always precede their parent (smaller cardinality).
        for (i, info) in plan.subsets().iter().enumerate() {
            for s in plan.splits_of(SubsetId(i as u32)) {
                assert!(s.left.index() < i && s.right.index() < i);
                assert_eq!(plan.tables(s.left).union(plan.tables(s.right)), info.tables);
                assert!(plan.tables(s.left).is_disjoint(plan.tables(s.right)));
            }
        }
    }

    #[test]
    fn rank_map_round_trips() {
        let spec = testkit::clique_query(5, 100);
        let plan = EnumerationPlan::build(&spec.graph, false);
        for (i, info) in plan.subsets().iter().enumerate() {
            assert_eq!(plan.subset_id(info.tables), Some(SubsetId(i as u32)));
        }
        assert_eq!(plan.subset_id(TableSet::from_positions([63])), None);
    }

    #[test]
    fn disconnected_graph_has_no_full_set() {
        use moqo_catalog::TableId;
        let g = crate::JoinGraph::new(vec![TableId(0), TableId(1)]);
        let plan = EnumerationPlan::build(&g, false);
        assert_eq!(plan.len(), 2); // singletons only
        assert_eq!(plan.total_splits(), 0);
        assert!(plan.full_set().is_none());
        // With cross products the full set becomes reachable.
        let cp = EnumerationPlan::build(&g, true);
        assert_eq!(cp.len(), 3);
        assert_eq!(cp.total_splits(), 2);
        assert!(cp.full_set().is_some());
    }

    #[test]
    fn cross_product_plan_enumerates_everything() {
        let spec = testkit::chain_query(4, 1000);
        let plan = EnumerationPlan::build(&spec.graph, true);
        assert_eq!(plan.len(), 15); // 2^4 - 1
                                    // Ordered splits of all subsets: sum over k of C(4,k) * (2^k - 2).
        let expected: usize = (2..=4usize)
            .map(|k| {
                let choose = [0, 0, 6, 4, 1][k];
                choose * ((1usize << k) - 2)
            })
            .sum();
        assert_eq!(plan.total_splits(), expected);
    }

    #[test]
    fn shape_key_ignores_statistics_but_not_structure() {
        let a = testkit::chain_query(4, 10_000);
        let b = testkit::chain_query(4, 999_999); // same shape, other stats
        let c = testkit::star_query(4, 10_000); // other shape
        assert_eq!(ShapeKey::of(&a.graph, false), ShapeKey::of(&b.graph, false));
        assert_ne!(ShapeKey::of(&a.graph, false), ShapeKey::of(&c.graph, false));
        assert_ne!(ShapeKey::of(&a.graph, false), ShapeKey::of(&a.graph, true));
        let plan = EnumerationPlan::build(&a.graph, false);
        assert_eq!(plan.shape(), ShapeKey::of(&b.graph, false));
    }

    #[test]
    fn matches_is_structural() {
        let chain = testkit::chain_query(4, 1000);
        let star = testkit::star_query(4, 1000);
        let other_stats = testkit::chain_query(4, 999);
        let plan = EnumerationPlan::build(&chain.graph, false);
        assert!(plan.matches(&chain.graph, false));
        assert!(plan.matches(&other_stats.graph, false));
        assert!(!plan.matches(&chain.graph, true));
        assert!(!plan.matches(&star.graph, false));
        assert!(!plan.matches(&testkit::chain_query(5, 1000).graph, false));
    }

    #[test]
    fn selectivity_changes_keep_the_shape() {
        let mut a = testkit::chain_query(3, 5000);
        let key = ShapeKey::of(&a.graph, false);
        for e in &mut a.graph.edges {
            e.selectivity *= 0.5;
        }
        a.graph.set_filter(0, 0.25);
        assert_eq!(ShapeKey::of(&a.graph, false), key);
    }

    #[test]
    fn single_table_plan() {
        let spec = testkit::chain_query(1, 100);
        let plan = EnumerationPlan::build(&spec.graph, false);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.total_splits(), 0);
        assert_eq!(plan.full_set(), plan.subset_id(TableSet::singleton(0)));
    }
}

#[cfg(test)]
mod proptests {
    //! The exhaustive `k_subsets` × `TableSet::splits` loop — the seed
    //! optimizer's enumeration — retained as a *test oracle*: the
    //! precomputed plan must admit exactly the ordered splits whose
    //! operand cross products can ever be non-empty under the policy.

    use super::*;
    use crate::testkit;
    use crate::QuerySpec;
    use moqo_catalog::TableId;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// The ordered splits the exhaustive enumeration *admits*: every
    /// `(q, q1, q2)` the seed loop would visit whose operands can hold
    /// plans (inductively: relevant sets under the policy) and whose
    /// combination the policy allows.
    fn oracle_splits(
        graph: &JoinGraph,
        allow_cp: bool,
    ) -> BTreeSet<(TableSet, TableSet, TableSet)> {
        let n = graph.n_tables();
        let relevant = |s: TableSet| allow_cp || graph.is_connected_set(s);
        let mut out = BTreeSet::new();
        for k in 2..=n {
            for q in k_subsets(n, k) {
                for (q1, q2) in q.splits() {
                    for (a, b) in [(q1, q2), (q2, q1)] {
                        if !allow_cp && !graph.connected(a, b) {
                            continue; // the seed's cross-product skip
                        }
                        if !(relevant(a) && relevant(b)) {
                            continue; // empty operand: a no-op in the seed
                        }
                        out.insert((q, a, b));
                    }
                }
            }
        }
        out
    }

    fn plan_splits(plan: &EnumerationPlan) -> BTreeSet<(TableSet, TableSet, TableSet)> {
        let mut out = BTreeSet::new();
        for (i, info) in plan.subsets().iter().enumerate() {
            for s in plan.splits_of(SubsetId(i as u32)) {
                let inserted = out.insert((info.tables, plan.tables(s.left), plan.tables(s.right)));
                assert!(inserted, "duplicate split emitted");
            }
        }
        out
    }

    fn check_equivalence(graph: &JoinGraph, allow_cp: bool) {
        let plan = EnumerationPlan::build(graph, allow_cp);
        assert_eq!(
            plan_splits(&plan),
            oracle_splits(graph, allow_cp),
            "plan/oracle split mismatch (allow_cp={allow_cp})"
        );
        // Subsets must be exactly the relevant ones.
        let expect_subsets: usize = (1..=graph.n_tables())
            .flat_map(|k| k_subsets(graph.n_tables(), k))
            .filter(|&s| allow_cp || graph.is_connected_set(s))
            .count();
        assert_eq!(plan.len(), expect_subsets);
    }

    /// A random graph over `n` tables that is *not* forced to be
    /// connected: each potential edge appears with probability ~1/2,
    /// driven by the bits of `mask`.
    fn arbitrary_graph(n: usize, mask: u64) -> JoinGraph {
        let mut g = JoinGraph::new((0..n as u32).map(TableId).collect());
        let mut bit = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if (mask >> (bit % 64)) & 1 == 1 {
                    g.add_edge(i, j, 0.1);
                }
                bit += 1;
            }
        }
        g
    }

    fn cycle_graph(n: usize) -> JoinGraph {
        let spec = testkit::cycle_query(n, 10_000);
        spec.graph.clone()
    }

    proptest! {
        #[test]
        fn random_graphs_match_the_oracle(n in 1usize..7, mask in 0u64..u64::MAX, cp in 0u64..2) {
            let g = arbitrary_graph(n, mask);
            check_equivalence(&g, cp == 1);
        }

        #[test]
        fn connected_random_queries_match_the_oracle(n in 1usize..7, seed in 0u64..500) {
            let spec = testkit::random_query(n, seed);
            check_equivalence(&spec.graph, false);
            check_equivalence(&spec.graph, true);
        }
    }

    #[test]
    fn canonical_topologies_match_the_oracle() {
        for n in 1usize..=7 {
            let specs: Vec<QuerySpec> = vec![
                testkit::chain_query(n, 10_000),
                testkit::star_query(n, 10_000),
                testkit::clique_query(n, 1000),
            ];
            for spec in &specs {
                check_equivalence(&spec.graph, false);
                check_equivalence(&spec.graph, true);
            }
            if n >= 3 {
                check_equivalence(&cycle_graph(n), false);
                check_equivalence(&cycle_graph(n), true);
            }
        }
    }

    #[test]
    fn disconnected_graph_matches_the_oracle() {
        // Two components: {0,1} and {2,3}.
        let mut g = arbitrary_graph(4, 0);
        g.add_edge(0, 1, 0.5);
        g.add_edge(2, 3, 0.5);
        check_equivalence(&g, false);
        check_equivalence(&g, true);
    }
}
