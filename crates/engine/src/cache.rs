//! The warm-frontier cache.
//!
//! When an interactive session ends, its optimizer — arena, result and
//! candidate plan sets, `IsFresh` pair set — is parked here keyed by the
//! query's canonical fingerprint. A later session over an equivalent query
//! resumes from that state instead of resolution 0: thanks to the
//! incremental invariants (Lemmas 5–7), its first invocation re-generates
//! **zero** plans and serves the existing frontier immediately.
//!
//! This is only possible because [`IamaOptimizer`] owns its state behind
//! `Arc`s; a borrowed optimizer could never outlive the session that
//! created it.
//!
//! Recency is tracked with a monotone sequence number per entry instead of
//! an explicit LRU list: `take` and `put` are hash-map operations plus a
//! tick bump (`O(1)`), and only an eviction — which already pays for a
//! map insert and drops a whole optimizer — scans for the minimum tick.
//! The earlier implementation kept a `VecDeque` order list and paid an
//! `O(n)` `retain` on *every* hit and every overwrite.

use crate::fingerprint::{QueryFingerprint, RebaseKey};
use moqo_core::IamaOptimizer;
use moqo_index::FxHashMap;

/// Counters describing cache effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a parked optimizer.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted because the cache was full.
    pub evictions: u64,
    /// Optimizers currently parked.
    pub entries: usize,
    /// Cardinality-blind donor lookups that found a parked optimizer of
    /// the same shape under drifted statistics (see
    /// [`FrontierCache::rebase_donor`]).
    pub rebase_hits: u64,
    /// Cardinality-blind donor lookups that found nothing.
    pub rebase_misses: u64,
}

/// A parked optimizer plus the tick of its last use.
struct Parked {
    optimizer: IamaOptimizer,
    /// Value of the cache's tick counter when this entry was last parked.
    /// Strictly increasing across `put`s, so the minimum identifies the
    /// least-recently-parked entry without any ordering side structure.
    tick: u64,
    /// The entry's cardinality-blind key, kept so removals can maintain
    /// the secondary index without recomputing the hash.
    rebase: RebaseKey,
}

/// LRU cache of parked optimizers keyed by [`QueryFingerprint`].
///
/// `take` removes the entry: an optimizer is a mutable object owned by
/// exactly one session at a time, so a hit transfers ownership to the new
/// session and the entry returns via `put` when that session ends.
#[derive(Default)]
pub struct FrontierCache {
    capacity: usize,
    map: FxHashMap<QueryFingerprint, Parked>,
    /// Secondary index for stats-drift near misses: cardinality-blind key
    /// → fingerprints of the parked optimizers sharing it. Maintained on
    /// every `put`/`take`/eviction, consulted only on a cold miss.
    blind: FxHashMap<RebaseKey, Vec<QueryFingerprint>>,
    /// Monotone recency clock; bumped on every `put`.
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    rebase_hits: u64,
    rebase_misses: u64,
}

impl FrontierCache {
    /// Creates a cache holding at most `capacity` parked optimizers.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            ..Self::default()
        }
    }

    /// Removes and returns the parked optimizer for `fp`, if any.
    pub fn take(&mut self, fp: QueryFingerprint) -> Option<IamaOptimizer> {
        match self.map.remove(&fp) {
            Some(parked) => {
                self.unindex(parked.rebase, fp);
                self.hits += 1;
                Some(parked.optimizer)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Drops `fp` from the blind index's posting list for `key`.
    fn unindex(&mut self, key: RebaseKey, fp: QueryFingerprint) {
        if let Some(list) = self.blind.get_mut(&key) {
            list.retain(|&f| f != fp);
            if list.is_empty() {
                self.blind.remove(&key);
            }
        }
    }

    /// True if an optimizer is parked under `fp`. Does not count as a
    /// lookup (used by routers to probe for warmth without skewing the
    /// hit/miss statistics).
    pub fn contains(&self, fp: QueryFingerprint) -> bool {
        self.map.contains_key(&fp)
    }

    /// Parks an optimizer under `fp`, evicting the coldest entry if full.
    /// A fresher optimizer for the same fingerprint replaces the old one.
    pub fn put(&mut self, fp: QueryFingerprint, optimizer: IamaOptimizer) {
        self.tick += 1;
        let tick = self.tick;
        let rebase = RebaseKey::of(optimizer.spec(), &optimizer.model());
        let slot = self.blind.entry(rebase).or_default();
        if !slot.contains(&fp) {
            slot.push(fp);
        }
        let inserted = self
            .map
            .insert(
                fp,
                Parked {
                    optimizer,
                    tick,
                    rebase,
                },
            )
            .is_none();
        if inserted && self.map.len() > self.capacity {
            // One eviction restores the invariant (inserts grow the map
            // by at most one); scanning for the minimum tick is O(n) but
            // only runs when an optimizer is dropped anyway.
            if let Some(cold) = self
                .map
                .iter()
                .min_by_key(|(_, p)| p.tick)
                .map(|(fp, _)| *fp)
            {
                if let Some(parked) = self.map.remove(&cold) {
                    self.unindex(parked.rebase, cold);
                }
                self.evictions += 1;
            }
        }
    }

    /// Finds the most recently parked optimizer whose cardinality-blind
    /// key equals `key` — a **rebase donor**: same join-graph shape, row
    /// widths, filters, selectivities, metrics, and cost-model identity,
    /// different table cardinalities. The donor is returned by shared
    /// reference and stays parked (it can still serve an exact repeat of
    /// *its* statistics); the caller replays its plans into a cold
    /// optimizer via `IamaOptimizer::rebase_from`.
    pub fn rebase_donor(&mut self, key: RebaseKey) -> Option<&IamaOptimizer> {
        let best = self.blind.get(&key).and_then(|list| {
            list.iter()
                .max_by_key(|fp| self.map.get(fp).map(|p| p.tick).unwrap_or(0))
                .copied()
        });
        match best.and_then(|fp| self.map.get(&fp)) {
            Some(parked) => {
                self.rebase_hits += 1;
                Some(&parked.optimizer)
            }
            None => {
                self.rebase_misses += 1;
                None
            }
        }
    }

    /// True if a rebase donor is parked for `key`. Does not count as a
    /// lookup (router probe, like [`FrontierCache::contains`]).
    pub fn has_rebase_donor(&self, key: RebaseKey) -> bool {
        self.blind.get(&key).is_some_and(|l| !l.is_empty())
    }

    /// Visits every parked optimizer (persistence export). Order is
    /// unspecified; does not affect recency or the hit/miss counters.
    pub fn for_each_parked(&self, mut f: impl FnMut(QueryFingerprint, &IamaOptimizer)) {
        for (fp, parked) in &self.map {
            f(*fp, &parked.optimizer);
        }
    }

    /// The fingerprints of all parked optimizers, in unspecified order.
    pub fn parked_fingerprints(&self) -> Vec<QueryFingerprint> {
        self.map.keys().copied().collect()
    }

    /// Read-only access to one parked optimizer, if present. Does not
    /// affect recency or the hit/miss counters.
    pub fn parked(&self, fp: QueryFingerprint) -> Option<&IamaOptimizer> {
        self.map.get(&fp).map(|p| &p.optimizer)
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            rebase_hits: self.rebase_hits,
            rebase_misses: self.rebase_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_core::IamaOptimizer;
    use moqo_cost::ResolutionSchedule;
    use moqo_costmodel::StandardCostModel;
    use moqo_query::testkit;
    use std::sync::Arc;

    fn opt_for(n: usize) -> (QueryFingerprint, IamaOptimizer) {
        let spec = Arc::new(testkit::chain_query(n, 10_000));
        let model = Arc::new(StandardCostModel::paper_metrics());
        let fp = QueryFingerprint::of(&spec, &*model);
        let opt = IamaOptimizer::new(spec, model, ResolutionSchedule::linear(2, 1.1, 0.4));
        (fp, opt)
    }

    #[test]
    fn take_transfers_ownership_and_counts() {
        let mut cache = FrontierCache::new(4);
        let (fp, opt) = opt_for(2);
        assert!(cache.take(fp).is_none());
        cache.put(fp, opt);
        assert_eq!(cache.stats().entries, 1);
        assert!(cache.contains(fp));
        assert!(cache.take(fp).is_some());
        assert!(cache.take(fp).is_none(), "take must remove the entry");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 0));
    }

    #[test]
    fn lru_eviction_drops_the_coldest() {
        let mut cache = FrontierCache::new(2);
        let (fp2, o2) = opt_for(2);
        let (fp3, o3) = opt_for(3);
        let (fp4, o4) = opt_for(4);
        cache.put(fp2, o2);
        cache.put(fp3, o3);
        cache.put(fp4, o4); // evicts fp2
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.take(fp2).is_none());
        assert!(cache.take(fp3).is_some());
        assert!(cache.take(fp4).is_some());
    }

    #[test]
    fn reput_refreshes_recency_without_eviction() {
        let mut cache = FrontierCache::new(2);
        let (fp2, o2) = opt_for(2);
        let (fp3, o3) = opt_for(3);
        cache.put(fp2, o2);
        cache.put(fp3, o3);
        // Re-parking fp2 must not evict anything and must make fp3 the
        // coldest entry.
        let (fp2b, o2b) = opt_for(2);
        assert_eq!(fp2, fp2b);
        cache.put(fp2b, o2b);
        assert_eq!(cache.stats().evictions, 0);
        let (fp4, o4) = opt_for(4);
        cache.put(fp4, o4); // evicts fp3, the least recently parked
        assert!(cache.take(fp3).is_none());
        assert!(cache.take(fp2).is_some());
        assert!(cache.take(fp4).is_some());
    }

    #[test]
    fn hammering_at_capacity_keeps_the_hottest_entries() {
        // Satellite regression: put/take churn at capacity must stay
        // consistent — the map and the recency bookkeeping cannot drift.
        let cap = 8;
        let mut cache = FrontierCache::new(cap);
        let pool: Vec<(QueryFingerprint, IamaOptimizer)> = (2..=12).map(opt_for).collect();
        let fps: Vec<QueryFingerprint> = pool.iter().map(|(fp, _)| *fp).collect();
        for (fp, opt) in pool {
            cache.put(fp, opt);
        }
        assert_eq!(cache.stats().entries, cap);
        // The cap most-recently-parked fingerprints survive, oldest die.
        for fp in &fps[..fps.len() - cap] {
            assert!(!cache.contains(*fp));
        }
        // Churn: repeatedly take a survivor and re-park it; the cache must
        // never exceed capacity, never lose the churned entry, and keep
        // hit/miss accounting exact.
        let hot = *fps.last().unwrap();
        for _ in 0..1000 {
            let opt = cache.take(hot).expect("hot entry must survive churn");
            cache.put(hot, opt);
            assert!(cache.stats().entries <= cap);
        }
        let s = cache.stats();
        assert_eq!(s.hits, 1000);
        assert_eq!(s.entries, cap);
        // The churned entry is now the most recent: filling with fresh
        // fingerprints evicts everything else first.
        let fresh: Vec<(QueryFingerprint, IamaOptimizer)> =
            (13..13 + cap - 1).map(opt_for).collect();
        for (fp, opt) in fresh {
            cache.put(fp, opt);
        }
        assert!(cache.contains(hot), "most recent entry evicted too early");
    }

    #[test]
    fn rebase_donor_finds_drifted_twins_and_tracks_eviction() {
        let model = Arc::new(StandardCostModel::paper_metrics());
        let mut cache = FrontierCache::new(4);
        let (fp, opt) = opt_for(3);
        let key = RebaseKey::of(opt.spec(), &*model);
        assert!(!cache.has_rebase_donor(key));
        assert!(cache.rebase_donor(key).is_none());
        cache.put(fp, opt);
        // A drifted-cardinality twin shares the blind key...
        let drifted = testkit::drift_cardinalities(&testkit::chain_query(3, 10_000), 5.5);
        let dkey = RebaseKey::of(&drifted, &*model);
        assert_eq!(key, dkey);
        assert!(cache.has_rebase_donor(dkey));
        let donor = cache.rebase_donor(dkey).expect("donor parked");
        // ...and the donor keeps its own statistics (it is a different
        // fingerprint, returned by reference, still parked).
        assert_eq!(
            donor
                .spec()
                .catalog
                .table(donor.spec().graph.tables[0])
                .cardinality,
            10_000
        );
        assert!(cache.contains(fp), "donor lookup must not unpark");
        // A different shape has no donor.
        let other = testkit::chain_query(4, 10_000);
        assert!(!cache.has_rebase_donor(RebaseKey::of(&other, &*model)));
        // take() unindexes: once the entry leaves, the donor is gone too.
        assert!(cache.take(fp).is_some());
        assert!(!cache.has_rebase_donor(key));
        assert!(cache.rebase_donor(key).is_none());
        let s = cache.stats();
        assert_eq!((s.rebase_hits, s.rebase_misses), (1, 2));
    }
}
