//! Catalog substrate: tables, columns, and statistics.
//!
//! The paper runs on an extended Postgres 9.2 and therefore inherits its
//! catalog. We rebuild the minimal catalog the optimizer needs: per-table
//! cardinalities and row widths, per-column domain sizes for join
//! selectivity estimation, and key/foreign-key markers. `moqo-tpch`
//! instantiates this catalog with the TPC-H schema.

#![warn(missing_docs)]

pub mod builder;
pub mod catalog;
pub mod column;
pub mod table;

pub use builder::CatalogBuilder;
pub use catalog::Catalog;
pub use column::{Column, ColumnId, ColumnRole};
pub use table::{Table, TableId};
