//! moqo-serve — the sharded, admission-controlled serving front.
//!
//! `moqo-engine` turned the paper's single-user loop (Trummer & Koch,
//! SIGMOD 2015, Figure 1) into a multi-session manager; this crate turns
//! that manager into a *service*:
//!
//! * [`ShardedEngine`] — N independent [`moqo_engine::SessionManager`]
//!   shards behind a [`QueryFingerprint`]-hash router. Repeats and
//!   same-shape queries land on the shard whose `FrontierCache` /
//!   `PlanCache` is already warm; cold queries may divert to the
//!   least-loaded shard when their home is overloaded.
//! * [`AdmissionController`] — bounded intake with pluggable overload
//!   policy: [`Reject`](AdmissionPolicy::Reject) (pure backpressure),
//!   [`Queue`](AdmissionPolicy::Queue) (bounded FIFO, never unbounded
//!   growth), or [`Degrade`](AdmissionPolicy::Degrade) (admit at a
//!   coarser target resolution — IAMA's resolution ladder doubling as a
//!   load-shedding knob).
//! * [`MoqoServer`] — the non-blocking client surface: `submit` returns a
//!   [`Ticket`] immediately; frontier snapshots and completion arrive
//!   over per-ticket channels (`poll` to drain, `recv` to block on *your
//!   own* channel). No caller ever parks on the engine's internal
//!   condvar.
//! * [`SnapshotStore`] — versioned snapshot/restore of parked frontiers
//!   (one file per fingerprint via
//!   [`moqo_core::IamaOptimizer::export_frontier`]), so a restarted
//!   server's first invocation of a known query still generates zero
//!   plans.
//!
//! ```
//! use moqo_cost::ResolutionSchedule;
//! use moqo_costmodel::StandardCostModel;
//! use moqo_query::testkit;
//! use moqo_serve::{MoqoServer, ServeConfig, TicketStatus};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let server = MoqoServer::new(
//!     Arc::new(StandardCostModel::paper_metrics()),
//!     ResolutionSchedule::linear(2, 1.1, 0.4),
//!     ServeConfig::default(),
//! );
//! let ticket = server.submit(Arc::new(testkit::chain_query(3, 50_000)));
//! assert!(server.wait_idle(Duration::from_secs(30)));
//! match server.poll(ticket) {
//!     Some(TicketStatus::Active { status, .. }) => assert!(!status.frontier.is_empty()),
//!     other => panic!("expected an active ticket, got {other:?}"),
//! }
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod persist;
pub mod shard;

pub use admission::{
    Admission, AdmissionConfig, AdmissionController, AdmissionPolicy, AdmissionStats, RejectReason,
};
pub use api::{MoqoServer, ServeConfig, ServerStats, Ticket, TicketStatus};
pub use persist::{RestoreReport, SaveReport, SnapshotStore, FRONTIER_EXT};
pub use shard::{GlobalSessionId, RouteDecision, ShardConfig, ShardStats, ShardedEngine};

// Re-exported so serve users can speak the engine vocabulary without a
// direct moqo-engine dependency.
pub use moqo_engine::{EngineConfig, QueryFingerprint, SessionConfig, SessionStatus};
