//! Figure 2 regression benches.
//!
//! * 2(a) anytime vs one-shot: time to the *first* visualized result —
//!   IAMA's coarse first invocation against the one-shot's only result.
//! * 2(b) incremental vs memoryless: steady-state invocation time once
//!   everything has been generated (IAMA's amortized regime, Theorem 5)
//!   versus a from-scratch re-run at the finest precision.

use criterion::{criterion_group, criterion_main, Criterion};
use moqo_baselines::{approx_dp, one_shot};
use moqo_bench::{bench_model, ExperimentSetup};
use moqo_core::IamaOptimizer;
use moqo_cost::Bounds;
use moqo_costmodel::CostModel;
use moqo_tpch::query_block;
use std::sync::Arc;

const SF: f64 = 0.1;
const LEVELS: usize = 10;

fn bench_fig2(c: &mut Criterion) {
    let model = bench_model();
    let setup = ExperimentSetup::fig4();
    let schedule = setup.schedule(LEVELS);
    let bounds = Bounds::unbounded(model.dim());
    let spec = query_block("q05", SF).expect("q05");

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);

    // 2(a): time to first result.
    group.bench_function("anytime_first_result", |b| {
        b.iter_with_setup(
            || {
                IamaOptimizer::new(
                    Arc::new(spec.clone()),
                    Arc::new(model.clone()),
                    schedule.clone(),
                )
            },
            |mut opt| opt.optimize(&bounds, 0),
        )
    });
    group.bench_function("oneshot_first_result", |b| {
        b.iter(|| one_shot(&spec, &model, &schedule, &bounds))
    });

    // 2(b): per-invocation cost after convergence.
    group.bench_function("incremental_steady_state", |b| {
        b.iter_with_setup(
            || {
                let mut opt = IamaOptimizer::new(
                    Arc::new(spec.clone()),
                    Arc::new(model.clone()),
                    schedule.clone(),
                );
                for r in 0..=schedule.r_max() {
                    opt.optimize(&bounds, r);
                }
                opt
            },
            |mut opt| opt.optimize(&bounds, schedule.r_max()),
        )
    });
    group.bench_function("memoryless_steady_state", |b| {
        b.iter(|| approx_dp(&spec, &model, schedule.target_factor(), &bounds))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
