//! Benchmarks of the serving front: submit→first-frontier latency (the
//! interactive SLO) warm vs cold, and shard-router throughput.
//!
//! The warm path is the payoff of the whole incremental design: a
//! repeated query's session takes a parked optimizer out of its shard's
//! frontier cache and its first invocation generates zero plans — the
//! latency is cache lookup + one settled invocation, orders of magnitude
//! under the cold path's plan generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moqo_cost::ResolutionSchedule;
use moqo_costmodel::StandardCostModel;
use moqo_engine::EngineConfig;
use moqo_query::testkit;
use moqo_serve::{ShardConfig, ShardedEngine};
use std::sync::Arc;
use std::time::Duration;

const IDLE: Duration = Duration::from_secs(120);

fn engine() -> ShardedEngine {
    ShardedEngine::new(
        Arc::new(StandardCostModel::paper_metrics()),
        ResolutionSchedule::linear(3, 1.05, 0.5),
        ShardConfig {
            shards: 4,
            engine: EngineConfig {
                workers: 2,
                ..EngineConfig::default()
            },
            rebalance_headroom: 8,
        },
    )
}

/// Submits, blocks on the session's own channel until the first
/// non-empty frontier, then retires the session (re-parking its state).
fn first_frontier(e: &ShardedEngine, spec: Arc<moqo_query::QuerySpec>) -> usize {
    let (gid, _) = e.submit(spec);
    let rx = e.watch(gid).expect("fresh session");
    let mut view = moqo_serve::SessionView::default();
    let mut size = 0;
    for event in rx.iter() {
        view.fold(&event).expect("ordered watch stream");
        if !view.frontier.is_empty() {
            size = view.frontier.len();
            break;
        }
    }
    assert!(e.wait_idle(IDLE));
    e.finish(gid).expect("retire");
    size
}

fn bench_submit_to_first_frontier(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_first_frontier");
    group.sample_size(10);

    // Warm path: the fingerprint's frontier is parked (each iteration
    // re-parks it via finish), so the measured latency is routing + cache
    // take + one zero-generation invocation.
    let e = engine();
    let spec = Arc::new(testkit::chain_query(5, 80_000));
    first_frontier(&e, spec.clone()); // park the frontier once, untimed
    group.bench_function("warm_repeat_chain5", |b| {
        b.iter(|| first_frontier(&e, black_box(spec.clone())))
    });

    // Cold path with a shared enumeration plane: every iteration submits
    // a fresh fingerprint (new statistics) of an already-cached shape, so
    // the measured latency is plan *generation*, not plan-space setup.
    let e = engine();
    let mut card = 100_000u64;
    group.bench_function("cold_fresh_stats_chain5", |b| {
        b.iter(|| {
            card += 1;
            first_frontier(&e, Arc::new(testkit::chain_query(5, black_box(card))))
        })
    });
    group.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_router");
    let e = engine();
    let fps: Vec<_> = (0..256)
        .map(|i| e.fingerprint(&testkit::chain_query(3, 10_000 + i)))
        .collect();
    group.bench_function("route_256_cold_fps", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &fp in &fps {
                acc += e.route(black_box(fp)).0;
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_submit_to_first_frontier, bench_router);
criterion_main!(benches);
