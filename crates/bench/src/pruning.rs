//! The `repro pruning` experiment: throughput of the dominance-scan
//! pruning kernels, scalar visitor versus batched struct-of-arrays
//! lanes, plus the prune-path share of end-to-end invocation time.
//!
//! Two measurements:
//!
//! 1. **Kernel microbench** — synthetic cell grids with *controlled*
//!    cell sizes (costs pinned into known `floor(log2(1+v))` buckets,
//!    one bucket vector per cell) are scanned with
//!    [`PlanIndex::dominance_scan`] (batched lane kernels) and
//!    [`dominance_scan_scalar`] (the per-entry `dyn` visitor the
//!    optimizer used before the refactor). `threshold =
//!    f64::NEG_INFINITY` forces full scans so both paths do identical
//!    logical work; the reported medians isolate the storage-layout and
//!    call-protocol difference. The same builder feeds the criterion
//!    group in `benches/enumeration.rs`.
//! 2. **Prune share** — full refinement ladders with
//!    [`IamaConfig::time_pruning`] on, batched kernels on versus off,
//!    reporting how much of the invocation wall-clock the witness
//!    search consumes and its comparison throughput.
//!
//! Both paths are decision-equivalent by construction (see
//! `moqo_index::DominanceScan`); the experiment double-checks that the
//! measured runs returned bit-identical frontier bytes.

use moqo_core::{IamaConfig, IamaOptimizer};
use moqo_cost::{Bounds, CostVector, ResolutionSchedule};
use moqo_costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use moqo_index::{dominance_scan_scalar, CellGrid, Entry, PlanIndex};
use moqo_query::{testkit, QuerySpec};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::harness::{Experiment, ExperimentReport, Trial};
use crate::stats::{Samples, Summary};
use crate::workload::XorShift;

/// Cost-metric dimensionalities the kernel microbench sweeps.
pub const KERNEL_DIMS: &[usize] = &[2, 3, 6];

/// Grid-cell populations the kernel microbench sweeps.
pub const KERNEL_CELL_SIZES: &[usize] = &[8, 64, 512];

/// Builds a cell grid with exactly `cells` populated cells of
/// `cell_size` entries each: cell `c` gets the per-metric log-bucket
/// `2 + 3 * digit_m(c)` (base-16 digits), and every entry's metric `m`
/// is drawn uniformly from that bucket's value range
/// `[2^e - 1, 2^{e+1} - 1)`, so `floor(log2(1 + v)) = e` exactly and no
/// two cells collide. All entries carry level 0.
///
/// Returns the grid and a mid-range scan target. `cells` must be at
/// most `16^min(dim, 2)` (256 for `dim >= 2`) to keep bucket vectors
/// distinct.
pub fn build_pruning_grid(
    dim: usize,
    cells: usize,
    cell_size: usize,
    seed: u64,
) -> (CellGrid<u32>, CostVector) {
    assert!(cells <= 16usize.pow(dim.min(2) as u32));
    let mut rng = XorShift::new(seed);
    let mut grid = CellGrid::new(dim);
    let mut item = 0u32;
    for c in 0..cells {
        let exps: Vec<u32> = (0..dim)
            .map(|m| 2 + 3 * ((c >> (4 * m.min(1))) as u32 & 0xf))
            .collect();
        for _ in 0..cell_size {
            let vals: Vec<f64> = exps
                .iter()
                .map(|&e| {
                    let lo = (1u64 << e) as f64;
                    lo * (1.0 + rng.next_f64()) - 1.0
                })
                .collect();
            grid.insert(Entry::new(item, CostVector::new(&vals), 0, 0));
            item += 1;
        }
    }
    let target = CostVector::new(&vec![64.0; dim]);
    (grid, target)
}

/// Times `scan` (which performs one full pass over the grid) and
/// returns its median ns/pass over `samples` samples of `reps` passes
/// each.
fn time_scans(mut scan: impl FnMut() -> f64, reps: usize, samples: usize) -> f64 {
    let mut per_pass = Samples::with_capacity(samples);
    for _ in 0..samples {
        let t = Instant::now();
        let mut sink = 0.0;
        for _ in 0..reps {
            sink += scan();
        }
        let ns = t.elapsed().as_nanos() as f64 / reps as f64;
        assert!(sink.is_finite());
        per_pass.push(ns);
    }
    Summary::of_or_zero(&per_pass).p50
}

/// Measures one (dim, cell size) point: median ns per full scan, both
/// paths, plus derived throughput and speedup.
fn measure_kernel_point(dim: usize, cell_size: usize, fast: bool, trial: &mut Trial) {
    let (samples, target_total) = if fast { (3, 1024) } else { (5, 4096) };
    let cells = (target_total / cell_size).clamp(1, 256);
    let entries = cells * cell_size;
    let (grid, target) = build_pruning_grid(dim, cells, cell_size, 0x5eed + dim as u64);
    let bounds = Bounds::unbounded(dim);
    let reps = (2_000_000 / entries).max(8);
    // Full scans: a negative-infinity threshold never triggers the
    // early exit, so both paths walk every entry.
    let scalar_ns = time_scans(
        || {
            dominance_scan_scalar(&grid, &bounds, 0, &target, f64::NEG_INFINITY, &mut |_| true)
                .best_factor
        },
        reps,
        samples,
    );
    let batch_ns = time_scans(
        || {
            grid.dominance_scan(&bounds, 0, &target, f64::NEG_INFINITY, &mut |_| true)
                .best_factor
        },
        reps,
        samples,
    );
    let per_sec = |ns: f64| entries as f64 / (ns * 1e-9);
    trial.int("cells", cells as u64);
    trial.int("entries", entries as u64);
    trial.num_lower("scalar_ns", scalar_ns);
    trial.num_lower("batch_ns", batch_ns);
    trial.num_higher("scalar_cmp_per_sec", per_sec(scalar_ns));
    trial.num_higher("batch_cmp_per_sec", per_sec(batch_ns));
    trial.num("speedup", scalar_ns / batch_ns);
}

/// The lean cost model used for enumeration-plane and pruning profiles:
/// small option sets and no evaluation spin keep ladders fast while the
/// pruning structure stays realistic.
fn lean_model() -> StandardCostModel {
    StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![100, 500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    )
}

/// The mixed topology workload the prune-share ladders run.
fn share_specs(fast: bool) -> Vec<Arc<QuerySpec>> {
    let n = if fast { 7 } else { 9 };
    vec![
        Arc::new(testkit::chain_query(n, 100_000)),
        Arc::new(testkit::star_query(if fast { 5 } else { 7 }, 100_000)),
        Arc::new(testkit::clique_query(if fast { 4 } else { 6 }, 1000)),
    ]
}

/// Frontiers the batched ladders produced, keyed by query name, so the
/// scalar twin of each query can assert byte-equality.
struct PruningState {
    fast: bool,
    model: Arc<StandardCostModel>,
    frontiers: HashMap<String, moqo_core::FrontierSnapshot>,
}

/// Runs one full ladder with pruning timed and records the prune-path
/// profile; returns the final frontier for the bits_eq cross-check.
fn run_share_ladder(
    state: &PruningState,
    spec: &Arc<QuerySpec>,
    batch: bool,
    trial: &mut Trial,
) -> moqo_core::FrontierSnapshot {
    let schedule = ResolutionSchedule::linear(if state.fast { 2 } else { 4 }, 1.05, 0.5);
    let bounds = Bounds::unbounded(state.model.dim());
    let config = IamaConfig {
        use_batch_kernels: batch,
        time_pruning: true,
        ..IamaConfig::default()
    };
    let mut opt =
        IamaOptimizer::with_config(spec.clone(), state.model.clone(), schedule.clone(), config);
    let mut total_seconds = 0.0;
    for r in 0..=schedule.r_max() {
        total_seconds += opt.optimize(&bounds, r).seconds();
    }
    let stats = opt.stats();
    let prune_seconds = stats.prune_nanos as f64 * 1e-9;
    trial.num_lower("total_s", total_seconds);
    trial.num_lower("prune_s", prune_seconds);
    trial.num("prune_share", prune_seconds / total_seconds.max(1e-12));
    trial.int("prune_comparisons", stats.prune_comparisons);
    trial.num_higher(
        "cmp_per_sec",
        stats.prune_comparisons as f64 / prune_seconds.max(1e-12),
    );
    opt.frontier(&bounds, schedule.r_max())
}

/// The pruning experiment: the kernel sweep ([`KERNEL_DIMS`] ×
/// [`KERNEL_CELL_SIZES`]) and the end-to-end prune-share ladders
/// (batched kernels on versus off, per query). Panics if the two ladder
/// modes disagree on a single frontier byte — the kernels must change
/// time, never bytes.
pub fn pruning_experiment(fast: bool) -> ExperimentReport {
    let mut exp = Experiment::new("pruning", fast, move || PruningState {
        fast,
        model: Arc::new(lean_model()),
        frontiers: HashMap::new(),
    })
    .title("dominance-scan pruning: batched lanes vs the scalar visitor");
    for &dim in KERNEL_DIMS {
        for &cell_size in KERNEL_CELL_SIZES {
            exp = exp.variant(
                "kernel microbench",
                format!("dim{dim} cell{cell_size}"),
                move |_, t| measure_kernel_point(dim, cell_size, fast, t),
            );
        }
    }
    for spec in share_specs(fast) {
        let name = spec.name.clone();
        let batch_spec = spec.clone();
        exp = exp
            .variant("prune share", format!("{name} batch"), move |s, t| {
                let frontier = run_share_ladder(s, &batch_spec, true, t);
                s.frontiers.insert(batch_spec.name.clone(), frontier);
            })
            .variant("prune share", format!("{name} scalar"), move |s, t| {
                let frontier = run_share_ladder(s, &spec, false, t);
                let batched = &s.frontiers[&spec.name];
                assert!(
                    frontier.bits_eq(batched),
                    "{}: batched and scalar pruning disagree on frontier bytes",
                    spec.name
                );
            });
    }
    exp.conclusion(
        "batched struct-of-arrays lanes outscan the dyn visitor at every \
         (dim, cell size) point, and the two paths stay bit-identical.",
    )
    .run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_builder_hits_the_requested_cell_sizes() {
        let (grid, _) = build_pruning_grid(3, 7, 16, 99);
        assert_eq!(grid.len(), 7 * 16);
        // Every entry is visible to a full scan at level 0...
        let mut seen = 0usize;
        grid.scan(&Bounds::unbounded(3), 0, &mut |_| {
            seen += 1;
            false
        });
        assert_eq!(seen, 7 * 16);
        // ...and both scan paths report the same witness minimum.
        let target = CostVector::new(&[64.0; 3]);
        let batched = grid.dominance_scan(
            &Bounds::unbounded(3),
            0,
            &target,
            f64::NEG_INFINITY,
            &mut |_| true,
        );
        let scalar = dominance_scan_scalar(
            &grid,
            &Bounds::unbounded(3),
            0,
            &target,
            f64::NEG_INFINITY,
            &mut |_| true,
        );
        assert_eq!(batched.best_factor.to_bits(), scalar.best_factor.to_bits());
    }

    #[test]
    fn builder_rejects_colliding_cell_counts() {
        let result = std::panic::catch_unwind(|| build_pruning_grid(2, 257, 1, 1));
        assert!(result.is_err());
    }
}
