//! End-to-end SQL → blocks → IAMA pipeline tests.

use moqo::core::{IamaConfig, IamaOptimizer, Preference};
use moqo::cost::{Bounds, ResolutionSchedule};
use moqo::costmodel::{CostModel, MetricSet, StandardCostModel, StandardCostModelConfig};
use std::sync::Arc;

fn model() -> Arc<StandardCostModel> {
    Arc::new(StandardCostModel::new(
        MetricSet::paper(),
        StandardCostModelConfig {
            dops: vec![1, 4],
            sampling_rates_pm: vec![500],
            eval_spin: 0,
            ..StandardCostModelConfig::default()
        },
    ))
}

#[test]
fn nested_statement_optimizes_block_by_block() {
    let catalog = moqo::tpch::tpch_catalog(0.01);
    let blocks = moqo::sql::plan_blocks(
        "SELECT c.c_custkey FROM customer c, orders o, lineitem l \
         WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey \
         AND c.c_mktsegment = 'BUILDING' \
         AND o.o_orderkey IN (SELECT ps.ps_partkey FROM partsupp ps, part p \
                              WHERE ps.ps_partkey = p.p_partkey AND p.p_size = 15)",
        &catalog,
    )
    .expect("valid SQL");
    assert_eq!(blocks.len(), 2);
    assert_eq!(blocks[0].n_tables(), 3);
    assert_eq!(blocks[1].n_tables(), 2);

    let model = model();
    let schedule = ResolutionSchedule::linear(4, 1.05, 0.5);
    for spec in &blocks {
        let mut opt = IamaOptimizer::with_config(
            Arc::new(spec.clone()),
            model.clone(),
            schedule.clone(),
            IamaConfig::tracked(),
        );
        let b = Bounds::unbounded(model.dim());
        for r in 0..=schedule.r_max() {
            opt.optimize(&b, r);
        }
        let frontier = opt.frontier(&b, schedule.r_max());
        assert!(!frontier.is_empty(), "{}: empty frontier", spec.name);
        // Incremental invariants hold for decomposed blocks too.
        assert!(opt.stats().max_plan_generations() <= 1);
        assert!(opt.stats().max_pair_generations() <= 1);
        // Every frontier plan joins exactly the block's tables.
        for p in &frontier.points {
            assert_eq!(opt.arena().tables(p.plan), spec.all_tables());
        }
    }
}

#[test]
fn preference_selection_over_sql_block() {
    let catalog = moqo::tpch::tpch_catalog(0.01);
    let blocks = moqo::sql::plan_blocks(
        "SELECT s.s_suppkey FROM supplier s, nation n, region r \
         WHERE s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey \
         AND r.r_name = 'EUROPE'",
        &catalog,
    )
    .unwrap();
    let spec = &blocks[0];
    let model = model();
    let schedule = ResolutionSchedule::linear(5, 1.02, 0.4);
    let mut opt = IamaOptimizer::new(Arc::new(spec.clone()), model.clone(), schedule.clone());
    let b = Bounds::unbounded(model.dim());
    for r in 0..=schedule.r_max() {
        opt.optimize(&b, r);
    }
    let frontier = opt.frontier(&b, schedule.r_max());
    // Weighted time-first preference must pick a plan at least as fast as
    // any plan the cores-first preference picks.
    let fast = Preference::WeightedSum(vec![1.0, 1e-6, 1e-6])
        .select(&frontier, &b)
        .expect("well-formed preference")
        .expect("frontier non-empty");
    let lean = Preference::WeightedSum(vec![1e-6, 1.0, 1e-6])
        .select(&frontier, &b)
        .expect("well-formed preference")
        .expect("frontier non-empty");
    assert!(fast.cost[0] <= lean.cost[0] + 1e-12);
    assert!(lean.cost[1] <= fast.cost[1] + 1e-12);
}

#[test]
fn filter_selectivities_shrink_estimated_cardinality() {
    let catalog = moqo::tpch::tpch_catalog(1.0);
    let with_filter = moqo::sql::plan_blocks(
        "SELECT o.o_orderkey FROM orders o, lineitem l \
         WHERE o.o_orderkey = l.l_orderkey AND o.o_orderpriority = '1-URGENT'",
        &catalog,
    )
    .unwrap();
    let without = moqo::sql::plan_blocks(
        "SELECT o.o_orderkey FROM orders o, lineitem l \
         WHERE o.o_orderkey = l.l_orderkey",
        &catalog,
    )
    .unwrap();
    let card_f = with_filter[0].cardinality(with_filter[0].all_tables());
    let card_n = without[0].cardinality(without[0].all_tables());
    assert!(
        card_f < card_n * 0.5,
        "filter must shrink cardinality: {card_f} vs {card_n}"
    );
}
