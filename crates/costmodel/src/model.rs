//! The [`CostModel`] trait: what every optimizer needs from the costing
//! substrate.

use crate::metrics::MetricSet;
use moqo_cost::CostVector;
use moqo_plan::{Operator, PhysicalProps};
use moqo_query::{QuerySpec, TableSet};

/// What the cost model sees of a child plan when costing a join: its table
/// set, cached cost vector, and physical properties.
///
/// This is all the information the recursive cost formulas may consume —
/// the paper's Lemma 4 requires that combining two sub-plans costs `O(1)`,
/// which holds because the cost is computed "from the cached cost of the
/// sub-plans using recursive cost formulas".
#[derive(Clone, Copy, Debug)]
pub struct PlanInput {
    /// Tables joined by the child plan.
    pub tables: TableSet,
    /// Cached cost vector of the child plan.
    pub cost: CostVector,
    /// Physical properties of the child plan's output.
    pub props: PhysicalProps,
}

/// A multi-objective cost model: enumerates operator alternatives and costs
/// them with PONO-compliant recursive formulas.
pub trait CostModel {
    /// The metric layout of the produced cost vectors.
    fn metrics(&self) -> &MetricSet;

    /// Number of cost metrics (the paper's `l`).
    fn dim(&self) -> usize {
        self.metrics().dim()
    }

    /// All scan alternatives for the query table at `position`:
    /// `(operator, cost, output properties)` triples.
    ///
    /// Multiple alternatives per table (e.g. sampled scans at different
    /// rates) are what make single-table Pareto sets non-trivial.
    fn scan_alternatives(
        &self,
        spec: &QuerySpec,
        position: usize,
    ) -> Vec<(Operator, CostVector, PhysicalProps)>;

    /// All join alternatives combining `left ⋈ right`:
    /// `(operator, cost, output properties)` triples.
    ///
    /// Implementations must only use the children's [`PlanInput`] data and
    /// per-table-set statistics from `spec`, keeping each alternative O(1)
    /// to cost.
    fn join_alternatives(
        &self,
        spec: &QuerySpec,
        left: &PlanInput,
        right: &PlanInput,
    ) -> Vec<(Operator, CostVector, PhysicalProps)>;
}
