//! IAMA — the Incremental Anytime Multi-objective Query Optimization
//! Algorithm (Trummer & Koch, SIGMOD 2015), Section 4.
//!
//! The crate implements the paper's two components:
//!
//! * [`IamaOptimizer`] — the incremental optimizer (Algorithm 2 plus the
//!   `Prune` and `Fresh` sub-functions of Algorithm 3). It maintains the
//!   result and candidate plan sets across invocations, indexed by table
//!   set, cost vector, and resolution level, and guarantees that after an
//!   invocation with bounds `b` and resolution `r`, the result set for
//!   every table subset `q` (with `|q| = k`) contains an
//!   `alpha_r^k`-approximate `b`-bounded Pareto plan set (Theorems 1–2).
//! * [`Session`] — the main control loop (Algorithm 1). It feeds
//!   [`SessionCommand`]s (refinement, bound changes, plan selection) into
//!   the optimizer, resets the resolution on bound changes, and otherwise
//!   refines resolution by one level per iteration, emitting one
//!   delta-streamed [`SessionEvent`] per command.
//!
//! The [`protocol`] module defines the typed session vocabulary —
//! [`SessionRequest`] / [`SessionCommand`] / [`SessionEvent`] — that the
//! serving layers (`moqo-engine`, `moqo-serve`) re-export and speak
//! unchanged, so one client codepath drives a bare session, a session
//! manager, and the sharded serving front.
//!
//! [`OptimizerStats`] instruments the incremental invariants so the tests
//! and benchmarks can verify Lemmas 5–7 directly: every plan is generated
//! at most once, every ordered sub-plan pair is combined at most once, and
//! every candidate is retrieved at most `rM + 1` times.

#![warn(missing_docs)]

pub mod config;
pub mod frontier;
pub mod optimizer;
pub mod preference;
pub mod protocol;
pub mod report;
pub mod session;
pub mod snapshot;
pub mod stats;
pub mod wire;

pub use config::IamaConfig;
pub use frontier::{FrontierPoint, FrontierSnapshot};
pub use optimizer::IamaOptimizer;
pub use preference::Preference;
pub use protocol::{
    AdmissionResponse, FrontierDelta, ProtocolError, RejectReason, SessionCommand, SessionEvent,
    SessionOutcome, SessionRequest, SessionView,
};
pub use report::InvocationReport;
pub use session::Session;
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use stats::OptimizerStats;
pub use wire::{WireDecode, WireEncode, WireError, WireReader, WireResult, WireWriter};
