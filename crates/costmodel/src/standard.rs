//! The standard cost model: textbook operator cost formulas over the
//! paper's three evaluation metrics (plus fees and energy).
//!
//! ## Formulas
//!
//! All time-like quantities are in abstract work units (1 unit ≈ touching
//! one 100-byte tuple). With `n_l`, `n_r` the estimated input cardinalities
//! and `n_out` the estimated output cardinality of a join:
//!
//! * Full scan of a table with `N` raw rows of width `w` bytes:
//!   `time = N · w/100`.
//! * Sampled scan at fraction `f`: `time = f · N · w/100`, `error = 1 − f`.
//!   Sampling is only offered for tables with at least
//!   `sampling_min_rows` rows, and larger tables offer more rates — this
//!   mirrors the paper's footnote 4 (the 8-table TPC-H query touches many
//!   small tables "for which less sampling strategies are considered").
//! * Hash join: `work = c_build·n_r + c_probe·n_l + n_out + K_hash`.
//! * Sort-merge join: `work = c_sort·(n_l·log n_l + n_r·log n_r) + n_l +
//!   n_r + n_out + K_sort`; a child already sorted on the join key skips
//!   its sort term. Output is sorted on the join key (interesting order).
//! * Nested-loop join: `work = c_nl·n_l·n_r + n_out` (no setup cost — the
//!   winner for tiny inputs).
//! * Parallelism: a join with degree-of-parallelism `d` has
//!   `op_time = work / speedup(d)` with `speedup(d) = 1 + 0.85·(d−1)`
//!   (sub-linear). With `d > 1` the children execute concurrently, so
//!   their times combine with `max` and their core reservations add;
//!   with `d = 1` execution is sequential (`+` for time, `max` for cores).
//! * Fees: core-seconds, `op_fee = work/speedup(d) · d · price`; sum over
//!   the plan.
//! * Energy: proportional to total work (parallelism does not reduce it),
//!   plus a per-operator constant; sum over the plan.
//!
//! Join operator terms are computed from *statistical* per-table-set
//! cardinalities (`QuerySpec::cardinality`), deliberately not discounted by
//! upstream sampling: this keeps every aggregation inside the strict PONO
//! class (sum/max/min/constant-scale of child components), so Theorems 1–2
//! hold exactly. The time-vs-error tradeoff remains: scan time dominates
//! the costs of large TPC-H tables.

use crate::metrics::{prob_sum, Metric, MetricSet};
use crate::model::{CostModel, PlanInput};
use moqo_cost::CostVector;
#[cfg(test)]
use moqo_plan::ScanMethod;
use moqo_plan::{JoinAlgo, Operator, OrderKey, PhysicalProps};
use moqo_query::{QuerySpec, TableSet};

/// Tunable parameters of [`StandardCostModel`].
#[derive(Clone, Debug)]
pub struct StandardCostModelConfig {
    /// Degrees of parallelism offered for join operators.
    pub dops: Vec<u16>,
    /// Sampling rates (per-mille) offered for scans of large tables.
    pub sampling_rates_pm: Vec<u16>,
    /// Minimum raw cardinality for a table to support sampling at all.
    pub sampling_min_rows: u64,
    /// Join algorithms considered.
    pub join_algos: Vec<JoinAlgo>,
    /// Whether cross products are allowed when the join graph connects the
    /// inputs nowhere (Postgres only considers them for disconnected
    /// graphs; the optimizers handle that separately).
    pub price_per_core_unit: f64,
    /// Energy per work unit.
    pub energy_per_unit: f64,
    /// Constant per-operator energy overhead.
    pub energy_op_overhead: f64,
    /// Simulated per-alternative costing effort: iterations of a short
    /// deterministic floating-point recurrence executed for every produced
    /// plan alternative. The paper's substrate (extended Postgres 9.2)
    /// spends tens of microseconds of catalog lookups and cost-formula
    /// evaluation per path; our closed-form model costs ~100ns, which
    /// would let index/bookkeeping noise dominate the relative timings the
    /// figures compare. The spin restores a realistic generation-to-
    /// bookkeeping cost ratio; set to 0 for raw algorithmic timing (see
    /// DESIGN.md's substitution table).
    pub eval_spin: u32,
    /// Multiplicative quantization grid for the continuous metrics (time,
    /// fees, energy): values are snapped to the nearest power of the grid
    /// factor (e.g. `Some(1.01)` = 1 % steps, matching Postgres's fuzzy
    /// cost comparison `STD_FUZZ_FACTOR`). Real optimizer cost spaces are
    /// effectively coarse at sub-percent scales, which makes Pareto sets
    /// *saturate* at fine resolutions — the regime the paper's Figures 3-5
    /// measure. `None` (the default) keeps costs exact, preserving the
    /// strict PONO property the formal tests verify; quantization weakens
    /// PONO by at most the square of the grid factor.
    pub quantize_grid: Option<f64>,
}

impl Default for StandardCostModelConfig {
    fn default() -> Self {
        Self {
            dops: vec![1, 2, 4, 8],
            sampling_rates_pm: vec![10, 50, 100, 250, 500],
            sampling_min_rows: 10_000,
            join_algos: JoinAlgo::ALL.to_vec(),
            price_per_core_unit: 1e-3,
            energy_per_unit: 1.0,
            energy_op_overhead: 50.0,
            eval_spin: 150,
            quantize_grid: None,
        }
    }
}

/// The standard, PONO-compliant multi-metric cost model.
#[derive(Clone, Debug)]
pub struct StandardCostModel {
    metrics: MetricSet,
    config: StandardCostModelConfig,
}

// Work-unit constants.
const WIDTH_UNIT: f64 = 100.0; // bytes per work unit of scanning
const C_BUILD: f64 = 1.5;
const C_PROBE: f64 = 1.0;
const K_HASH: f64 = 1_000.0;
const C_SORT: f64 = 0.2;
const K_SORT: f64 = 2_000.0;
const C_NL: f64 = 0.01;
const TIME_SCALE: f64 = 1e-4; // work units -> reported time units
const ROW_BYTES: f64 = 100.0; // assumed intermediate-row width for buffers
const SCAN_BUFFER: f64 = 8_192.0; // page buffer per scan
const NL_BUFFER: f64 = 65_536.0; // block buffer for nested-loop joins

impl StandardCostModel {
    /// A model with the given metric layout and configuration.
    pub fn new(metrics: MetricSet, config: StandardCostModelConfig) -> Self {
        Self { metrics, config }
    }

    /// The paper's evaluation setup: time, reserved cores, result error.
    pub fn paper_metrics() -> Self {
        Self::new(MetricSet::paper(), StandardCostModelConfig::default())
    }

    /// Example 1's cloud setup: time and monetary fees.
    pub fn cloud_metrics() -> Self {
        Self::new(MetricSet::cloud(), StandardCostModelConfig::default())
    }

    /// Time + energy.
    pub fn energy_metrics() -> Self {
        Self::new(MetricSet::energy(), StandardCostModelConfig::default())
    }

    /// All five metrics (stress-testing higher dimensions).
    pub fn all_metrics() -> Self {
        Self::new(MetricSet::all(), StandardCostModelConfig::default())
    }

    /// Access the configuration.
    pub fn config(&self) -> &StandardCostModelConfig {
        &self.config
    }

    /// Sampling rates offered for a table with `raw_rows` rows: none below
    /// `sampling_min_rows`, then progressively more for each order of
    /// magnitude (footnote 4 behaviour).
    fn sampling_rates_for(&self, raw_rows: f64) -> &[u16] {
        if raw_rows < self.config.sampling_min_rows as f64 {
            return &[];
        }
        // One extra rate per order of magnitude above the threshold.
        let magnitude = (raw_rows / self.config.sampling_min_rows as f64)
            .log10()
            .floor() as usize
            + 1;
        let n = magnitude.min(self.config.sampling_rates_pm.len());
        &self.config.sampling_rates_pm[..n]
    }

    fn speedup(dop: u16) -> f64 {
        1.0 + 0.85 * (dop as f64 - 1.0)
    }

    /// Snaps continuous-metric values to the configured multiplicative
    /// grid (identity when quantization is off or the value is zero).
    #[inline]
    fn quantize(&self, metric: Metric, v: f64) -> f64 {
        let grid = match self.config.quantize_grid {
            Some(g) => g,
            None => return v,
        };
        match metric {
            Metric::Time | Metric::Fees | Metric::Energy if v > 0.0 => {
                let step = grid.ln();
                (step * (v.ln() / step).round()).exp()
            }
            _ => v,
        }
    }

    /// Burns the configured simulated costing effort (see
    /// [`StandardCostModelConfig::eval_spin`]).
    #[inline]
    fn costing_effort(&self) {
        let mut x = 1.000_000_1f64;
        for _ in 0..self.config.eval_spin {
            x = x * 1.000_000_1 + 1.0;
        }
        std::hint::black_box(x);
    }

    /// Assembles a cost vector for a scan.
    fn scan_cost(&self, raw_rows: f64, width: f64, fraction: f64) -> CostVector {
        let work = raw_rows * fraction * (width / WIDTH_UNIT);
        CostVector::from_fn(self.metrics.dim(), |i| {
            let metric = self.metrics.metric(i);
            let v = match metric {
                Metric::Time => work * TIME_SCALE,
                Metric::Cores => 1.0,
                Metric::Error => 1.0 - fraction,
                Metric::Fees => work * TIME_SCALE * self.config.price_per_core_unit,
                Metric::Energy => work * TIME_SCALE * self.config.energy_per_unit,
                Metric::Memory => SCAN_BUFFER,
            };
            self.quantize(metric, v)
        })
    }

    /// Assembles a cost vector for a join with operator work `work`,
    /// operator buffer footprint `op_mem` (bytes), and degree of
    /// parallelism `dop`, given the two child vectors.
    fn join_cost(
        &self,
        left: &CostVector,
        right: &CostVector,
        work: f64,
        op_mem: f64,
        dop: u16,
    ) -> CostVector {
        let parallel = dop > 1;
        let op_time = work * TIME_SCALE / Self::speedup(dop);
        CostVector::from_fn(self.metrics.dim(), |i| {
            let metric = self.metrics.metric(i);
            let (l, r) = (left[i], right[i]);
            let v = match metric {
                Metric::Time => {
                    // Parallel joins run children concurrently.
                    let children = if parallel { l.max(r) } else { l + r };
                    children + op_time
                }
                Metric::Cores => {
                    // Concurrent children reserve cores simultaneously.
                    let children = if parallel { l + r } else { l.max(r) };
                    children.max(dop as f64)
                }
                Metric::Error => prob_sum(l, r),
                Metric::Fees => l + r + op_time * dop as f64 * self.config.price_per_core_unit,
                Metric::Energy => {
                    l + r
                        + work * TIME_SCALE * self.config.energy_per_unit
                        + self.config.energy_op_overhead * TIME_SCALE
                }
                Metric::Memory => {
                    // Sequential pipelines release child buffers stage by
                    // stage; concurrent children hold them simultaneously.
                    let children = if parallel { l + r } else { l.max(r) };
                    children.max(op_mem)
                }
            };
            self.quantize(metric, v)
        })
    }

    /// The order key for the join connecting `a` and `b`: the index of the
    /// lowest join-graph edge between them (None for a cross product).
    fn join_order_key(spec: &QuerySpec, a: TableSet, b: TableSet) -> Option<OrderKey> {
        spec.graph
            .edges
            .iter()
            .position(|e| e.connects(a, b))
            .map(|i| OrderKey(i as u16))
    }
}

impl CostModel for StandardCostModel {
    fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    fn identity(&self) -> u64 {
        // FNV-1a over the metric layout and every config parameter the
        // cost formulas consume; two StandardCostModels agree iff they
        // cost every plan identically.
        let mut h = moqo_cost::Fnv64::new();
        h.str("StandardCostModel");
        for i in 0..self.metrics.dim() {
            h.str(self.metrics.metric(i).name());
        }
        let c = &self.config;
        h.u64(c.dops.len() as u64);
        for &d in &c.dops {
            h.u64(d as u64);
        }
        h.u64(c.sampling_rates_pm.len() as u64);
        for &r in &c.sampling_rates_pm {
            h.u64(r as u64);
        }
        h.u64(c.sampling_min_rows);
        h.u64(c.join_algos.len() as u64);
        for &a in &c.join_algos {
            h.u64(a as u64);
        }
        h.u64(c.price_per_core_unit.to_bits());
        h.u64(c.energy_per_unit.to_bits());
        h.u64(c.energy_op_overhead.to_bits());
        // Hash the Option discriminant separately: `None` must not
        // collide with `Some(0.0)` (whose bits are also zero).
        h.u64(c.quantize_grid.is_some() as u64);
        h.u64(c.quantize_grid.map_or(0, |g| g.to_bits()));
        h.finish()
    }

    fn scan_alternatives(
        &self,
        spec: &QuerySpec,
        position: usize,
    ) -> Vec<(Operator, CostVector, PhysicalProps)> {
        let raw = spec.raw_cardinality(position);
        let width = spec.base_row_width(position);
        let mut out = Vec::with_capacity(1 + self.config.sampling_rates_pm.len());
        self.costing_effort();
        out.push((
            Operator::full_scan(position),
            self.scan_cost(raw, width, 1.0),
            PhysicalProps::NONE,
        ));
        for &rate_pm in self.sampling_rates_for(raw) {
            let f = rate_pm as f64 / 1000.0;
            self.costing_effort();
            out.push((
                Operator::sampled_scan(position, rate_pm),
                self.scan_cost(raw, width, f),
                PhysicalProps::NONE,
            ));
        }
        out
    }

    fn join_alternatives(
        &self,
        spec: &QuerySpec,
        left: &PlanInput,
        right: &PlanInput,
    ) -> Vec<(Operator, CostVector, PhysicalProps)> {
        let n_l = spec.cardinality(left.tables);
        let n_r = spec.cardinality(right.tables);
        let union = left.tables.union(right.tables);
        let n_out = spec.cardinality(union);
        let order_key = Self::join_order_key(spec, left.tables, right.tables);

        let mut out = Vec::with_capacity(self.config.join_algos.len() * self.config.dops.len());
        for &algo in &self.config.join_algos {
            let (work, op_mem, props) = match algo {
                JoinAlgo::Hash => (
                    C_BUILD * n_r + C_PROBE * n_l + n_out + K_HASH,
                    n_r * ROW_BYTES, // in-memory build side
                    PhysicalProps::NONE,
                ),
                JoinAlgo::SortMerge => {
                    // A child already sorted on this join's key skips its
                    // sort term.
                    let sort_l = if order_key.is_some() && left.props.order == order_key {
                        0.0
                    } else {
                        C_SORT * n_l * n_l.max(2.0).log2()
                    };
                    let sort_r = if order_key.is_some() && right.props.order == order_key {
                        0.0
                    } else {
                        C_SORT * n_r * n_r.max(2.0).log2()
                    };
                    let props = match order_key {
                        Some(k) => PhysicalProps::sorted(k),
                        None => PhysicalProps::NONE,
                    };
                    (
                        sort_l + sort_r + n_l + n_r + n_out + K_SORT,
                        (n_l + n_r) * ROW_BYTES, // sort runs for both inputs
                        props,
                    )
                }
                JoinAlgo::NestedLoop => (C_NL * n_l * n_r + n_out, NL_BUFFER, PhysicalProps::NONE),
            };
            for &dop in &self.config.dops {
                self.costing_effort();
                out.push((
                    Operator::join(algo, dop),
                    self.join_cost(&left.cost, &right.cost, work, op_mem, dop),
                    props,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moqo_query::testkit;

    fn inputs(spec: &QuerySpec, model: &StandardCostModel) -> (PlanInput, PlanInput) {
        let l = model.scan_alternatives(spec, 0).remove(0);
        let r = model.scan_alternatives(spec, 1).remove(0);
        (
            PlanInput {
                tables: TableSet::singleton(0),
                cost: l.1,
                props: l.2,
            },
            PlanInput {
                tables: TableSet::singleton(1),
                cost: r.1,
                props: r.2,
            },
        )
    }

    #[test]
    fn scan_alternatives_include_sampling_for_large_tables() {
        let spec = testkit::chain_query(2, 1_000_000);
        let model = StandardCostModel::paper_metrics();
        let alts = model.scan_alternatives(&spec, 0);
        assert!(alts.len() > 1, "large table should offer sampled scans");
        // Full scan has zero error; sampled scans have positive error and
        // lower time.
        let metrics = model.metrics();
        let full = &alts[0];
        assert_eq!(metrics.get(&full.1, Metric::Error), Some(0.0));
        for alt in &alts[1..] {
            let t_full = metrics.get(&full.1, Metric::Time).unwrap();
            let t_alt = metrics.get(&alt.1, Metric::Time).unwrap();
            let e_alt = metrics.get(&alt.1, Metric::Error).unwrap();
            assert!(t_alt < t_full);
            assert!(e_alt > 0.0 && e_alt < 1.0);
        }
    }

    #[test]
    fn small_tables_offer_no_sampling() {
        let spec = testkit::chain_query(2, 100); // tiny tables
        let model = StandardCostModel::paper_metrics();
        assert_eq!(model.scan_alternatives(&spec, 0).len(), 1);
    }

    #[test]
    fn sampling_strategy_count_grows_with_table_size() {
        let model = StandardCostModel::paper_metrics();
        let small = model.sampling_rates_for(10_000.0).len();
        let large = model.sampling_rates_for(10_000_000.0).len();
        assert!(small >= 1);
        assert!(
            large > small,
            "footnote-4 behaviour: more strategies for bigger tables"
        );
    }

    #[test]
    fn join_alternatives_cover_algos_and_dops() {
        let spec = testkit::chain_query(2, 100_000);
        let model = StandardCostModel::paper_metrics();
        let (l, r) = inputs(&spec, &model);
        let alts = model.join_alternatives(&spec, &l, &r);
        assert_eq!(alts.len(), JoinAlgo::ALL.len() * model.config().dops.len());
    }

    #[test]
    fn parallel_joins_trade_cores_for_time() {
        let spec = testkit::chain_query(2, 1_000_000);
        let model = StandardCostModel::paper_metrics();
        let (l, r) = inputs(&spec, &model);
        let alts = model.join_alternatives(&spec, &l, &r);
        let metrics = model.metrics();
        let hash1 = alts
            .iter()
            .find(|(op, _, _)| {
                matches!(
                    op,
                    Operator::Join {
                        algo: JoinAlgo::Hash,
                        dop: 1
                    }
                )
            })
            .unwrap();
        let hash8 = alts
            .iter()
            .find(|(op, _, _)| {
                matches!(
                    op,
                    Operator::Join {
                        algo: JoinAlgo::Hash,
                        dop: 8
                    }
                )
            })
            .unwrap();
        assert!(
            metrics.get(&hash8.1, Metric::Time) < metrics.get(&hash1.1, Metric::Time),
            "more cores must reduce time"
        );
        assert!(
            metrics.get(&hash8.1, Metric::Cores) > metrics.get(&hash1.1, Metric::Cores),
            "more cores must increase the core reservation"
        );
    }

    #[test]
    fn sort_merge_produces_interesting_order_and_reuses_it() {
        let spec = testkit::chain_query(2, 100_000);
        let model = StandardCostModel::paper_metrics();
        let (l, r) = inputs(&spec, &model);
        let alts = model.join_alternatives(&spec, &l, &r);
        let smj = alts
            .iter()
            .find(|(op, _, _)| {
                matches!(
                    op,
                    Operator::Join {
                        algo: JoinAlgo::SortMerge,
                        dop: 1
                    }
                )
            })
            .unwrap();
        let key = smj.2.order.expect("SMJ output must be sorted");
        // Feed a pre-sorted left child: the SMJ gets cheaper.
        let sorted_left = PlanInput {
            props: PhysicalProps::sorted(key),
            ..l
        };
        let alts2 = model.join_alternatives(&spec, &sorted_left, &r);
        let smj2 = alts2
            .iter()
            .find(|(op, _, _)| {
                matches!(
                    op,
                    Operator::Join {
                        algo: JoinAlgo::SortMerge,
                        dop: 1
                    }
                )
            })
            .unwrap();
        let metrics = model.metrics();
        assert!(
            metrics.get(&smj2.1, Metric::Time) < metrics.get(&smj.1, Metric::Time),
            "pre-sorted input must make sort-merge cheaper"
        );
    }

    #[test]
    fn monotone_cost_aggregation() {
        // Section 5.1 assumption: a join costs at least as much as each
        // child on every metric.
        let spec = testkit::chain_query(2, 500_000);
        let model = StandardCostModel::paper_metrics();
        let (l, r) = inputs(&spec, &model);
        for (_, cost, _) in model.join_alternatives(&spec, &l, &r) {
            for i in 0..model.dim() {
                assert!(
                    cost[i] >= l.cost[i] - 1e-12 && cost[i] >= r.cost[i] - 1e-12,
                    "metric {i} not monotone: {cost:?} vs children"
                );
            }
        }
    }

    #[test]
    fn error_metric_uses_probabilistic_sum() {
        let spec = testkit::chain_query(2, 1_000_000);
        let model = StandardCostModel::paper_metrics();
        let metrics = model.metrics();
        let err_pos = metrics.position(Metric::Error).unwrap();
        let mut l = model.scan_alternatives(&spec, 0).remove(1); // sampled
        let mut r = model.scan_alternatives(&spec, 1).remove(1); // sampled
        let (el, er) = (l.1[err_pos], r.1[err_pos]);
        let li = PlanInput {
            tables: TableSet::singleton(0),
            cost: std::mem::replace(&mut l.1, CostVector::zeros(3)),
            props: l.2,
        };
        let ri = PlanInput {
            tables: TableSet::singleton(1),
            cost: std::mem::replace(&mut r.1, CostVector::zeros(3)),
            props: r.2,
        };
        let alts = model.join_alternatives(&spec, &li, &ri);
        for (_, cost, _) in alts {
            assert!((cost[err_pos] - prob_sum(el, er)).abs() < 1e-12);
        }
    }

    #[test]
    fn cloud_metrics_trade_fees_for_time() {
        let spec = testkit::chain_query(2, 1_000_000);
        let model = StandardCostModel::cloud_metrics();
        let metrics = model.metrics();
        let (l, r) = inputs(&spec, &model);
        let alts = model.join_alternatives(&spec, &l, &r);
        let h1 = alts
            .iter()
            .find(|(op, _, _)| {
                matches!(
                    op,
                    Operator::Join {
                        algo: JoinAlgo::Hash,
                        dop: 1
                    }
                )
            })
            .unwrap();
        let h8 = alts
            .iter()
            .find(|(op, _, _)| {
                matches!(
                    op,
                    Operator::Join {
                        algo: JoinAlgo::Hash,
                        dop: 8
                    }
                )
            })
            .unwrap();
        assert!(metrics.get(&h8.1, Metric::Time) < metrics.get(&h1.1, Metric::Time));
        assert!(
            metrics.get(&h8.1, Metric::Fees) > metrics.get(&h1.1, Metric::Fees),
            "parallel speedup is sub-linear, so fees (core-seconds) grow with dop"
        );
    }

    #[test]
    fn nested_loop_wins_on_tiny_inputs_hash_on_large() {
        let model = StandardCostModel::paper_metrics();
        let metrics = model.metrics();
        let pick_best = |spec: &QuerySpec| {
            let (l, r) = inputs(spec, &model);
            let alts = model.join_alternatives(spec, &l, &r);
            alts.into_iter()
                .filter(|(op, _, _)| matches!(op, Operator::Join { dop: 1, .. }))
                .min_by(|a, b| {
                    metrics
                        .get(&a.1, Metric::Time)
                        .partial_cmp(&metrics.get(&b.1, Metric::Time))
                        .unwrap()
                })
                .unwrap()
        };
        let tiny = testkit::chain_query(2, 20);
        let (op, _, _) = pick_best(&tiny);
        assert!(matches!(
            op,
            Operator::Join {
                algo: JoinAlgo::NestedLoop,
                ..
            }
        ));
        let big = testkit::chain_query(2, 1_000_000);
        let (op, _, _) = pick_best(&big);
        assert!(matches!(
            op,
            Operator::Join {
                algo: JoinAlgo::Hash,
                ..
            }
        ));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use moqo_query::testkit;
    use proptest::prelude::*;

    proptest! {
        /// PONO end-to-end on the standard model: inflating both child cost
        /// vectors by factors <= alpha inflates every join alternative's
        /// cost by at most alpha.
        #[test]
        fn join_costs_satisfy_pono(
            card_exp in 3.0f64..6.0,
            alpha in 1.0f64..2.0,
            fl in 0.0f64..1.0,
            fr in 0.0f64..1.0,
        ) {
            let spec = testkit::chain_query(2, 10f64.powf(card_exp) as u64);
            let model = StandardCostModel::paper_metrics();
            let l0 = model.scan_alternatives(&spec, 0).remove(0);
            let r0 = model.scan_alternatives(&spec, 1).remove(0);
            let al = 1.0 + fl * (alpha - 1.0);
            let ar = 1.0 + fr * (alpha - 1.0);
            let mk = |tables, cost, props| PlanInput { tables, cost, props };
            let base_l = mk(TableSet::singleton(0), l0.1, l0.2);
            let base_r = mk(TableSet::singleton(1), r0.1, r0.2);
            // Clamp inflated error back into [0,1] (a valid cost vector).
            let err_pos = model.metrics().position(Metric::Error).unwrap();
            let clamp = |c: CostVector| {
                CostVector::from_fn(c.dim(), |i| if i == err_pos { c[i].min(1.0) } else { c[i] })
            };
            let infl_l = mk(TableSet::singleton(0), clamp(l0.1.scaled(al)), l0.2);
            let infl_r = mk(TableSet::singleton(1), clamp(r0.1.scaled(ar)), r0.2);
            let base = model.join_alternatives(&spec, &base_l, &base_r);
            let infl = model.join_alternatives(&spec, &infl_l, &infl_r);
            for ((_, cb, _), (_, ci, _)) in base.iter().zip(&infl) {
                for k in 0..model.dim() {
                    prop_assert!(
                        ci[k] <= alpha * cb[k] + 1e-9,
                        "metric {} violates PONO: {} > {} * {}", k, ci[k], alpha, cb[k]
                    );
                }
            }
        }

        /// Scan costs scale monotonically with sampling fraction.
        #[test]
        fn sampled_scans_monotone_in_rate(card_exp in 4.0f64..7.0) {
            let spec = testkit::chain_query(2, 10f64.powf(card_exp) as u64);
            let model = StandardCostModel::paper_metrics();
            let alts = model.scan_alternatives(&spec, 0);
            let metrics = model.metrics();
            // Sort by sampling fraction ascending; time must ascend, error descend.
            let mut sampled: Vec<_> = alts
                .iter()
                .filter_map(|(op, c, _)| match op {
                    Operator::Scan { method: ScanMethod::Sampled { rate_pm }, .. } =>
                        Some((*rate_pm, *c)),
                    _ => None,
                })
                .collect();
            sampled.sort_by_key(|(r, _)| *r);
            for w in sampled.windows(2) {
                prop_assert!(metrics.get(&w[0].1, Metric::Time)
                    <= metrics.get(&w[1].1, Metric::Time));
                prop_assert!(metrics.get(&w[0].1, Metric::Error)
                    >= metrics.get(&w[1].1, Metric::Error));
            }
        }
    }
}
