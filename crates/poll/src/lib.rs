//! The readiness reactor behind the serving front.
//!
//! [`Reactor`] wraps the vendored [`polling`] shim with the two pieces
//! an event loop actually wants on top of raw `epoll`/`poll(2)`:
//!
//! * **Registration bookkeeping** — the reactor remembers each token's
//!   fd and current [`Interest`], so callers flip interest with
//!   [`set_interest`](Reactor::set_interest) and the reactor skips the
//!   syscall when nothing changed (the common case: a connection that
//!   stays read-only between flushes).
//! * **A wake channel** — [`WakeHandle`] is a cheap, cloneable,
//!   thread-safe doorbell. Engine worker threads ring it when a
//!   session publishes an event; the blocked [`poll`](Reactor::poll)
//!   returns with `woken = true`. An atomic latch collapses bursts of
//!   wakes into one pipe write, so a hot engine does not turn the
//!   self-pipe into a syscall treadmill.
//!
//! The wake pipe occupies the reserved [`WAKE_TOKEN`]; user
//! registrations must use other tokens. Both backends are
//! level-triggered — see the [`polling`] crate docs for the contract.

use std::collections::HashMap;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub use polling::{
    raise_nofile_limit, set_nonblocking, set_recv_buffer, set_send_buffer, Backend, Event, Events,
    Interest, Token,
};

/// The token the reactor's internal wake pipe is registered under.
/// [`Reactor::poll`] consumes it (reporting `woken = true`), but it
/// still appears in the event buffer — event loops matching on tokens
/// should ignore it.
pub const WAKE_TOKEN: Token = Token(usize::MAX);

#[derive(Clone, Copy, Debug)]
struct Registration {
    fd: RawFd,
    interest: Interest,
}

/// Readiness selector + wake channel; see the module docs.
pub struct Reactor {
    poll: polling::Poll,
    waker: Arc<polling::Waker>,
    wake_pending: Arc<AtomicBool>,
    registrations: Mutex<HashMap<usize, Registration>>,
}

impl Reactor {
    /// Creates a reactor on the platform-default backend (epoll on
    /// Linux, `poll(2)` elsewhere; `MOQO_POLL_BACKEND` overrides).
    pub fn new() -> io::Result<Reactor> {
        Self::build(polling::Poll::new()?)
    }

    /// Creates a reactor on an explicit backend (tests cross-check the
    /// two implementations against each other).
    pub fn with_backend(backend: Backend) -> io::Result<Reactor> {
        Self::build(polling::Poll::with_backend(backend)?)
    }

    fn build(poll: polling::Poll) -> io::Result<Reactor> {
        let waker = Arc::new(polling::Waker::new(&poll, WAKE_TOKEN)?);
        Ok(Reactor {
            poll,
            waker,
            wake_pending: Arc::new(AtomicBool::new(false)),
            registrations: Mutex::new(HashMap::new()),
        })
    }

    /// The backend this reactor runs on.
    pub fn backend(&self) -> Backend {
        self.poll.backend()
    }

    /// Starts watching `source` under `token`. Fails on the reserved
    /// [`WAKE_TOKEN`] and on token reuse — each live registration needs
    /// a distinct token because the bookkeeping (and every [`Event`])
    /// is keyed by it.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        if token == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token reserved for the reactor wake channel",
            ));
        }
        let fd = source.as_raw_fd();
        let mut regs = self.registrations.lock().unwrap();
        if regs.contains_key(&token.0) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "token already registered",
            ));
        }
        self.poll.register(fd, token, interest)?;
        regs.insert(token.0, Registration { fd, interest });
        Ok(())
    }

    /// Sets the interest of an existing registration, skipping the
    /// syscall when the interest is unchanged. Returns whether a
    /// kernel-level update actually happened.
    pub fn set_interest(&self, token: Token, interest: Interest) -> io::Result<bool> {
        let mut regs = self.registrations.lock().unwrap();
        let reg = regs
            .get_mut(&token.0)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "token not registered"))?;
        if reg.interest == interest {
            return Ok(false);
        }
        self.poll.reregister(reg.fd, token, interest)?;
        reg.interest = interest;
        Ok(true)
    }

    /// The interest a token is currently registered with.
    pub fn interest_of(&self, token: Token) -> Option<Interest> {
        self.registrations
            .lock()
            .unwrap()
            .get(&token.0)
            .map(|r| r.interest)
    }

    /// Stops watching the registration behind `token`. Call before
    /// closing the fd.
    pub fn deregister(&self, token: Token) -> io::Result<()> {
        let mut regs = self.registrations.lock().unwrap();
        let reg = regs
            .remove(&token.0)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "token not registered"))?;
        self.poll.deregister(reg.fd)
    }

    /// Number of live registrations (the wake pipe excluded).
    pub fn registered(&self) -> usize {
        self.registrations.lock().unwrap().len()
    }

    /// A cloneable doorbell for waking a blocked [`poll`](Reactor::poll)
    /// from any thread.
    pub fn wake_handle(&self) -> WakeHandle {
        WakeHandle {
            waker: self.waker.clone(),
            pending: self.wake_pending.clone(),
        }
    }

    /// Blocks until a registration is ready, a [`WakeHandle`] rings, or
    /// the timeout elapses. Returns `true` when a wake was consumed
    /// (the wake pipe is drained and the latch reset before returning,
    /// so the caller processes its wake-queue exactly once per ring
    /// burst). `None` blocks indefinitely — safe, because shutdown
    /// rings the doorbell too.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<bool> {
        self.poll.poll(events, timeout)?;
        let woken = events.iter().any(|e| e.token() == WAKE_TOKEN);
        if woken {
            // Reset the latch *before* draining: a wake that lands in
            // between sets the latch and writes a fresh byte, so the
            // next poll still returns promptly.
            self.wake_pending.store(false, Ordering::SeqCst);
            self.waker.clear();
        }
        Ok(woken)
    }
}

/// Cheap cross-thread doorbell for one [`Reactor`]; clone freely.
#[derive(Clone)]
pub struct WakeHandle {
    waker: Arc<polling::Waker>,
    pending: Arc<AtomicBool>,
}

impl WakeHandle {
    /// Rings the doorbell. Bursts collapse: only the first ring after a
    /// poll pays the pipe-write syscall, the rest flip an atomic.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            // A failed write leaves the latch set; the reactor's next
            // timeout still observes the queue, so degrade silently
            // rather than panic a worker thread.
            let _ = self.waker.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        if cfg!(target_os = "linux") {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn bookkeeping_tracks_interest_and_skips_redundant_updates() {
        for backend in backends() {
            let reactor = Reactor::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();

            reactor
                .register(&server, Token(3), Interest::READABLE)
                .unwrap();
            assert_eq!(reactor.registered(), 1);
            assert_eq!(reactor.interest_of(Token(3)), Some(Interest::READABLE));
            // Unchanged interest: no syscall.
            assert!(!reactor.set_interest(Token(3), Interest::READABLE).unwrap());
            // Changed: syscall happens and the bookkeeping follows.
            assert!(reactor
                .set_interest(Token(3), Interest::READABLE | Interest::WRITABLE)
                .unwrap());
            assert_eq!(
                reactor.interest_of(Token(3)),
                Some(Interest::READABLE | Interest::WRITABLE)
            );

            // Token reuse and the reserved token are rejected.
            assert!(reactor
                .register(&client, Token(3), Interest::READABLE)
                .is_err());
            assert!(reactor
                .register(&client, WAKE_TOKEN, Interest::READABLE)
                .is_err());

            reactor.deregister(Token(3)).unwrap();
            assert_eq!(reactor.registered(), 0);
            assert!(reactor.set_interest(Token(3), Interest::READABLE).is_err());
        }
    }

    #[test]
    fn wake_handle_unblocks_poll_and_resets() {
        for backend in backends() {
            let reactor = Reactor::with_backend(backend).unwrap();
            let handle = reactor.wake_handle();
            let ringer = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                // A burst of rings collapses into one wake.
                for _ in 0..10 {
                    handle.wake();
                }
            });
            let mut events = Events::new();
            let start = Instant::now();
            let woken = reactor
                .poll(&mut events, Some(Duration::from_secs(10)))
                .unwrap();
            assert!(woken, "{backend:?}");
            assert!(start.elapsed() < Duration::from_secs(5), "{backend:?}");
            ringer.join().unwrap();
            // A burst straddling the latch reset may leave one residual
            // wake; once drained, polls time out quietly.
            while reactor
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap()
            {}
            let woken = reactor
                .poll(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(!woken, "{backend:?}");
            // And the latch re-arms for the next ring.
            reactor.wake_handle().wake();
            let woken = reactor
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(woken, "{backend:?}");
        }
    }

    #[test]
    fn socket_readiness_flows_through_the_reactor() {
        for backend in backends() {
            let reactor = Reactor::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            reactor
                .register(&server, Token(11), Interest::READABLE)
                .unwrap();
            client.write_all(b"x").unwrap();
            let mut events = Events::new();
            let woken = reactor
                .poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(!woken, "{backend:?}");
            assert!(
                events
                    .iter()
                    .any(|e| e.token() == Token(11) && e.is_readable()),
                "{backend:?}"
            );
        }
    }
}
