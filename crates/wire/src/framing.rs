//! Connection plumbing: handshake, length-prefixed frames, and the
//! incremental frame reassembler.

use moqo_core::{ProtocolError, WireError};
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes opening every wire connection, in both directions.
pub const WIRE_MAGIC: [u8; 8] = *b"MOQOWIRE";

/// Current wire protocol version. Bumped whenever the frame layout or any
/// message codec changes incompatibly. Version 2 added the `coalesced`
/// epoch-range counter to the `SessionEvent` codec.
pub const WIRE_VERSION: u32 = 2;

/// Bytes of one handshake hello: magic plus little-endian version.
pub const HELLO_LEN: usize = WIRE_MAGIC.len() + 4;

/// Hard cap on one frame's payload length. A length prefix beyond this is
/// treated as corruption (or hostility) and the connection is dropped —
/// real payloads are orders of magnitude smaller, and the cap keeps a
/// flipped length byte from triggering a gigabyte allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Why a connection-level operation failed.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(io::Error),
    /// A frame payload failed to decode.
    Wire(WireError),
    /// The peer answered a typed protocol error.
    Protocol(ProtocolError),
    /// The peer's hello does not start with [`WIRE_MAGIC`].
    BadMagic,
    /// The peer speaks an unsupported wire version.
    UnsupportedVersion(u32),
    /// A frame length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(u64),
    /// The connection closed mid-stream (before the session finished).
    Disconnected,
    /// The peer sent a frame that is invalid in the current connection
    /// state (e.g. an event before the admission response).
    UnexpectedFrame(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Wire(e) => write!(f, "wire error: {e}"),
            NetError::Protocol(e) => write!(f, "protocol error: {e}"),
            NetError::BadMagic => write!(f, "peer did not send the MOQOWIRE magic"),
            NetError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "peer speaks wire version {v}, this build speaks {WIRE_VERSION}"
                )
            }
            NetError::FrameTooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            NetError::Disconnected => write!(f, "connection closed mid-stream"),
            NetError::UnexpectedFrame(what) => write!(f, "unexpected frame: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<ProtocolError> for NetError {
    fn from(e: ProtocolError) -> Self {
        NetError::Protocol(e)
    }
}

/// The hello either side sends on connect: magic plus version.
pub fn client_hello() -> [u8; HELLO_LEN] {
    let mut hello = [0u8; HELLO_LEN];
    hello[..8].copy_from_slice(&WIRE_MAGIC);
    hello[8..].copy_from_slice(&WIRE_VERSION.to_le_bytes());
    hello
}

/// Validates a received hello (magic first, then version, so a stray
/// connection from some other protocol reads as [`NetError::BadMagic`],
/// not a bogus version number).
pub fn check_hello(hello: &[u8; HELLO_LEN]) -> Result<(), NetError> {
    if hello[..8] != WIRE_MAGIC {
        return Err(NetError::BadMagic);
    }
    let version = u32::from_le_bytes(hello[8..].try_into().unwrap());
    if version != WIRE_VERSION {
        return Err(NetError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Writes one frame (length prefix + payload) to a blocking writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME, "oversized frame authored");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one complete frame from a blocking reader.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, NetError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(NetError::FrameTooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Incremental frame reassembly for nonblocking reads: feed raw bytes in
/// with [`FrameBuffer::extend`], take complete frames (and the raw
/// handshake prefix) out.
#[derive(Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix; compacted lazily so steady-state pumping does not
    /// memmove the buffer once per frame.
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Takes exactly `n` raw bytes (the unframed handshake), if buffered.
    pub fn take_raw(&mut self, n: usize) -> Option<Vec<u8>> {
        if self.pending().len() < n {
            return None;
        }
        let out = self.pending()[..n].to_vec();
        self.start += n;
        Some(out)
    }

    /// Takes the next complete frame payload, if one is buffered.
    /// `Ok(None)` means "need more bytes"; an oversized length prefix is
    /// a connection-fatal [`NetError::FrameTooLarge`].
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let pending = self.pending();
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(pending[..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(NetError::FrameTooLarge(len as u64));
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = pending[4..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.pending().len()
    }
}

/// Outbound counterpart of [`FrameBuffer`] for nonblocking writes: queue
/// frames (and raw handshake bytes) in, flush as much as the socket
/// accepts out, keep the rest for the next write-readiness event.
#[derive(Default)]
pub struct WriteBuffer {
    buf: Vec<u8>,
    /// Flushed prefix; compacted lazily, mirroring [`FrameBuffer`].
    start: usize,
}

impl WriteBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues raw bytes (the unframed handshake hello).
    pub fn push_raw(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Queues one frame (length prefix + payload).
    pub fn push_frame(&mut self, payload: &[u8]) {
        debug_assert!(payload.len() <= MAX_FRAME, "oversized frame authored");
        self.compact();
        self.buf.reserve(4 + payload.len());
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(payload);
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Writes queued bytes until the socket stops accepting them.
    /// `Ok(true)` means fully drained; `Ok(false)` means the peer's
    /// buffers are full (`WouldBlock`) and bytes remain — re-flush on
    /// the next write-readiness event. Any other error is
    /// connection-fatal.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while self.start < self.buf.len() {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepted zero bytes",
                    ))
                }
                Ok(n) => self.start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.start = 0;
        Ok(true)
    }

    /// Bytes queued but not yet accepted by the socket.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when nothing is waiting to be flushed.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips_and_rejects_skew() {
        let hello = client_hello();
        assert!(check_hello(&hello).is_ok());
        let mut bad_magic = hello;
        bad_magic[0] ^= 0xff;
        assert!(matches!(check_hello(&bad_magic), Err(NetError::BadMagic)));
        let mut bad_version = hello;
        bad_version[8] = 99;
        assert!(matches!(
            check_hello(&bad_version),
            Err(NetError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn frames_round_trip_through_a_byte_pipe() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, b"hello").unwrap();
        write_frame(&mut pipe, b"").unwrap();
        write_frame(&mut pipe, &[7u8; 300]).unwrap();
        let mut r = pipe.as_slice();
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![7u8; 300]);
        assert!(matches!(
            read_frame(&mut r),
            Err(NetError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn frame_buffer_reassembles_byte_by_byte() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"alpha").unwrap();
        write_frame(&mut stream, b"beta").unwrap();
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        for &b in &stream {
            fb.extend(&[b]);
            while let Some(frame) = fb.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn write_buffer_survives_partial_writes_and_wouldblock() {
        // A writer that accepts a few bytes at a time and periodically
        // reports WouldBlock — the worst-case slow reader.
        struct Throttled {
            accepted: Vec<u8>,
            budget: usize,
        }
        impl Write for Throttled {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = self.budget.min(buf.len()).min(3);
                self.accepted.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut wb = WriteBuffer::new();
        wb.push_raw(b"HI");
        wb.push_frame(b"alpha");
        wb.push_frame(&[9u8; 40]);
        let total = wb.pending();
        assert_eq!(total, 2 + 4 + 5 + 4 + 40);

        let mut sink = Throttled {
            accepted: Vec::new(),
            budget: 0,
        };
        let mut rounds = 0;
        loop {
            assert!(rounds < 100, "flush failed to make progress");
            rounds += 1;
            if wb.flush_to(&mut sink).unwrap() {
                break;
            }
            assert!(!wb.is_empty());
            sink.budget = 7; // the "socket" drained a little
        }
        assert!(wb.is_empty());
        // The byte stream reassembles exactly: raw prefix, then frames.
        assert_eq!(&sink.accepted[..2], b"HI");
        let mut fb = FrameBuffer::new();
        fb.extend(&sink.accepted[2..]);
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"alpha");
        assert_eq!(fb.next_frame().unwrap().unwrap(), vec![9u8; 40]);
        assert_eq!(fb.buffered(), 0);
        // Queueing after a drain keeps working (compaction path).
        wb.push_frame(b"tail");
        let mut open = Throttled {
            accepted: Vec::new(),
            budget: usize::MAX,
        };
        assert!(wb.flush_to(&mut open).unwrap());
        let mut fb = FrameBuffer::new();
        fb.extend(&open.accepted);
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"tail");
    }

    #[test]
    fn hostile_length_prefix_is_fatal_not_an_allocation() {
        let mut fb = FrameBuffer::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(fb.next_frame(), Err(NetError::FrameTooLarge(_))));
        let mut r: &[u8] = &u32::MAX.to_le_bytes();
        assert!(matches!(
            read_frame(&mut r),
            Err(NetError::FrameTooLarge(_))
        ));
    }
}
