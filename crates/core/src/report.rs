//! Per-invocation reports.

use std::time::Duration;

/// What one `Optimize` invocation did — the quantities plotted in the
/// paper's Figures 2–5 (invocation time) plus the incrementality counters.
#[derive(Clone, Debug, PartialEq)]
pub struct InvocationReport {
    /// Invocation number (0-based).
    pub invocation: u32,
    /// Resolution level used.
    pub resolution: usize,
    /// Pruning precision factor `alpha_r` used.
    pub alpha: f64,
    /// Wall-clock time of the invocation.
    pub duration: Duration,
    /// Completed query plans in `Res^Q[0..b, 0..r]` after the invocation
    /// (what `Visualize` would show).
    pub frontier_size: usize,
    /// Plans constructed during this invocation.
    pub plans_generated: u64,
    /// Candidate entries drained and re-pruned during this invocation.
    pub candidates_retrieved: u64,
    /// Ordered sub-plan pairs combined during this invocation.
    pub pairs_generated: u64,
    /// Result-set insertions during this invocation.
    pub result_insertions: u64,
    /// Candidate-set insertions during this invocation.
    pub candidate_insertions: u64,
    /// Enumerated subsets visited in phase 2.
    pub subsets_visited: u64,
    /// Splits whose pair loop ran during this invocation.
    pub splits_visited: u64,
    /// Splits settled without touching a single entry (empty operand,
    /// full watermark rectangle, or empty Δ).
    pub splits_skipped: u64,
    /// Whether Δ-set filtering was applicable (monotone invocation series).
    pub used_delta: bool,
}

impl InvocationReport {
    /// Seconds of wall-clock time (convenience for reports and CSV).
    pub fn seconds(&self) -> f64 {
        self.duration.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_converts_duration() {
        let r = InvocationReport {
            invocation: 0,
            resolution: 0,
            alpha: 1.1,
            duration: Duration::from_millis(1500),
            frontier_size: 0,
            plans_generated: 0,
            candidates_retrieved: 0,
            pairs_generated: 0,
            result_insertions: 0,
            candidate_insertions: 0,
            subsets_visited: 0,
            splits_visited: 0,
            splits_skipped: 0,
            used_delta: false,
        };
        assert!((r.seconds() - 1.5).abs() < 1e-9);
    }
}
