//! Instrumentation counters for the incremental invariants (Lemmas 5–7).

use moqo_index::FxHashMap;
use moqo_plan::Operator;

/// Aggregate and (optionally) per-plan counters maintained by the
/// optimizer. The per-plan maps are only filled when
/// [`crate::IamaConfig::track_invariants`] is set.
#[derive(Clone, Debug, Default)]
pub struct OptimizerStats {
    /// Completed `Optimize` invocations.
    pub invocations: u32,
    /// Plans ever constructed (scan + join alternatives).
    pub plans_generated: u64,
    /// Ordered sub-plan pairs combined in `Fresh`.
    pub pairs_generated: u64,
    /// Candidate entries retrieved (drained) in phase 1.
    pub candidate_retrievals: u64,
    /// Cost-vector comparisons performed during pruning. The batched
    /// kernels charge whole lane blocks (that is what they evaluate),
    /// so with `use_batch_kernels` this can exceed the scalar count by
    /// up to one block per early exit.
    pub prune_comparisons: u64,
    /// Wall-clock nanoseconds spent in the pruning witness search.
    /// Accumulated only when [`crate::IamaConfig::time_pruning`] is set;
    /// otherwise stays 0.
    pub prune_nanos: u64,
    /// Insertions into result sets.
    pub result_insertions: u64,
    /// Insertions into candidate sets.
    pub candidate_insertions: u64,
    /// Candidates discarded at the maximal resolution.
    pub candidates_discarded: u64,
    /// Pairs skipped by the `IsFresh` hash fallback (combined during an
    /// earlier churn epoch and not yet covered by a watermark rectangle).
    pub stale_pairs_skipped: u64,
    /// Pairs skipped positionally by a split's watermark rectangle during
    /// a full (non-Δ) recombine — the hash-free fast path for Lemma 6.
    pub pairs_skipped_watermark: u64,
    /// Invocations that could use Δ-set filtering in `Fresh`.
    pub delta_invocations: u32,
    /// Enumerated subsets visited in phase 2 (those owning at least one
    /// valid split; singletons and irrelevant subsets are never walked).
    pub subsets_visited: u64,
    /// Splits whose operand pair loop actually ran.
    pub splits_visited: u64,
    /// Splits settled without touching a single entry: empty operand,
    /// watermark rectangle covering the whole cross product, or the
    /// empty-Δ short-circuit.
    pub splits_skipped: u64,
    /// High-water mark of the reusable per-subset operand buffers (left
    /// plus right view of the largest combination), the peak transient
    /// footprint of phase 2.
    pub scratch_high_water: usize,

    /// Per-plan-signature generation counts (Lemma 5), keyed by
    /// `(operator, left child, right child)`. Tracked only on demand.
    pub plan_generations: FxHashMap<(Operator, u32, u32), u32>,
    /// Per-ordered-pair generation counts (Lemma 6). Tracked only on
    /// demand; `IsFresh` should keep every count at 1.
    pub pair_generations: FxHashMap<(u32, u32), u32>,
    /// Per-plan candidate retrieval counts (Lemma 7).
    pub candidate_retrieval_counts: FxHashMap<u32, u32>,
}

impl OptimizerStats {
    /// The maximum number of times any single plan signature was
    /// generated. Lemma 5 requires this to be at most 1.
    pub fn max_plan_generations(&self) -> u32 {
        self.plan_generations.values().copied().max().unwrap_or(0)
    }

    /// The maximum number of times any ordered sub-plan pair was
    /// generated. Lemma 6 requires this to be at most 1.
    pub fn max_pair_generations(&self) -> u32 {
        self.pair_generations.values().copied().max().unwrap_or(0)
    }

    /// The maximum number of times any plan was retrieved from a
    /// candidate set. Lemma 7 requires this to be at most `rM + 1`.
    pub fn max_candidate_retrievals(&self) -> u32 {
        self.candidate_retrieval_counts
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxima_over_empty_maps_are_zero() {
        let s = OptimizerStats::default();
        assert_eq!(s.max_plan_generations(), 0);
        assert_eq!(s.max_pair_generations(), 0);
        assert_eq!(s.max_candidate_retrievals(), 0);
    }

    #[test]
    fn maxima_pick_the_largest_count() {
        let mut s = OptimizerStats::default();
        s.pair_generations.insert((1, 2), 1);
        s.pair_generations.insert((3, 4), 5);
        assert_eq!(s.max_pair_generations(), 5);
        s.candidate_retrieval_counts.insert(9, 3);
        assert_eq!(s.max_candidate_retrievals(), 3);
    }
}
