//! The non-blocking client surface.
//!
//! [`MoqoServer`] composes the sharded engine with admission control
//! behind a ticket API, speaking the
//! [session protocol](moqo_core::protocol) end to end:
//! [`MoqoServer::submit`] takes a [`SessionRequest`] and never blocks on
//! optimizer progress — it returns a [`Ticket`] plus the protocol-level
//! [`AdmissionResponse`] (admitted / degraded / queued / rejected), and
//! everything that happens afterwards arrives over the ticket's **own**
//! channel as delta-streamed [`SessionEvent`]s. Callers either
//! [`MoqoServer::poll`] (non-blocking: drains buffered events into the
//! ticket's reassembled [`SessionView`]) or [`MoqoServer::recv`] (block
//! on the ticket channel with a timeout for the next event); no caller
//! ever parks on the engine's internal condvar, so a slow or abandoned
//! client cannot interfere with scheduling — and the full frontier is
//! shipped at most once per stream, deltas after that.
//!
//! Queued submissions (under [`AdmissionPolicy::Queue`]) admit lazily:
//! every API interaction pumps the pending queue against freed capacity,
//! so a server with *any* traffic drains its queue without a background
//! thread; an idle server drains it on the next call.
//!
//! [`AdmissionPolicy::Queue`]: crate::AdmissionPolicy::Queue

use crate::admission::{Admission, AdmissionConfig, AdmissionController};
use crate::shard::{GlobalSessionId, RouteDecision, ShardConfig, ShardedEngine};
use moqo_core::protocol::{
    AdmissionResponse, ProtocolError, SessionCommand, SessionEvent, SessionRequest, SessionView,
};
use moqo_cost::ResolutionSchedule;
use moqo_costmodel::SharedCostModel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// Serving-front configuration: sharding plus admission.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Shard count, per-shard engine tunables, rebalance headroom.
    pub shard: ShardConfig,
    /// Admission bound and overload policy.
    pub admission: AdmissionConfig,
    /// Closed (finished or rejected) tickets kept queryable; the oldest
    /// beyond this many are dropped so a long-lived server's ticket
    /// table tracks live load, not total traffic (mirrors
    /// [`moqo_engine::EngineConfig::retired_capacity`]).
    pub retired_tickets: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shard: ShardConfig::default(),
            admission: AdmissionConfig::default(),
            retired_tickets: 1024,
        }
    }
}

/// Handle to one submission. Cheap and copyable; rejected and finished
/// tickets stay queryable until [`ServeConfig::retired_tickets`] younger
/// tickets have closed after them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

impl Ticket {
    /// The raw ticket id — what the network front's admission frame
    /// carries so a remote client can be correlated with server state.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a ticket from a raw id (diagnostics and the network
    /// front's client side). An id the server never issued simply
    /// resolves to no ticket on every API call.
    pub fn from_u64(id: u64) -> Self {
        Ticket(id)
    }
}

/// Everything a caller can learn about a ticket without blocking.
#[derive(Clone, Debug)]
pub enum TicketStatus {
    /// Waiting in the bounded admission queue.
    Queued {
        /// Submissions currently queued (including this one).
        pending: usize,
    },
    /// Turned away by admission control.
    Rejected(moqo_core::RejectReason),
    /// Admitted; the view is reassembled purely from the ticket's event
    /// stream (and carries `outcome` once the session ends).
    Active {
        /// Where the session runs.
        session: GlobalSessionId,
        /// How the router placed it.
        route: RouteDecision,
        /// True if admitted under a degraded resolution ladder.
        degraded: bool,
        /// True if the session resumed a parked warm frontier.
        warm_start: bool,
        /// The delta-reassembled session state (updated by `poll`/`recv`).
        view: Box<SessionView>,
    },
}

struct ActiveCell {
    gid: GlobalSessionId,
    route: RouteDecision,
    degraded: bool,
    warm_start: bool,
    /// Taken out (under no lock) while a caller blocks in `recv`.
    rx: Option<mpsc::Receiver<SessionEvent>>,
    /// Reassembled from the event stream; the integration tests assert it
    /// matches the engine-side frontier bit for bit.
    view: SessionView,
    /// True once the final event was observed and the ticket entered the
    /// bounded closed-history (set at most once).
    closed: bool,
}

impl ActiveCell {
    /// Folds one event into the view. Stream events are ordered and
    /// contiguous, so a fold failure is a server bug — surfaced in debug
    /// builds, tolerated (event dropped) in release.
    fn fold(&mut self, event: &SessionEvent) {
        let res = self.view.fold(event);
        debug_assert!(res.is_ok(), "ticket stream out of order: {res:?}");
    }

    /// Drains all buffered events from the channel into the view. A
    /// no-op while the receiver is checked out by a blocked `recv`.
    fn drain(&mut self) {
        let Some(rx) = &self.rx else { return };
        let mut drained = Vec::new();
        while let Ok(event) = rx.try_recv() {
            drained.push(event);
        }
        for event in &drained {
            self.fold(event);
        }
    }
}

enum Cell {
    Queued,
    Rejected(moqo_core::RejectReason),
    Active(Box<ActiveCell>),
}

struct PendingSubmit {
    ticket: u64,
    request: SessionRequest,
}

/// Aggregate server statistics.
#[derive(Clone, Debug)]
pub struct ServerStats {
    /// Admission counters.
    pub admission: crate::admission::AdmissionStats,
    /// Submissions waiting in the admission queue.
    pub pending: usize,
    /// Live sessions across all shards.
    pub live: usize,
    /// Per-shard load, cache, and routing statistics.
    pub shards: Vec<crate::shard::ShardStats>,
    /// Deployment-wide sub-frontier transplant cache counters (one cache
    /// shared by every shard).
    pub subfrontiers: moqo_engine::SubFrontierCacheStats,
}

/// Ticket table plus the bounded history of closed (finished/rejected)
/// tickets, oldest first; trimmed to [`ServeConfig::retired_tickets`] so
/// a long-running server's memory tracks live load, not total traffic.
struct TicketTable {
    cells: HashMap<u64, Cell>,
    closed: std::collections::VecDeque<u64>,
}

impl TicketTable {
    /// Records `id` as closed and drops the oldest closed tickets beyond
    /// the cap. Must be called at most once per ticket.
    fn close(&mut self, id: u64, cap: usize) {
        self.closed.push_back(id);
        while self.closed.len() > cap.max(1) {
            if let Some(old) = self.closed.pop_front() {
                self.cells.remove(&old);
            }
        }
    }
}

/// Sharded, admission-controlled serving front; see the module docs for
/// the interaction model.
pub struct MoqoServer {
    engine: ShardedEngine,
    admission: AdmissionController<PendingSubmit>,
    tickets: Mutex<TicketTable>,
    /// Serializes admission *decisions* (load read + policy + slot
    /// reservation), making `max_live`/`hard_cap` exact bounds instead
    /// of racy targets. The engine submission itself runs outside the
    /// gate — `reserved` covers the gap — so one expensive submission
    /// (e.g. a cold wide-shape plan build) never stalls other
    /// admissions. Never acquired while holding `tickets`.
    gate: Mutex<()>,
    /// Admissions decided under the gate whose engine submission has not
    /// completed yet; added to the engine's live count for decisions.
    reserved: AtomicU64,
    /// Session → ticket reverse map, kept by `activate` and ticket close;
    /// translates engine-level event notifications into the tickets the
    /// serving front routes by. A leaf lock: taken under `tickets` and
    /// under engine state locks (via the event hook), never the reverse.
    gid_tickets: Arc<Mutex<HashMap<GlobalSessionId, u64>>>,
    retired_tickets: usize,
    next: AtomicU64,
}

/// Callback fired whenever a session behind a ticket publishes a
/// [`SessionEvent`]: `Some(ticket)` names the ticket with a fresh event,
/// `None` means an event fired for a session not yet in the ticket table
/// (an activation in flight) — treat it as a generic "something moved"
/// wake. Same locking contract as [`moqo_engine::EventHook`]: invoked
/// under an engine state lock, keep it to queue-push + doorbell work.
pub type ServerEventHook = Arc<dyn Fn(Option<Ticket>) + Send + Sync>;

impl MoqoServer {
    /// Starts the shard pool.
    pub fn new(model: SharedCostModel, schedule: ResolutionSchedule, config: ServeConfig) -> Self {
        Self {
            engine: ShardedEngine::new(model, schedule, config.shard),
            admission: AdmissionController::new(config.admission),
            tickets: Mutex::new(TicketTable {
                cells: HashMap::new(),
                closed: std::collections::VecDeque::new(),
            }),
            gate: Mutex::new(()),
            reserved: AtomicU64::new(0),
            gid_tickets: Arc::new(Mutex::new(HashMap::new())),
            retired_tickets: config.retired_tickets,
            next: AtomicU64::new(1),
        }
    }

    /// Installs a [`ServerEventHook`] fired after every published session
    /// event, resolved to the owning ticket — the signal an event-driven
    /// network front needs to forward events without sleep-polling every
    /// ticket channel.
    pub fn set_event_hook(&self, hook: ServerEventHook) {
        let map = Arc::clone(&self.gid_tickets);
        self.engine.set_event_hook(Arc::new(move |gid| {
            let ticket = map.lock().expect("gid map poisoned").get(&gid).copied();
            hook(ticket.map(Ticket));
        }));
    }

    /// Live sessions plus decided-but-not-yet-submitted admissions — the
    /// load figure admission decisions are made against.
    fn admission_load(&self) -> usize {
        self.engine.live_sessions() + self.reserved.load(Ordering::Relaxed) as usize
    }

    /// The sharded engine behind the front (persistence, diagnostics).
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Submits a [`SessionRequest`] for interactive optimization (a bare
    /// `Arc<QuerySpec>` converts). Returns immediately with the ticket
    /// and the protocol-level admission decision; per-slice
    /// [`SessionEvent`]s arrive on the ticket's channel afterwards.
    ///
    /// Malformed requests (bounds or preference dimensions that do not
    /// match the effective cost model) are rejected here with a typed
    /// [`ProtocolError`] before a ticket is issued — they can never reach
    /// a shard worker.
    pub fn submit(
        &self,
        request: impl Into<SessionRequest>,
    ) -> Result<(Ticket, AdmissionResponse), ProtocolError> {
        let request = request.into();
        request.validate(request.effective_model(&self.engine.model()).dim())?;
        self.pump();
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        // Register the ticket BEFORE the admission decision: once
        // `request` parks the payload, a concurrent `pump` may pop and
        // activate it immediately — it must find the cell present so its
        // `Cell::Active` is never overwritten by a late `Cell::Queued`.
        self.with_tickets(|t| {
            t.cells.insert(id, Cell::Queued);
        });
        // The gate makes (load read, policy decision, slot reservation)
        // atomic across submitters: `max_live` and `hard_cap` are exact.
        // The engine submission happens after the gate drops, with the
        // reservation standing in for the not-yet-counted session.
        let gate = self.gate.lock().expect("admission gate poisoned");
        let decision = self.admission.request(
            self.admission_load(),
            PendingSubmit {
                ticket: id,
                request: request.clone(),
            },
        );
        let response = match decision {
            Admission::Admit => {
                self.reserved.fetch_add(1, Ordering::Relaxed);
                drop(gate);
                let cell = Cell::Active(Box::new(self.activate(id, request, false)));
                self.reserved.fetch_sub(1, Ordering::Relaxed);
                self.with_tickets(|t| {
                    t.cells.insert(id, cell);
                });
                AdmissionResponse::Admitted
            }
            Admission::AdmitDegraded(ladder) => {
                self.reserved.fetch_add(1, Ordering::Relaxed);
                drop(gate);
                let degraded = SessionRequest {
                    schedule: Some(ladder.clone()),
                    ..request
                };
                let cell = Cell::Active(Box::new(self.activate(id, degraded, true)));
                self.reserved.fetch_sub(1, Ordering::Relaxed);
                self.with_tickets(|t| {
                    t.cells.insert(id, cell);
                });
                AdmissionResponse::Degraded { schedule: ladder }
            }
            // The placeholder stands; a pump (possibly already racing on
            // another thread) will replace it with the active cell.
            Admission::Queued { position } => {
                drop(gate);
                AdmissionResponse::Queued { position }
            }
            Admission::Rejected(reason) => {
                drop(gate);
                self.with_tickets(|t| {
                    t.cells.insert(id, Cell::Rejected(reason));
                    t.close(id, self.retired_tickets);
                });
                AdmissionResponse::Rejected(reason)
            }
        };
        Ok((Ticket(id), response))
    }

    /// Submits to the engine and wires up the per-ticket event channel.
    fn activate(&self, id: u64, request: SessionRequest, degraded: bool) -> ActiveCell {
        let (gid, route) = self
            .engine
            .open(request)
            .expect("request was validated at submission");
        self.gid_tickets
            .lock()
            .expect("gid map poisoned")
            .insert(gid, id);
        let rx = self.engine.watch(gid).expect("freshly submitted session");
        // The watch channel self-primes with a reset-delta event.
        let primed = rx.recv().expect("primed event");
        let warm_start = self
            .engine
            .status(gid)
            .map(|s| s.warm_start)
            .unwrap_or(false);
        let mut cell = ActiveCell {
            gid,
            route,
            degraded,
            warm_start,
            rx: Some(rx),
            view: SessionView::default(),
            closed: false,
        };
        cell.fold(&primed);
        cell
    }

    /// Admits queued submissions into freed capacity (called from every
    /// public entry point). The gate keeps the (load read, release)
    /// decision atomic with concurrent admissions; the engine submission
    /// runs outside it under a reservation.
    fn pump(&self) {
        loop {
            let gate = self.gate.lock().expect("admission gate poisoned");
            let Some(p) = self.admission.release(self.admission_load()) else {
                return;
            };
            self.reserved.fetch_add(1, Ordering::Relaxed);
            drop(gate);
            let cell = Cell::Active(Box::new(self.activate(p.ticket, p.request, false)));
            self.reserved.fetch_sub(1, Ordering::Relaxed);
            self.with_tickets(|t| {
                t.cells.insert(p.ticket, cell);
            });
        }
    }

    fn with_tickets<R>(&self, f: impl FnOnce(&mut TicketTable) -> R) -> R {
        f(&mut self.tickets.lock().expect("ticket table poisoned"))
    }

    /// Marks a finished active cell closed (dropping its channel and its
    /// reverse-map entry) and files the ticket into the bounded
    /// closed-history (once). Call with the table lock held. Idempotent
    /// on the channel: a receiver restored by a `recv` that raced the
    /// close is dropped here too.
    fn close_if_finished(&self, t: &mut TicketTable, id: u64) {
        if let Some(Cell::Active(active)) = t.cells.get_mut(&id) {
            if active.view.is_finished() {
                active.rx = None;
                if !active.closed {
                    active.closed = true;
                    let gid = active.gid;
                    self.gid_tickets
                        .lock()
                        .expect("gid map poisoned")
                        .remove(&gid);
                    t.close(id, self.retired_tickets);
                }
            }
        }
    }

    /// Non-blocking status: drains any buffered events from the ticket
    /// channel into the reassembled view and returns the latest state.
    /// `None` for unknown tickets (including closed tickets evicted from
    /// the bounded history).
    pub fn poll(&self, ticket: Ticket) -> Option<TicketStatus> {
        self.pump();
        self.with_tickets(|t| {
            let cell = t.cells.get_mut(&ticket.0)?;
            let status = match cell {
                Cell::Queued => TicketStatus::Queued {
                    pending: self.admission.pending(),
                },
                Cell::Rejected(reason) => TicketStatus::Rejected(*reason),
                Cell::Active(active) => {
                    active.drain();
                    TicketStatus::Active {
                        session: active.gid,
                        route: active.route,
                        degraded: active.degraded,
                        warm_start: active.warm_start,
                        view: Box::new(active.view.clone()),
                    }
                }
            };
            self.close_if_finished(t, ticket.0);
            Some(status)
        })
    }

    /// Blocks on the ticket's channel for the next [`SessionEvent`] (at
    /// most `timeout`), never on engine internals; the event is folded
    /// into the ticket's view before it is returned. Returns `None` for
    /// unknown, queued, or rejected tickets, on timeout, and once the
    /// channel is closed after the session finished (the final view
    /// remains available via [`MoqoServer::poll`]). Only one caller may
    /// block per ticket at a time; concurrent `recv`s on one ticket
    /// return `None`.
    pub fn recv(&self, ticket: Ticket, timeout: Duration) -> Option<SessionEvent> {
        self.pump();
        // Take the receiver out so the table lock is NOT held while
        // blocking; poll() keeps working (it sees `rx: None` and serves
        // the latest reassembled view).
        let rx = self.with_tickets(|t| match t.cells.get_mut(&ticket.0) {
            Some(Cell::Active(active)) => active.rx.take(),
            _ => None,
        })?;
        let received = rx.recv_timeout(timeout).ok();
        self.with_tickets(|t| {
            if let Some(Cell::Active(active)) = t.cells.get_mut(&ticket.0) {
                if let Some(event) = &received {
                    active.fold(event);
                }
                active.rx = Some(rx);
                // No drain on a LIVE stream: `recv` hands events to the
                // caller strictly one at a time (the network front
                // forwards each to its remote client — swallowing
                // buffered successors would tear a hole in the remote
                // delta stream); events that arrived while this call was
                // blocked stay queued for the next `recv`. The one
                // exception is a session already finished out-of-band (a
                // concurrent `finish` that set the outcome while our rx
                // was checked out): the ticket is about to close, so fold
                // the stragglers now or their deltas would be lost to
                // `poll` forever.
                if active.view.is_finished() {
                    active.drain();
                }
            }
            self.close_if_finished(t, ticket.0);
        });
        received
    }

    /// Routes a [`SessionCommand`] to the ticket's session — bound drags,
    /// preference changes, plan selection, cancellation — exactly the
    /// vocabulary the core session and the engine speak.
    ///
    /// Tickets that are queued, rejected, or evicted answer
    /// [`ProtocolError::UnknownSession`]; dimension mismatches are
    /// validated at the owning shard and never reach a worker.
    pub fn command(&self, ticket: Ticket, command: SessionCommand) -> Result<(), ProtocolError> {
        let gid = self
            .with_tickets(|t| match t.cells.get(&ticket.0) {
                Some(Cell::Active(active)) => Some(active.gid),
                _ => None,
            })
            .ok_or(ProtocolError::UnknownSession)?;
        self.engine.command(gid, command)
    }

    /// Retires a session without a selection, parking its warm frontier
    /// for future equivalent queries, and frees its admission slot.
    /// Returns the final reassembled view; `None` for tickets that never
    /// activated.
    pub fn finish(&self, ticket: Ticket) -> Option<SessionView> {
        let gid = self.with_tickets(|t| match t.cells.get(&ticket.0) {
            Some(Cell::Active(active)) => Some(active.gid),
            _ => None,
        })?;
        // The engine publishes the terminal event to the ticket channel;
        // drain it into the view so the caller sees the final state.
        let final_status = self.engine.finish(gid)?;
        let view = self.with_tickets(|t| {
            let view = match t.cells.get_mut(&ticket.0) {
                Some(Cell::Active(active)) => {
                    active.drain();
                    if !active.view.is_finished() {
                        // The receiver is checked out by a concurrent
                        // blocked `recv` (which will fold the terminal
                        // event itself); the session is finished either
                        // way — record the outcome so this call returns
                        // a final view and the ticket closes now.
                        active.view.outcome = final_status.outcome;
                    }
                    Some(active.view.clone())
                }
                _ => None,
            };
            self.close_if_finished(t, ticket.0);
            view
        });
        // The freed slot may admit a queued submission right away.
        self.pump();
        view
    }

    /// Blocks until all shards drain (testing/batch use; interactive
    /// callers should `recv` their own ticket instead).
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.pump();
        self.engine.wait_idle(timeout)
    }

    /// Aggregate admission + shard statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            admission: self.admission.stats(),
            pending: self.admission.pending(),
            live: self.engine.live_sessions(),
            shards: self.engine.shard_stats(),
            subfrontiers: self.engine.subfrontier_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use moqo_core::{RejectReason, SessionOutcome};
    use moqo_cost::Bounds;
    use moqo_costmodel::StandardCostModel;
    use moqo_engine::EngineConfig;
    use moqo_query::testkit;
    use std::sync::Arc;
    use std::time::Instant;

    const IDLE: Duration = Duration::from_secs(60);

    fn server(admission: AdmissionConfig) -> MoqoServer {
        MoqoServer::new(
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(2, 1.1, 0.4),
            ServeConfig {
                shard: ShardConfig {
                    shards: 2,
                    engine: EngineConfig {
                        workers: 2,
                        ..EngineConfig::default()
                    },
                    rebalance_headroom: 8,
                },
                admission,
                retired_tickets: 1024,
            },
        )
    }

    fn submit(s: &MoqoServer, spec: Arc<moqo_query::QuerySpec>) -> (Ticket, AdmissionResponse) {
        s.submit(spec).expect("well-formed request")
    }

    #[test]
    fn ticket_flow_submit_recv_select() {
        let s = server(AdmissionConfig::default());
        let (t, resp) = submit(&s, Arc::new(testkit::chain_query(3, 80_000)));
        assert_eq!(resp, AdmissionResponse::Admitted);
        // Events stream on the ticket channel until the ladder saturates.
        let mut view = match s.poll(t).unwrap() {
            TicketStatus::Active { view, .. } => *view,
            other => panic!("expected active ticket, got {other:?}"),
        };
        while view.invocations < 3 {
            s.recv(t, IDLE).expect("slice event");
            view = match s.poll(t).unwrap() {
                TicketStatus::Active { view, .. } => *view,
                other => panic!("expected active ticket, got {other:?}"),
            };
        }
        assert!(!view.frontier.is_empty());
        // The delta-reassembled view matches the engine's frontier
        // bit for bit.
        let gid = match s.poll(t).unwrap() {
            TicketStatus::Active { session, .. } => session,
            _ => unreachable!(),
        };
        assert!(view.frontier.bits_eq(&s.engine().frontier(gid).unwrap()));
        // Select the fastest visualized plan; the session retires.
        let plan = view.frontier.min_by_metric(0).unwrap().plan;
        s.command(t, SessionCommand::SelectPlan(plan)).unwrap();
        assert!(s.wait_idle(IDLE));
        let fin = match s.poll(t).unwrap() {
            TicketStatus::Active { view, .. } => *view,
            other => panic!("expected active ticket, got {other:?}"),
        };
        assert!(fin.is_finished());
        assert_eq!(fin.selected(), Some(plan));
        assert_eq!(s.stats().live, 0);
    }

    #[test]
    fn rejection_backpressure_is_visible_on_the_ticket() {
        let s = server(AdmissionConfig {
            max_live: 1,
            policy: AdmissionPolicy::Reject,
        });
        let (a, ra) = submit(&s, Arc::new(testkit::chain_query(2, 10_000)));
        let (b, rb) = submit(&s, Arc::new(testkit::chain_query(3, 10_000)));
        assert!(ra.is_admitted());
        assert!(matches!(
            rb,
            AdmissionResponse::Rejected(RejectReason::Overloaded { .. })
        ));
        assert!(matches!(s.poll(a), Some(TicketStatus::Active { .. })));
        assert!(matches!(
            s.poll(b),
            Some(TicketStatus::Rejected(RejectReason::Overloaded { .. }))
        ));
        // recv on a rejected ticket returns immediately.
        assert!(s.recv(b, Duration::from_millis(10)).is_none());
        assert_eq!(s.stats().admission.rejected, 1);
    }

    #[test]
    fn queued_submissions_admit_as_capacity_frees() {
        let s = server(AdmissionConfig {
            max_live: 1,
            policy: AdmissionPolicy::Queue { depth: 1 },
        });
        let (a, ra) = submit(&s, Arc::new(testkit::chain_query(2, 20_000)));
        let (b, rb) = submit(&s, Arc::new(testkit::chain_query(3, 20_000)));
        let (c, rc) = submit(&s, Arc::new(testkit::chain_query(4, 20_000)));
        assert_eq!(ra, AdmissionResponse::Admitted);
        assert_eq!(rb, AdmissionResponse::Queued { position: 0 });
        // The bounded queue is full: c is rejected, never silently grown.
        assert!(matches!(
            rc,
            AdmissionResponse::Rejected(RejectReason::QueueFull { .. })
        ));
        assert!(matches!(s.poll(a), Some(TicketStatus::Active { .. })));
        assert!(matches!(s.poll(b), Some(TicketStatus::Queued { .. })));
        assert!(matches!(
            s.poll(c),
            Some(TicketStatus::Rejected(RejectReason::QueueFull { .. }))
        ));
        // Finishing a frees the slot; the next interaction admits b.
        assert!(s.wait_idle(IDLE));
        s.finish(a).unwrap();
        match s.poll(b).unwrap() {
            TicketStatus::Active { .. } => {}
            other => panic!("queued ticket should have admitted, got {other:?}"),
        }
        assert!(s.wait_idle(IDLE));
        let st = match s.poll(b).unwrap() {
            TicketStatus::Active { view, .. } => *view,
            _ => unreachable!(),
        };
        assert!(!st.frontier.is_empty());
    }

    #[test]
    fn closed_ticket_history_is_bounded() {
        let s = MoqoServer::new(
            Arc::new(StandardCostModel::paper_metrics()),
            ResolutionSchedule::linear(1, 1.2, 0.4),
            ServeConfig {
                shard: ShardConfig {
                    shards: 1,
                    engine: EngineConfig {
                        workers: 1,
                        ..EngineConfig::default()
                    },
                    rebalance_headroom: 0,
                },
                admission: AdmissionConfig::default(),
                retired_tickets: 2,
            },
        );
        let tickets: Vec<Ticket> = (2..=5)
            .map(|n| submit(&s, Arc::new(testkit::chain_query(n, 5_000))).0)
            .collect();
        assert!(s.wait_idle(IDLE));
        for &t in &tickets {
            s.finish(t).unwrap();
        }
        // Only the two youngest closed tickets stay queryable; the
        // older ones were evicted with their frontiers and channels.
        assert!(s.poll(tickets[0]).is_none());
        assert!(s.poll(tickets[1]).is_none());
        assert!(matches!(
            s.poll(tickets[2]),
            Some(TicketStatus::Active { .. })
        ));
        assert!(matches!(
            s.poll(tickets[3]),
            Some(TicketStatus::Active { .. })
        ));
        // Operations on an evicted ticket degrade gracefully.
        assert_eq!(
            s.command(tickets[0], SessionCommand::SetBounds(Bounds::unbounded(3))),
            Err(ProtocolError::UnknownSession)
        );
        assert!(s.finish(tickets[0]).is_none());
    }

    #[test]
    fn degrade_policy_admits_under_a_coarse_ladder() {
        let s = server(AdmissionConfig {
            max_live: 1,
            policy: AdmissionPolicy::Degrade {
                schedule: ResolutionSchedule::linear(0, 1.5, 0.5),
                hard_cap: 2,
            },
        });
        let (a, ra) = submit(&s, Arc::new(testkit::chain_query(2, 30_000)));
        let (b, rb) = submit(&s, Arc::new(testkit::chain_query(3, 30_000)));
        let (_c, rc) = submit(&s, Arc::new(testkit::chain_query(4, 30_000)));
        assert_eq!(ra, AdmissionResponse::Admitted);
        match &rb {
            AdmissionResponse::Degraded { schedule } => assert_eq!(schedule.levels(), 1),
            other => panic!("expected degraded admission, got {other:?}"),
        }
        // Beyond the hard cap even degraded admission stops.
        assert!(matches!(rc, AdmissionResponse::Rejected(_)));
        assert!(matches!(
            s.poll(a),
            Some(TicketStatus::Active {
                degraded: false,
                ..
            })
        ));
        assert!(s.wait_idle(IDLE));
        let st = match s.poll(b).unwrap() {
            TicketStatus::Active { degraded, view, .. } => {
                assert!(degraded);
                *view
            }
            other => panic!("expected degraded admission, got {other:?}"),
        };
        // One-level ladder: a single invocation, but a frontier exists.
        assert_eq!(st.invocations, 1);
        assert!(!st.frontier.is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected_before_a_ticket_exists() {
        let s = server(AdmissionConfig::default());
        let bad = SessionRequest::new(Arc::new(testkit::chain_query(3, 10_000)))
            .with_preference(moqo_core::Preference::WeightedSum(vec![1.0]));
        assert_eq!(
            s.submit(bad).unwrap_err(),
            ProtocolError::WeightDimensionMismatch {
                expected: 3,
                got: 1
            }
        );
        // The server is untouched: no ticket, no session, no pending.
        assert_eq!(s.stats().live, 0);
        assert_eq!(s.stats().pending, 0);
    }

    #[test]
    fn preference_request_auto_selects_through_the_full_stack() {
        let s = server(AdmissionConfig::default());
        let pref = moqo_core::Preference::WeightedSum(vec![1.0, 0.01, 0.01]);
        let (t, resp) = s
            .submit(
                SessionRequest::new(Arc::new(testkit::chain_query(3, 40_000)))
                    .with_preference(pref.clone()),
            )
            .unwrap();
        assert_eq!(resp, AdmissionResponse::Admitted);
        assert!(s.wait_idle(IDLE));
        let view = match s.poll(t).unwrap() {
            TicketStatus::Active { view, .. } => *view,
            other => panic!("expected active, got {other:?}"),
        };
        match view.outcome {
            Some(SessionOutcome::Selected { by_preference, .. }) => assert!(by_preference),
            other => panic!("expected preference selection, got {other:?}"),
        }
        assert_eq!(s.stats().live, 0, "auto-selection frees the slot");
    }

    #[test]
    fn recv_times_out_cleanly_on_an_idle_session() {
        let s = server(AdmissionConfig::default());
        let (t, _) = submit(&s, Arc::new(testkit::chain_query(2, 15_000)));
        // Drain the whole refinement ladder.
        assert!(s.wait_idle(IDLE));
        while s.recv(t, Duration::from_millis(50)).is_some() {}
        // The session is parked (not finished): no events are coming, so
        // recv must block for the full timeout and return None — without
        // touching the engine's internals.
        let t0 = Instant::now();
        let timeout = Duration::from_millis(150);
        assert!(s.recv(t, timeout).is_none());
        assert!(
            t0.elapsed() >= timeout,
            "recv returned early without an event"
        );
        // The ticket is still live and commandable afterwards.
        assert!(matches!(s.poll(t), Some(TicketStatus::Active { .. })));
        s.command(t, SessionCommand::Refine).unwrap();
        assert!(s.wait_idle(IDLE));
    }

    #[test]
    fn session_finishing_between_poll_and_recv_is_not_a_lost_wakeup() {
        let s = server(AdmissionConfig::default());
        let (t, _) = submit(&s, Arc::new(testkit::chain_query(3, 25_000)));
        assert!(s.wait_idle(IDLE));
        // Caller polls (sees an unfinished session)...
        match s.poll(t).unwrap() {
            TicketStatus::Active { view, .. } => assert!(!view.is_finished()),
            other => panic!("expected active, got {other:?}"),
        }
        // ...the session finishes in the gap...
        s.finish(t).unwrap();
        // ...and the subsequent recv must return promptly — the terminal
        // event was already drained by finish, the channel's sender side
        // is gone, so recv sees a disconnect, not a full-timeout stall.
        let t0 = Instant::now();
        let timeout = Duration::from_secs(5);
        assert!(s.recv(t, timeout).is_none());
        assert!(t0.elapsed() < timeout, "recv stalled on a finished session");
        // The final view stays available via poll.
        match s.poll(t).unwrap() {
            TicketStatus::Active { view, .. } => {
                assert!(view.is_finished());
                assert_eq!(view.outcome, Some(SessionOutcome::Retired));
            }
            other => panic!("expected closed-but-queryable ticket, got {other:?}"),
        }
    }
}
