//! End-to-end fleet test over **real processes**: spawns the actual
//! `repro` binary (in its hidden `fleet-node` mode) as three serving
//! processes, SIGKILLs one, and checks the kill-and-repeat story the
//! `repro fleet` experiment asserts — warm repeats generate zero plans
//! after their home node died, orphaned keys adopt from the shared
//! snapshot store, and the client-side view stays `bits_eq` with the
//! serving node's frontier across the hand-off.

use moqo_bench::{fleet_experiment, fleet_router_watch, Value};
use std::path::Path;
use std::time::Duration;

#[test]
fn kill_and_repeat_survives_across_real_processes() {
    // Cargo builds and points us at the sibling binary target.
    let exe = Path::new(env!("CARGO_BIN_EXE_repro"));
    let report = fleet_experiment(exe, true);
    let counter = |label: &str, key: &str| report.metric(label, key).unwrap().as_u64().unwrap();
    assert_eq!(counter("routes", "nodes"), 3);
    assert_eq!(
        counter("cold", "zero_plan_starts"),
        0,
        "first sight cannot be warm"
    );
    assert_eq!(
        counter("warm", "zero_plan_starts"),
        counter("warm", "sessions")
    );
    // The acceptance assertion: repeats stay zero-plan after the kill.
    assert_eq!(
        counter("post-kill warm", "zero_plan_starts"),
        counter("post-kill warm", "sessions")
    );
    let orphaned = counter("post-kill warm", "orphaned");
    assert!(orphaned >= 1, "the victim must have owned something");
    assert_eq!(counter("post-kill warm", "adopted_warm"), orphaned);
    assert_eq!(
        report.metric("post-kill warm", "view_bits_eq"),
        Some(&Value::Bool(true))
    );
    // Route counters saw every successful submit (3 passes + the
    // dedicated bits_eq session), spread over the node ids.
    let routes = report
        .variants
        .iter()
        .find(|v| v.label == "routes")
        .expect("routing summary variant");
    let routed: u64 = routes
        .metrics
        .iter()
        .filter(|m| m.key.starts_with("routed_"))
        .map(|m| m.value.as_u64().unwrap())
        .sum();
    assert_eq!(routed, 3 * counter("cold", "sessions") + 1);
    assert!(routes
        .metrics
        .iter()
        .filter(|m| m.key.starts_with("routed_"))
        .all(|m| m.key.starts_with("routed_node-")));
}

#[test]
fn watch_loop_heals_a_killed_node_across_real_processes() {
    // Bounded `repro fleet-router` run: five beats at a tight cadence,
    // with the driver SIGKILLing one node after the second beat. The
    // next beat must find the death and adopt every orphaned key warm
    // from the shared snapshot store.
    let exe = Path::new(env!("CARGO_BIN_EXE_repro"));
    let report = fleet_router_watch(exe, Duration::from_millis(60), Some(5), true);
    assert_eq!(report.ticks, 5);
    assert_eq!(report.deaths, 1, "the induced SIGKILL must be detected");
    assert!(report.orphaned >= 1, "the victim must have owned a key");
    assert_eq!(report.adopted_warm, report.orphaned);
}
