//! moqo-engine — the concurrent multi-session serving layer.
//!
//! The paper's interaction model (Figure 1 / Algorithm 1) is a *session*:
//! a user watches an anytime Pareto frontier refine between optimizer
//! invocations, drags cost bounds, and eventually clicks a plan. A real
//! deployment serves **many** such sessions at once. This crate provides
//! that layer on top of the owned-state optimizer core, speaking the
//! [session protocol](moqo_core::protocol) unchanged:
//!
//! * [`SessionManager`] — owns concurrent interactive sessions keyed by
//!   [`SessionId`], advances them on a worker pool with round-robin,
//!   budgeted time slices (each tick is one incremental `optimize`
//!   invocation), and routes [`SessionCommand`]s into the right session.
//!   Sessions open from a [`SessionRequest`], which may carry per-session
//!   bounds, a schedule override, an auto-select
//!   [`Preference`](moqo_core::Preference), and a per-session **cost
//!   model**.
//! * [`QueryFingerprint`] — canonical identity of a query: join-graph
//!   shape + catalog statistics + cost model (metric layout *and*
//!   [identity](moqo_costmodel::CostModel::identity)), independent of
//!   display names. Two sessions under different models can never share
//!   warm state.
//! * [`FrontierCache`] — parked optimizers of finished sessions, keyed by
//!   fingerprint. A repeated query starts from the warm frontier: its
//!   first invocation reports `plans_generated == 0`.
//! * [`PlanCache`] — shared `Arc<EnumerationPlan>`s keyed by [`ShapeKey`],
//!   the shape component of the fingerprint. Structurally *similar*
//!   queries (same join-graph shape, any statistics, any model) walk one
//!   precomputed enumeration plane — the first step of cross-session
//!   sharing beyond exact repeats.
//! * [`SubFrontierCache`] — per-subset warm state keyed by
//!   [`SubsetFingerprint`]: parking sessions harvest each connected table
//!   subset's `Res`/`Cand` plans as position-independent blobs, and a
//!   *similar* (not identical) query seeds every subset whose induced
//!   subgraph and statistics match — its plans re-enter as level-0
//!   candidates, re-costed at the door, preserving `alpha_T` exactly.
//!   A parked frontier whose [`RebaseKey`] matches a cold submission
//!   (same shape, drifted cardinalities) is instead **rebased** wholesale
//!   via `IamaOptimizer::rebase_from`.
//!
//! Serving layers build on three hooks: [`SessionManager::watch`]
//! (per-session [`SessionEvent`] push channels carrying delta-streamed
//! frontiers, so no caller parks on the engine's condvar and the full
//! frontier is never re-shipped), [`SessionManager::park`] /
//! [`SessionManager::for_each_parked`] (frontier persistence across
//! restarts), and [`SessionManager::live_sessions`] (the load figure
//! admission control and shard routing balance on).
//!
//! ```
//! use moqo_cost::ResolutionSchedule;
//! use moqo_costmodel::StandardCostModel;
//! use moqo_engine::{EngineConfig, SessionManager};
//! use moqo_query::testkit;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let manager = SessionManager::new(
//!     Arc::new(StandardCostModel::paper_metrics()),
//!     ResolutionSchedule::linear(3, 1.05, 0.5),
//!     EngineConfig::default(),
//! );
//! let a = manager.submit(Arc::new(testkit::chain_query(2, 10_000)));
//! let b = manager.submit(Arc::new(testkit::chain_query(3, 10_000)));
//! assert!(manager.wait_idle(Duration::from_secs(30)));
//! assert!(!manager.frontier(a).unwrap().is_empty());
//! assert!(!manager.frontier(b).unwrap().is_empty());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod manager;
pub mod plans;
pub mod registry;
pub mod subfrontier;

pub use cache::{CacheStats, FrontierCache};
pub use fingerprint::{QueryFingerprint, RebaseKey, SubsetFingerprint};
pub use manager::{EngineConfig, EventHook, SessionId, SessionManager, SessionStatus};
pub use plans::{PlanCache, PlanCacheStats};
pub use registry::ModelRegistry;
pub use subfrontier::{SubFrontierCache, SubFrontierCacheStats};

// Re-exported so engine users can name the shared-plan vocabulary without
// a direct moqo-query dependency.
pub use moqo_query::{EnumerationPlan, ShapeKey};

// The session protocol, re-exported so engine users speak it without a
// direct moqo-core dependency — the same types drive the bare core
// session and the moqo-serve front.
pub use moqo_core::protocol::{
    AdmissionResponse, FrontierDelta, ProtocolError, RejectReason, SessionCommand, SessionEvent,
    SessionOutcome, SessionRequest, SessionView,
};
